//! Acceptance suite for the two-stage architecture and the report
//! contract (`REPORTS.md`): the refutation pass removes every
//! seeded-spurious report from a generated corpus without losing a true
//! positive, and the content-addressed report hash is byte-stable
//! across thread counts, cache temperature, and unrelated edits while
//! moving when the reported pair itself moves.

use std::collections::BTreeSet;

use rid::core::apis::linux_dpm_apis;
use rid::core::{
    analyze_program_cached, report_hash, AnalysisOptions, AnalysisResult, FaultPlan,
    RefuteVerdict, SummaryCache,
};

fn analyze(sources: &[String], options: &AnalysisOptions) -> AnalysisResult {
    let program =
        rid::frontend::parse_program(sources.iter().map(String::as_str)).expect("corpus parses");
    let mut cache = SummaryCache::new();
    analyze_program_cached(&program, &linux_dpm_apis(), options, &FaultPlan::none(), Some(&mut cache))
}

/// The committed refutation baseline (also enforced by CI against the
/// regenerated BENCH_perf.json v9 record): on a corpus seeded with
/// known-spurious idioms, stage two refutes **all** of them and loses
/// **zero** true positives.
#[test]
fn refutation_removes_every_seeded_spurious_report_and_keeps_true_bugs() {
    let mut config = rid::corpus::KernelConfig::tiny(5);
    config.seeded_spurious = 4;
    let corpus = rid::corpus::kernel::generate_kernel(&config);
    assert_eq!(corpus.spurious_functions.len(), 4);
    let spurious: BTreeSet<&str> =
        corpus.spurious_functions.iter().map(String::as_str).collect();

    let stage1 = analyze(
        &corpus.sources,
        &AnalysisOptions { refute: false, ..AnalysisOptions::default() },
    );
    let stage2 = analyze(&corpus.sources, &AnalysisOptions::default());

    // Stage one is fooled by every seeded-spurious function: the unsat
    // joint constraints need more disequality splits than the default
    // budget, so exhaustion degrades toward "satisfiable" (§5.4).
    let stage1_spurious =
        stage1.reports.iter().filter(|r| spurious.contains(r.function.as_str())).count();
    assert_eq!(stage1_spurious, 4, "each seeded-spurious function draws a stage-one report");

    // Stage two refutes all of them — and nothing else.
    assert!(
        stage2.reports.iter().all(|r| !spurious.contains(r.function.as_str())),
        "no seeded-spurious report survives refutation"
    );
    assert_eq!(stage2.stats.reports_refuted, 4);
    assert_eq!(stage2.stats.reports_inconclusive, 0);
    assert_eq!(stage2.stats.reports_confirmed, stage2.reports.len());
    assert_eq!(
        stage1.reports.len() - stage2.reports.len(),
        4,
        "refutation removes exactly the spurious reports"
    );

    // Zero true-positive loss: the same ground-truth bug functions are
    // reported before and after refutation, and every detectable seeded
    // bug that stage one found is still found.
    let reported = |result: &AnalysisResult| -> BTreeSet<String> {
        result.reports.iter().map(|r| r.function.clone()).collect()
    };
    let (found1, found2) = (reported(&stage1), reported(&stage2));
    for function in corpus.detectable_bug_functions() {
        assert_eq!(
            found1.contains(function),
            found2.contains(function),
            "refutation changed the verdict on seeded bug `{function}`"
        );
    }

    // Every survivor carries its verdict in provenance, so `rid explain`
    // can say why the report survived.
    for report in &stage2.reports {
        let verdict = report.provenance.as_ref().and_then(|p| p.refutation);
        assert_eq!(verdict, Some(RefuteVerdict::Confirmed), "{}", report.function);
    }
}

const FIG8: &str = r#"module radeon;
fn radeon_crtc_set_config(dev, set) {
    let ret = pm_runtime_get_sync(dev);
    if (ret < 0) { return ret; }
    ret = drm_crtc_helper_set_config(set);
    pm_runtime_put_autosuspend(dev);
    return ret;
}"#;

/// An unrelated module: its presence (or edits to it) must not move the
/// Figure 8 report's hash.
const BYSTANDER: &str = r#"module bystander;
fn balanced(dev) {
    pm_runtime_get_sync(dev);
    pm_runtime_put(dev);
    return 0;
}"#;

const BYSTANDER_EDITED: &str = r#"module bystander;
fn balanced(dev) {
    pm_runtime_get_sync(dev);
    pm_runtime_put(dev);
    return 0;
}
fn newcomer(dev) {
    pm_runtime_get_sync(dev);
    pm_runtime_put(dev);
    return 0;
}"#;

/// Figure 8 with an extra guard before the inconsistent pair: the pair
/// itself moved (different traces, different constraints), so its hash
/// must change.
const FIG8_MOVED: &str = r#"module radeon;
fn radeon_crtc_set_config(dev, set) {
    if (set < 0) { return set; }
    let ret = pm_runtime_get_sync(dev);
    if (ret < 0) { return ret; }
    ret = drm_crtc_helper_set_config(set);
    pm_runtime_put_autosuspend(dev);
    return ret;
}"#;

/// The pinned hash of the Figure 8 report. This is the byte-stability
/// contract of `REPORTS.md`: the constant may only change with a
/// documented bump of the `rid-report-hash/v1` tag.
const FIG8_HASH: &str = "cab62d1c2ddc4bd97bbb3d804b074bf3";

fn hashes(result: &AnalysisResult) -> Vec<String> {
    let mut hashes: Vec<String> = result.reports.iter().map(report_hash).collect();
    hashes.sort_unstable();
    hashes
}

#[test]
fn report_hashes_are_stable_across_threads_and_cache_temperature() {
    let sources = vec![FIG8.to_owned(), BYSTANDER.to_owned()];
    let cold1 = analyze(&sources, &AnalysisOptions::default());
    let cold4 =
        analyze(&sources, &AnalysisOptions { threads: 4, ..AnalysisOptions::default() });
    assert_eq!(hashes(&cold1), vec![FIG8_HASH.to_owned()], "pinned by REPORTS.md");
    assert_eq!(hashes(&cold1), hashes(&cold4), "thread count must not move hashes");

    // Warm run over the same cache: every summary answered from the
    // store, reports re-derived — identical hashes.
    let program = rid::frontend::parse_program([FIG8, BYSTANDER]).unwrap();
    let options = AnalysisOptions::default();
    let mut cache = SummaryCache::new();
    let cold = analyze_program_cached(
        &program,
        &linux_dpm_apis(),
        &options,
        &FaultPlan::none(),
        Some(&mut cache),
    );
    let warm = analyze_program_cached(
        &program,
        &linux_dpm_apis(),
        &options,
        &FaultPlan::none(),
        Some(&mut cache),
    );
    assert!(warm.stats.cache_hits > 0, "second run must be warm");
    assert_eq!(hashes(&cold), hashes(&warm), "cache temperature must not move hashes");
}

#[test]
fn unrelated_edits_keep_the_hash_and_pair_moves_change_it() {
    let base = analyze(&[FIG8.to_owned(), BYSTANDER.to_owned()], &AnalysisOptions::default());
    let edited = analyze(
        &[FIG8.to_owned(), BYSTANDER_EDITED.to_owned()],
        &AnalysisOptions::default(),
    );
    let alone = analyze(&[FIG8.to_owned()], &AnalysisOptions::default());
    assert_eq!(hashes(&base), hashes(&edited), "editing another module must not move the hash");
    assert_eq!(hashes(&base), hashes(&alone), "other modules' presence must not move the hash");

    let moved = analyze(&[FIG8_MOVED.to_owned()], &AnalysisOptions::default());
    assert_eq!(moved.reports.len(), 1, "the bug is still there");
    assert_ne!(hashes(&base), hashes(&moved), "a moved pair must re-hash");
}

/// Out-of-fuel stage two must keep the report (inconclusive), never
/// refute it — exhaustion is ignorance, not evidence.
#[test]
fn out_of_fuel_refutation_keeps_reports_as_inconclusive()  {
    let mut config = rid::corpus::KernelConfig::tiny(5);
    config.seeded_spurious = 1;
    let corpus = rid::corpus::kernel::generate_kernel(&config);
    let starved = analyze(
        &corpus.sources,
        &AnalysisOptions {
            budget: rid::core::Budget {
                solver_fuel: Some(1),
                ..rid::core::Budget::unlimited()
            },
            ..AnalysisOptions::default()
        },
    );
    let spurious: BTreeSet<&str> =
        corpus.spurious_functions.iter().map(String::as_str).collect();
    assert!(
        starved.reports.iter().any(|r| spurious.contains(r.function.as_str())),
        "with no fuel the spurious report must survive as inconclusive"
    );
    assert_eq!(starved.stats.reports_refuted, 0, "exhaustion never refutes");
    assert!(starved.stats.reports_inconclusive > 0);
}

/// The verdict serializes as the lowercase labels REPORTS.md documents
/// (`"confirmed"`, not the Rust variant name) and round-trips.
#[test]
fn refutation_verdict_serializes_as_lowercase_label() {
    use rid::core::refute::RefuteVerdict;
    for verdict in [
        RefuteVerdict::Confirmed,
        RefuteVerdict::Refuted,
        RefuteVerdict::Inconclusive,
    ] {
        let json = serde_json::to_string(&verdict).unwrap();
        assert_eq!(json, format!("{:?}", verdict.label()));
        let back: RefuteVerdict = serde_json::from_str(&json).unwrap();
        assert_eq!(back, verdict);
    }
    assert!(serde_json::from_str::<RefuteVerdict>("\"Confirmed\"").is_err());
}
