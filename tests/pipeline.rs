//! Whole-pipeline integration tests on the seeded corpora: ground truth,
//! determinism, parallel vs sequential, linked vs separate analysis.

use std::collections::HashSet;

use rid::core::persist::analyze_modules_separately;
use rid::core::{analyze_sources, apis, AnalysisOptions};
use rid::corpus::kernel::{generate_kernel, KernelConfig};
use rid::corpus::pyc::{generate_pyc, PycBugClass, PycConfig};

fn kernel_result(
    corpus: &rid::corpus::kernel::KernelCorpus,
    options: &AnalysisOptions,
) -> rid::core::AnalysisResult {
    analyze_sources(
        corpus.sources.iter().map(String::as_str),
        &apis::linux_dpm_apis(),
        options,
    )
    .expect("corpus parses")
}

#[test]
fn kernel_ground_truth_holds() {
    let corpus = generate_kernel(&KernelConfig::tiny(11));
    let result = kernel_result(&corpus, &AnalysisOptions::default());
    let reported: HashSet<&str> =
        result.reports.iter().map(|r| r.function.as_str()).collect();

    for f in corpus.detectable_bug_functions() {
        assert!(reported.contains(f), "detectable bug in `{f}` must be reported");
    }
    for f in corpus.missed_bug_functions() {
        assert!(!reported.contains(f), "`{f}` is outside RID's power and must be missed");
    }
    for f in &corpus.expected_false_positives {
        assert!(
            reported.contains(f.as_str()),
            "§6.4 idiom in `{f}` must draw a (false) report"
        );
    }
}

#[test]
fn analysis_is_deterministic() {
    let corpus = generate_kernel(&KernelConfig::tiny(12));
    let a = kernel_result(&corpus, &AnalysisOptions::default());
    let b = kernel_result(&corpus, &AnalysisOptions::default());
    assert_eq!(a.reports, b.reports);
    assert_eq!(a.stats.functions_analyzed, b.stats.functions_analyzed);
}

#[test]
fn parallel_matches_sequential_on_corpus() {
    let corpus = generate_kernel(&KernelConfig::tiny(13));
    let sequential = kernel_result(&corpus, &AnalysisOptions::default());
    let parallel =
        kernel_result(&corpus, &AnalysisOptions { threads: 8, ..Default::default() });
    assert_eq!(sequential.reports, parallel.reports);
}

#[test]
fn selective_and_exhaustive_find_same_bugs() {
    // §5.2's promise: skipping category-3 functions loses no reports.
    let corpus = generate_kernel(&KernelConfig::tiny(14));
    let selective = kernel_result(&corpus, &AnalysisOptions::default());
    let exhaustive =
        kernel_result(&corpus, &AnalysisOptions { selective: false, ..Default::default() });
    let key = |r: &rid::core::IppReport| (r.function.clone(), r.refcount.clone());
    let a: HashSet<_> = selective.reports.iter().map(key).collect();
    let b: HashSet<_> = exhaustive.reports.iter().map(key).collect();
    assert_eq!(a, b);
    assert!(selective.stats.functions_analyzed < exhaustive.stats.functions_analyzed);
}

#[test]
fn separate_module_analysis_matches_linked() {
    let corpus = generate_kernel(&KernelConfig::tiny(15));
    let linked = kernel_result(&corpus, &AnalysisOptions::default());
    let modules: Vec<rid::ir::Module> = corpus
        .sources
        .iter()
        .map(|s| rid::frontend::parse_module(s).expect("module parses"))
        .collect();
    let separate = analyze_modules_separately(
        &modules,
        &apis::linux_dpm_apis(),
        &AnalysisOptions::default(),
    )
    .expect("no duplicate strong definitions");
    let key = |r: &rid::core::IppReport| (r.function.clone(), r.refcount.clone());
    let mut a: Vec<_> = linked.reports.iter().map(key).collect();
    let mut b: Vec<_> = separate.reports.iter().map(key).collect();
    a.sort();
    a.dedup();
    b.sort();
    b.dedup();
    assert_eq!(a, b);
}

#[test]
fn pyc_classes_detected_exactly() {
    let corpus = generate_pyc(&PycConfig::tiny(16));
    let program = &corpus.programs[0];
    let apis = apis::python_c_apis();

    let rid_result = analyze_sources(
        program.sources.iter().map(String::as_str),
        &apis,
        &AnalysisOptions::default(),
    )
    .expect("program parses");
    let baseline =
        rid::baseline::check_sources(program.sources.iter().map(String::as_str), &apis)
            .expect("program parses");

    let rid_found: HashSet<&str> =
        rid_result.reports.iter().map(|r| r.function.as_str()).collect();
    let base_found: HashSet<&str> =
        baseline.reports.iter().map(|r| r.function.as_str()).collect();

    for bug in &program.bugs {
        let f = bug.function.as_str();
        match bug.class {
            PycBugClass::Common => {
                assert!(rid_found.contains(f) && base_found.contains(f), "{f}")
            }
            PycBugClass::RidOnly => {
                assert!(rid_found.contains(f) && !base_found.contains(f), "{f}")
            }
            PycBugClass::BaselineOnly => {
                assert!(!rid_found.contains(f) && base_found.contains(f), "{f}")
            }
        }
    }
    // RID never flags the intentional wrappers; the baseline flags all.
    for wrapper in &program.wrappers {
        assert!(!rid_found.contains(wrapper.as_str()));
        assert!(base_found.contains(wrapper.as_str()));
    }
}

#[test]
fn report_rendering_is_complete() {
    let corpus = generate_kernel(&KernelConfig::tiny(17));
    let result = kernel_result(&corpus, &AnalysisOptions::default());
    let program =
        rid::frontend::parse_program(corpus.sources.iter().map(String::as_str)).unwrap();
    let text = rid::core::render_reports(&result.reports, Some(&program));
    for report in &result.reports {
        assert!(text.contains(&report.function));
    }
    // Parameter-name restoration: no raw [argN] should remain for
    // driver-entry reports keyed on formals.
    assert!(!text.contains("[arg0].pm"), "param names should be restored:\n{text}");
}
