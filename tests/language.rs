//! Integration tests of RIL language features flowing end-to-end through
//! parsing, lowering, symbolic execution and IPP checking.

use rid::core::{analyze_sources, apis::linux_dpm_apis, AnalysisOptions};

fn reports(src: &str) -> Vec<String> {
    analyze_sources([src], &linux_dpm_apis(), &AnalysisOptions::default())
        .expect("source parses")
        .reports
        .iter()
        .map(|r| r.function.clone())
        .collect()
}

#[test]
fn goto_error_paths() {
    // Kernel-style goto-error cleanup, correctly balanced: clean.
    let src = r#"module m;
        fn good(dev) {
            pm_runtime_get_sync(dev);
            let a = step_a(dev);
            if (a) { goto out; }
            let b = step_b(dev);
            if (b) { goto out; }
            use_device(dev);
        out:
            pm_runtime_put(dev);
            return 0;
        }"#;
    assert!(reports(src).is_empty());
}

#[test]
fn goto_skipping_cleanup_is_caught() {
    let src = r#"module m;
        fn bad(dev) {
            pm_runtime_get_sync(dev);
            let a = step_a(dev);
            if (a) { goto fail; }
            pm_runtime_put(dev);
            return 0;
        fail:
            return 0;
        }"#;
    assert_eq!(reports(src), vec!["bad".to_owned()]);
}

#[test]
fn else_if_chains_execute_correctly() {
    // Each error code is distinguishable — consistent.
    let src = r#"module m;
        fn multi(dev) {
            let st = pm_runtime_get_sync(dev);
            if (st == -1) { return -1; }
            else if (st == -2) { return -2; }
            else {
                pm_runtime_put(dev);
                return 0;
            }
        }"#;
    assert!(reports(src).is_empty());
}

#[test]
fn else_if_chain_with_shared_return_is_caught() {
    // Two arms return the same value with different changes — an IPP.
    let src = r#"module m;
        fn multi(dev) {
            let st = check(dev);
            if (st == -1) { pm_runtime_get_sync(dev); return 0; }
            else if (st == -2) { return 0; }
            else { return 1; }
        }"#;
    assert_eq!(reports(src), vec!["multi".to_owned()]);
}

#[test]
fn while_loops_with_varying_conditions() {
    // get/put balanced per iteration: clean under unroll-once.
    let src = r#"module m;
        fn pump(dev) {
            let more = has_work(dev);
            while (more) {
                pm_runtime_get_sync(dev);
                process(dev);
                pm_runtime_put(dev);
                more = has_work(dev);
            }
            return 0;
        }"#;
    assert!(reports(src).is_empty());
}

#[test]
fn unbalanced_loop_body_is_caught() {
    // The 0-iteration and 1-iteration paths differ with equal returns.
    let src = r#"module m;
        fn pump(dev) {
            let more = has_work(dev);
            while (more) {
                pm_runtime_get_sync(dev);
                more = has_work(dev);
            }
            return 0;
        }"#;
    assert_eq!(reports(src), vec!["pump".to_owned()]);
}

#[test]
fn field_chains_as_refcount_roots() {
    let src = r#"module m;
        fn deep(card) {
            let ret = pm_runtime_get_sync(card.bus.dev);
            if (ret < 0) { return 0; }
            pm_runtime_put(card.bus.dev);
            return 0;
        }"#;
    let result =
        analyze_sources([src], &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
    assert_eq!(result.reports.len(), 1);
    // The refcount is rooted at a two-level field chain of the argument.
    assert_eq!(result.reports[0].refcount.to_string(), "[arg0].bus.dev.pm");
}

#[test]
fn assume_prunes_paths() {
    let src = r#"module m;
        fn guarded(dev, flag) {
            assume flag > 0;
            if (flag <= 0) {
                pm_runtime_get_sync(dev);  // dead code
            }
            return 0;
        }"#;
    assert!(reports(src).is_empty());
}

#[test]
fn argument_distinguishable_paths_are_consistent() {
    // The caller can check dev.broken, so the paths are NOT an IPP.
    let src = r#"module m;
        fn cond(dev) {
            let broken = dev.broken;
            if (broken != 0) {
                pm_runtime_get_sync(dev);
            }
            return 0;
        }"#;
    assert!(reports(src).is_empty());
}

#[test]
fn internal_condition_paths_are_inconsistent() {
    // Same shape, but the condition is an internal read: an IPP.
    let src = r#"module m;
        fn cond(dev) {
            let broken = read_state(dev);
            if (broken != 0) {
                pm_runtime_get_sync(dev);
            }
            return 0;
        }"#;
    assert_eq!(reports(src), vec!["cond".to_owned()]);
}

#[test]
fn weak_linkage_merges_across_modules() {
    let header = r#"module header_a;
        weak fn inline_get(dev) { pm_runtime_get_sync(dev); return 0; }"#;
    let header_copy = r#"module header_b;
        weak fn inline_get(dev) { pm_runtime_get_sync(dev); return 0; }"#;
    let user = r#"module user;
        fn lose_ref(dev) {
            let r = check(dev);
            if (r) { return 0; }
            inline_get(dev);
            return 0;
        }"#;
    let result = analyze_sources(
        [header, header_copy, user],
        &linux_dpm_apis(),
        &AnalysisOptions::default(),
    )
    .unwrap();
    let functions: Vec<&str> = result.reports.iter().map(|r| r.function.as_str()).collect();
    assert!(functions.contains(&"lose_ref"));
}

#[test]
fn field_store_blindness_produces_false_positive() {
    // §6.4: the store to dev.active would distinguish the paths at
    // runtime, but stores are outside the abstraction.
    let src = r#"module m;
        fn fp(dev) {
            pm_runtime_get_sync(dev);
            let mode = read_mode(dev);
            if (mode > 0) {
                dev.active = 1;
                return 0;
            }
            pm_runtime_put(dev);
            return 0;
        }"#;
    assert_eq!(reports(src), vec!["fp".to_owned()]);
}

#[test]
fn nested_wrappers_compose() {
    // A wrapper of a wrapper of the API; the imbalance still surfaces at
    // the outermost caller.
    let src = r#"module m;
        fn level1(dev) { pm_runtime_get_sync(dev); return 0; }
        fn level2(dev) { level1(dev); return 0; }
        fn level3(dev) {
            let st = probe(dev);
            if (st < 0) { return 0; }
            level2(dev);
            return 0;
        }"#;
    let found = reports(src);
    assert!(found.contains(&"level3".to_owned()), "{found:?}");
}
