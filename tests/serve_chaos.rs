//! Chaos suite for the crash-safe daemon: every test injects a failure
//! — a process "kill" (dropping the engine mid-stream), a journal torn
//! at an arbitrary byte, an fsync that lies, a frame that never ends —
//! and then proves recovery is *exact*, not merely plausible. The core
//! differential: serialize both the crashed-and-recovered engine and a
//! never-crashed twin into snapshot files and require the bytes to be
//! identical. Determinism is the property under test; byte equality is
//! the only assertion that cannot rationalize a drifted counter or a
//! subtly different summary cache.
//!
//! Tracing state is process-global, so the span test serializes on the
//! same mutex pattern as `tests/serve.rs`.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

use rid::obs::{trace, SpanKind};
use rid::serve::{serve_stdio, Engine, ServeFaultPlan, ServerConfig};
use serde_json::Value;

fn lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

const MOD_A: &str = r#"module a;
fn leaf(dev) {
    let ret = pm_runtime_get_sync(dev);
    if (ret < 0) { return ret; }
    pm_runtime_put(dev);
    return 0;
}
fn mid(dev) {
    let r = leaf(dev);
    pm_runtime_get_sync(dev);
    pm_runtime_put(dev);
    return r;
}"#;

const MOD_B: &str = r#"module b;
fn top(dev) {
    let r = mid(dev);
    pm_runtime_get_sync(dev);
    pm_runtime_put(dev);
    return r;
}"#;

/// `leaf` with the error-path leak fixed (`put_noidle` before the
/// early return) — a patch that genuinely changes analysis results.
const MOD_A_EDIT: &str = r#"module a;
fn leaf(dev) {
    let ret = pm_runtime_get_sync(dev);
    if (ret < 0) { pm_runtime_put_noidle(dev); return ret; }
    pm_runtime_put(dev);
    return 0;
}
fn mid(dev) {
    let r = leaf(dev);
    pm_runtime_get_sync(dev);
    pm_runtime_put(dev);
    return r;
}"#;

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rid-chaos-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable(state_dir: &Path) -> ServerConfig {
    ServerConfig { state_dir: Some(state_dir.to_path_buf()), ..ServerConfig::default() }
}

fn parse(response: &str) -> Value {
    serde_json::from_str(response).expect("daemon emits valid JSON lines")
}

fn feed(engine: &mut Engine<()>, lines: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for line in lines {
        out.extend(engine.handle_line((), line).into_iter().map(|(_, r)| r));
    }
    out
}

/// The request stream the differential tests replay: registration, a
/// full analysis, two deferred patches that must coalesce, a drain
/// trigger, an explain, a *mid-stream snapshot*, and post-snapshot
/// work that only the journal can recover.
fn stream() -> Vec<String> {
    let req = |v: Value| serde_json::to_string(&v).unwrap();
    vec![
        req(serde_json::json!({"id": 1, "op": "register", "project": "p",
            "sources": serde_json::json!({"a.ril": MOD_A, "b.ril": MOD_B})})),
        req(serde_json::json!({"id": 2, "op": "analyze", "project": "p"})),
        req(serde_json::json!({"id": 3, "op": "patch", "project": "p", "defer": true,
            "sources": serde_json::json!({"a.ril": MOD_A_EDIT})})),
        req(serde_json::json!({"id": 4, "op": "patch", "project": "p", "defer": true,
            "sources": serde_json::json!({"a.ril": MOD_A})})),
        req(serde_json::json!({"id": 5, "op": "stats"})),
        req(serde_json::json!({"id": 6, "op": "explain", "project": "p"})),
        req(serde_json::json!({"id": 7, "op": "snapshot"})),
        req(serde_json::json!({"id": 8, "op": "patch", "project": "p",
            "sources": serde_json::json!({"a.ril": MOD_A_EDIT})})),
        req(serde_json::json!({"id": 9, "op": "analyze", "project": "p"})),
    ]
}

/// Reads every `.snap` file in `dir` as `(name, bytes)`, sorted.
fn snap_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".snap"))
        .map(|e| (e.file_name().to_string_lossy().into_owned(), fs::read(e.path()).unwrap()))
        .collect();
    files.sort();
    files
}

/// Asserts the `.snap` artifacts of two state dirs are byte-identical.
fn assert_snaps_identical(a: &Path, b: &Path, context: &str) {
    let sa = snap_files(a);
    let sb = snap_files(b);
    assert_eq!(
        sa.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
        sb.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
        "{context}: snapshot file sets differ"
    );
    assert!(!sa.is_empty(), "{context}: differential compared zero snapshot files");
    for ((name, bytes_a), (_, bytes_b)) in sa.iter().zip(sb.iter()) {
        assert_eq!(bytes_a, bytes_b, "{context}: {name} is not byte-identical");
    }
}

/// Runs the full stream on a fresh durable engine and finishes with a
/// snapshot op; returns the state dir holding the reference artifacts.
fn reference_run(name: &str) -> PathBuf {
    let dir = tempdir(name);
    let mut engine: Engine<()> = Engine::recover(durable(&dir)).unwrap();
    let responses = feed(&mut engine, &stream());
    assert_eq!(responses.len(), stream().len(), "every request answered");
    let snap = serde_json::json!({"id": 99, "op": "snapshot"}).to_string();
    let done = feed(&mut engine, &[snap]);
    assert_eq!(parse(&done[0])["ok"].as_bool(), Some(true));
    dir
}

/// The tentpole differential: crash (drop the engine — no destructor
/// flushes anything, so this is a faithful `kill -9` at the request
/// boundary) after every prefix of the stream, recover from disk,
/// finish the stream, snapshot, and require the snapshot bytes to be
/// identical to the never-crashed reference. Covers crashes before
/// registration, between deferred patches, immediately after the
/// mid-stream snapshot (journal just truncated), and after
/// post-snapshot journal-only work.
#[test]
fn crash_at_every_request_boundary_recovers_byte_identical_state() {
    let reference = reference_run("ref-boundary");
    let requests = stream();
    for cut in 0..=requests.len() {
        let dir = tempdir(&format!("boundary-{cut}"));
        {
            let mut engine: Engine<()> = Engine::recover(durable(&dir)).unwrap();
            feed(&mut engine, &requests[..cut]);
            // Crash: the engine is dropped with whatever the journal
            // and snapshot generation already hold. Nothing else may
            // survive, and nothing else is needed.
        }
        let mut engine: Engine<()> = Engine::recover(durable(&dir)).unwrap();
        feed(&mut engine, &requests[cut..]);
        let snap = serde_json::json!({"id": 99, "op": "snapshot"}).to_string();
        let done = feed(&mut engine, &[snap]);
        assert_eq!(
            parse(&done[0])["ok"].as_bool(),
            Some(true),
            "final snapshot after crash at boundary {cut}"
        );
        assert_snaps_identical(&reference, &dir, &format!("crash at request boundary {cut}"));
    }
}

/// The journal byte-offset sweep: run a short journaled stream, then
/// for *every byte offset* of the resulting journal, truncate a copy
/// there (a kill -9 mid-append) and recover. At every offset the
/// replayed-entry count must equal the number of complete frames that
/// survived; at every frame boundary the recovered state must snapshot
/// byte-identically to a clean run of the same prefix.
#[test]
fn journal_truncated_at_every_byte_offset_replays_exactly_the_complete_prefix() {
    let tiny = r#"module t;
fn probe(dev) {
    let ret = pm_runtime_get_sync(dev);
    if (ret < 0) { return ret; }
    pm_runtime_put(dev);
    return ret;
}"#;
    let tiny_edit = tiny.replace("return ret;\n}", "return 0;\n}");
    let req = |v: Value| serde_json::to_string(&v).unwrap();
    let lines = vec![
        req(serde_json::json!({"id": 1, "op": "register", "project": "t",
            "sources": serde_json::json!({"t.ril": tiny})})),
        req(serde_json::json!({"id": 2, "op": "analyze", "project": "t"})),
        req(serde_json::json!({"id": 3, "op": "patch", "project": "t",
            "sources": serde_json::json!({"t.ril": tiny_edit})})),
    ];

    // Produce the full journal (no snapshot op, so nothing truncates it).
    let source_dir = tempdir("sweep-source");
    {
        let mut engine: Engine<()> = Engine::recover(durable(&source_dir)).unwrap();
        feed(&mut engine, &lines);
    }
    let journal = fs::read(source_dir.join("journal.ndjson")).unwrap();
    assert_eq!(
        journal.iter().filter(|&&b| b == b'\n').count(),
        lines.len(),
        "every request was journaled"
    );

    // Clean-prefix references for the frame-boundary byte compares.
    let mut boundary_refs: Vec<(usize, PathBuf)> = Vec::new();
    let mut offset = 0usize;
    for (i, _) in lines.iter().enumerate() {
        offset += journal[offset..].iter().position(|&b| b == b'\n').unwrap() + 1;
        let dir = tempdir(&format!("sweep-ref-{i}"));
        let mut engine: Engine<()> = Engine::recover(durable(&dir)).unwrap();
        feed(&mut engine, &lines[..=i]);
        let done = feed(
            &mut engine,
            &[serde_json::json!({"id": 99, "op": "snapshot"}).to_string()],
        );
        assert_eq!(parse(&done[0])["ok"].as_bool(), Some(true));
        boundary_refs.push((offset, dir));
    }

    for cut in 0..=journal.len() {
        let dir = tempdir("sweep-cut");
        fs::write(dir.join("journal.ndjson"), &journal[..cut]).unwrap();
        let mut engine: Engine<()> = Engine::recover(durable(&dir)).unwrap();
        let complete = journal[..cut].iter().filter(|&&b| b == b'\n').count();
        let stats = feed(
            &mut engine,
            &[serde_json::json!({"id": 50, "op": "stats"}).to_string()],
        );
        assert_eq!(
            parse(&stats[0])["result"]["server"]["replayed_entries"].as_i64(),
            Some(complete as i64),
            "cut at byte {cut} of {}: exactly the complete frames replay",
            journal.len()
        );
        if let Some((_, reference)) = boundary_refs.iter().find(|(at, _)| *at == cut) {
            // The stats probe above was journaled on both sides? No —
            // the reference journaled `lines[..=i]` then snapshot; here
            // the replayed prefix plus the stats probe sits in the
            // journal. The snapshot serializes project state only, and
            // stats mutates none, so the artifacts must still match.
            let done = feed(
                &mut engine,
                &[serde_json::json!({"id": 99, "op": "snapshot"}).to_string()],
            );
            assert_eq!(parse(&done[0])["ok"].as_bool(), Some(true));
            assert_snaps_identical(reference, &dir, &format!("journal cut at byte {cut}"));
        }
    }
}

/// Torn and interleaved frames over the stdio transport: garbage
/// between valid requests gets a `parse` error, an oversized frame
/// gets `bad-request`, and the requests around them still execute.
#[test]
fn stdio_survives_garbage_and_oversized_frames_between_requests() {
    let huge_project = "p".repeat(2048);
    let input = format!(
        concat!(
            r#"{{"id":1,"op":"register","project":"g","sources":{{"t.ril":"module g; fn f(dev) {{ pm_runtime_get_sync(dev); pm_runtime_put(dev); return 0; }}"}}}}"#,
            "\n",
            "{{\"id\":2,\"op\":\"anal", // a torn frame: truncated mid-token
            "\n",
            r#"{{"id":3,"op":"stats","project":"{huge}"}}"#,
            "\n",
            r#"{{"id":4,"op":"analyze","project":"g"}}"#,
            "\n",
        ),
        huge = huge_project
    );
    let mut out = Vec::new();
    serve_stdio(
        input.as_bytes(),
        &mut out,
        ServerConfig { max_frame_bytes: 512, ..ServerConfig::default() },
    )
    .unwrap();
    let out = String::from_utf8(out).unwrap();
    let replies: Vec<Value> = out.lines().map(parse).collect();
    assert_eq!(replies.len(), 4, "every frame, even broken ones, is answered");
    assert_eq!(replies[0]["ok"].as_bool(), Some(true), "register before the chaos");
    assert_eq!(replies[1]["error"]["kind"].as_str(), Some("parse"), "torn frame");
    assert_eq!(replies[2]["error"]["kind"].as_str(), Some("bad-request"), "oversized frame");
    assert_eq!(replies[3]["ok"].as_bool(), Some(true), "stream survives to the next request");
    assert_eq!(replies[3]["result"]["report_count"].as_i64(), Some(0));
}

/// A client that disconnects mid-request (no trailing newline, then a
/// hard socket close) must kill neither the daemon nor other
/// connections.
#[cfg(unix)]
#[test]
fn unix_socket_survives_mid_request_disconnects_and_oversized_frames() {
    use std::io::{BufRead, BufReader};
    use std::os::unix::net::UnixStream;

    let dir = tempdir("unix-chaos");
    let socket = dir.join("rid.sock");
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            rid::serve::serve_unix(
                &socket,
                ServerConfig { max_frame_bytes: 512, ..ServerConfig::default() },
            )
        })
    };
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // Chaos connection 1: half a frame, then a hard close.
    {
        let mut stream = UnixStream::connect(&socket).unwrap();
        stream.write_all(br#"{"id":1,"op":"register","pro"#).unwrap();
        stream.shutdown(std::net::Shutdown::Both).unwrap();
    }
    // Chaos connection 2: an oversized frame, then a valid request on
    // the *same* connection — the reply proves the stream re-aligned.
    {
        let stream = UnixStream::connect(&socket).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let huge = "h".repeat(1024);
        writeln!(writer, r#"{{"id":2,"op":"stats","project":"{huge}"}}"#).unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(parse(&reply)["error"]["kind"].as_str(), Some("bad-request"));
        writeln!(writer, r#"{{"id":3,"op":"ping"}}"#).unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(parse(&reply)["result"]["pong"].as_bool(), Some(true));
    }
    // A healthy client still gets full service, then stops the daemon.
    {
        let stream = UnixStream::connect(&socket).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writeln!(writer, r#"{{"id":4,"op":"stats"}}"#).unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(parse(&reply)["ok"].as_bool(), Some(true));
        writeln!(writer, r#"{{"id":5,"op":"shutdown"}}"#).unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(parse(&reply)["ok"].as_bool(), Some(true));
    }
    server.join().unwrap().unwrap();
}

/// Snapshot fsync failure: with `fsync_fail_rate: 1.0` every snapshot
/// attempt fails *after* writing debris. The request must answer with
/// a `snapshot` error, the previous generation must stay intact and
/// loadable, the engine must keep serving, and a restart must still
/// recover everything from the journal.
#[test]
fn fsync_failure_keeps_previous_generation_and_journal_recovery_intact() {
    let dir = tempdir("fsync-chaos");
    let req = |v: Value| serde_json::to_string(&v).unwrap();
    let register = req(serde_json::json!({"id": 1, "op": "register", "project": "p",
        "sources": serde_json::json!({"a.ril": MOD_A, "b.ril": MOD_B})}));
    let analyze = req(serde_json::json!({"id": 2, "op": "analyze", "project": "p"}));
    let snapshot = req(serde_json::json!({"id": 3, "op": "snapshot"}));

    // Generation 1 lands cleanly.
    {
        let mut engine: Engine<()> = Engine::recover(durable(&dir)).unwrap();
        let replies = feed(&mut engine, &[register.clone(), analyze.clone(), snapshot.clone()]);
        assert_eq!(parse(&replies[2])["result"]["gen"].as_i64(), Some(1));
    }
    let gen1 = snap_files(&dir);
    assert!(!gen1.is_empty());

    // Every later snapshot hits the failing fsync.
    let faulty = ServerConfig {
        fault: ServeFaultPlan { fsync_fail_rate: 1.0, ..ServeFaultPlan::none() },
        ..durable(&dir)
    };
    let mut engine: Engine<()> = Engine::recover(faulty.clone()).unwrap();
    let patch = req(serde_json::json!({"id": 4, "op": "patch", "project": "p",
        "sources": serde_json::json!({"a.ril": MOD_A_EDIT})}));
    let replies = feed(&mut engine, &[patch, req(serde_json::json!({"id": 5, "op": "snapshot"}))]);
    assert_eq!(parse(&replies[0])["ok"].as_bool(), Some(true), "patch itself succeeds");
    let failed = parse(&replies[1]);
    assert_eq!(failed["ok"].as_bool(), Some(false));
    assert_eq!(failed["error"]["kind"].as_str(), Some("snapshot"));
    assert_eq!(snap_files(&dir), gen1, "generation 1 is untouched by the failed attempt");

    // The engine is still serving after the failed snapshot…
    let stats = feed(&mut engine, &[req(serde_json::json!({"id": 6, "op": "stats"}))]);
    let before_crash = parse(&stats[0])["result"]["projects"]["p"].clone();
    assert_eq!(before_crash["analyses"].as_i64(), Some(2), "analyze + patch both ran");
    drop(engine);

    // …and a crashed restart recovers the patch from the journal on
    // top of generation 1: per-project state matches the pre-crash
    // observation exactly.
    let mut engine: Engine<()> = Engine::recover(durable(&dir)).unwrap();
    let stats = feed(&mut engine, &[req(serde_json::json!({"id": 7, "op": "stats"}))]);
    let after_restart = parse(&stats[0])["result"]["projects"]["p"].clone();
    assert_eq!(
        serde_json::to_string(&after_restart).unwrap(),
        serde_json::to_string(&before_crash).unwrap(),
        "the journaled patch's effects survive the fsync chaos"
    );
}

/// Idempotency keys survive a crash: journal replay repopulates the
/// response memory, so a client retrying a pre-crash request against
/// the restarted daemon gets the remembered answer, not a re-execution.
#[test]
fn idempotency_dedupe_survives_a_restart() {
    let dir = tempdir("idem-restart");
    let req = |v: Value| serde_json::to_string(&v).unwrap();
    let register = req(serde_json::json!({"id": 1, "op": "register", "project": "p",
        "sources": serde_json::json!({"a.ril": MOD_A}), "idem": "reg-1"}));
    let analyze = req(serde_json::json!({"id": 2, "op": "analyze", "project": "p",
        "idem": "an-2"}));
    let first_reply;
    {
        let mut engine: Engine<()> = Engine::recover(durable(&dir)).unwrap();
        let replies = feed(&mut engine, &[register, analyze.clone()]);
        first_reply = replies[1].clone();
        assert_eq!(parse(&first_reply)["ok"].as_bool(), Some(true));
    }
    let mut engine: Engine<()> = Engine::recover(durable(&dir)).unwrap();
    // The retry after the crash: same idempotency key, no re-analysis.
    let replies = feed(&mut engine, &[analyze]);
    assert_eq!(replies[0], first_reply, "the replayed memory answers the retry verbatim");
    let stats = feed(&mut engine, &[req(serde_json::json!({"id": 9, "op": "stats"}))]);
    let stats = parse(&stats[0]);
    assert_eq!(stats["result"]["server"]["idem_hits"].as_i64(), Some(1));
    assert_eq!(
        stats["result"]["projects"]["p"]["analyses"].as_i64(),
        Some(1),
        "the retry must not re-run the analysis"
    );
}

/// The durability paths announce themselves through rid-obs: a
/// snapshot op emits a `snapshot` span, and a recovering startup emits
/// `restore` (per project) and `journal-replay` spans.
#[test]
fn snapshot_restore_and_replay_emit_obs_spans() {
    let _guard = lock();
    let dir = tempdir("obs-chaos");
    let req = |v: Value| serde_json::to_string(&v).unwrap();
    {
        let mut engine: Engine<()> = Engine::recover(durable(&dir)).unwrap();
        feed(
            &mut engine,
            &[
                req(serde_json::json!({"id": 1, "op": "register", "project": "p",
                    "sources": serde_json::json!({"a.ril": MOD_A})})),
                req(serde_json::json!({"id": 2, "op": "snapshot"})),
                req(serde_json::json!({"id": 3, "op": "analyze", "project": "p"})),
            ],
        );
    }
    trace::enable(trace::DEFAULT_CAPACITY);
    let mut engine: Engine<()> = Engine::recover(durable(&dir)).unwrap();
    feed(&mut engine, &[req(serde_json::json!({"id": 4, "op": "snapshot"}))]);
    trace::disable();
    let trace = trace::drain();
    let count = |kind: SpanKind| trace.events.iter().filter(|e| e.kind == kind).count();
    assert!(count(SpanKind::Restore) >= 1, "restore span per restored project");
    assert!(count(SpanKind::JournalReplay) >= 1, "journal-replay span on startup");
    assert!(count(SpanKind::Snapshot) >= 1, "snapshot span on the snapshot op");
    let restore = trace
        .events
        .iter()
        .find(|e| e.kind == SpanKind::Restore)
        .expect("restore span present");
    assert!(restore.value > 0, "restore span carries the snapshot byte count");
}
