//! Integration tests reproducing every worked figure of the paper through
//! the public facade (`rid`).

use rid::core::{analyze_sources, apis::linux_dpm_apis, AnalysisOptions, BugKind};
use rid::solver::{Term, Var};

fn analyze(sources: &[&str]) -> rid::core::AnalysisResult {
    analyze_sources(sources.iter().copied(), &linux_dpm_apis(), &AnalysisOptions::default())
        .expect("sources parse")
}

/// Figures 1–2: `foo()` has an inconsistent path pair on the PM count.
#[test]
fn figure1_and_2_worked_example() {
    let src = r#"module fig1;
        fn reg_read(d, reg) {
            if (d != null) {
                let ret = random;
                if (ret >= 0) { return ret; }
            }
            return -1;
        }
        fn inc_pmcount(d) {
            if (d != null) { pm_runtime_get(d); }
            return;
        }
        fn foo(dev) {
            assume dev != null;
            let v = reg_read(dev, 0x54);
            if (v <= 0) { goto exit; }
            inc_pmcount(dev);
        exit:
            return 0;
        }"#;
    let result = analyze(&[src]);
    let foo_reports: Vec<_> =
        result.reports.iter().filter(|r| r.function == "foo").collect();
    assert_eq!(foo_reports.len(), 1, "{:?}", result.reports);
    let report = foo_reports[0];
    // The inconsistent refcount is dev's PM count; changes are +1 vs 0.
    assert_eq!(report.refcount, Term::var(Var::formal(0)).field("pm"));
    assert_eq!(report.change_a.max(report.change_b), 1);
    assert_eq!(report.change_a.min(report.change_b), 0);
    assert!(report.witness.is_sat());
    // inc_pmcount itself is consistent (the null case is distinguishable
    // by the argument).
    assert!(result.reports.iter().all(|r| r.function != "inc_pmcount"));
}

/// Figure 2's summary shape: reg_read's summary has a non-negative-return
/// entry and a −1 entry.
#[test]
fn figure2_reg_read_summary_entries() {
    let src = r#"module fig2;
        fn reg_read(d, reg) {
            if (d != null) {
                let ret = random;
                if (ret >= 0) { return ret; }
            }
            return -1;
        }
        fn uses(dev) {
            let v = reg_read(dev, 84);
            if (v < 0) { pm_runtime_get(dev); }
            return 0;
        }"#;
    let result = analyze(&[src]);
    let summary = result.summaries.get("reg_read").expect("summarized");
    use rid::ir::Pred;
    use rid::solver::{Conj, Lit};
    let ret = Term::var(Var::ret());
    let nonneg = Conj::from_lits([Lit::new(Pred::Ge, ret.clone(), Term::int(0))]);
    let minus_one = Conj::from_lits([Lit::new(Pred::Eq, ret, Term::int(-1))]);
    assert!(summary.entries.iter().any(|e| e.cons.implies(&nonneg)));
    assert!(summary.entries.iter().any(|e| e.cons.implies(&minus_one)));
}

/// Figure 8: the radeon DPM API misuse.
#[test]
fn figure8_radeon() {
    let src = r#"module radeon;
        fn radeon_crtc_set_config(dev, set) {
            let ret = pm_runtime_get_sync(dev);
            if (ret < 0) { return ret; }
            ret = drm_crtc_helper_set_config(set);
            pm_runtime_put_autosuspend(dev);
            return ret;
        }"#;
    let result = analyze(&[src]);
    assert_eq!(result.reports.len(), 1);
    let report = &result.reports[0];
    assert_eq!(report.function, "radeon_crtc_set_config");
    assert_eq!(rid::core::classify_report(report), BugKind::MissedRelease);
}

/// Figure 9: the usb wrapper is summarized precisely; the caller's error
/// path is caught; the wrapper itself is clean.
#[test]
fn figure9_usb_idmouse() {
    let src = r#"module usb;
        fn usb_autopm_get_interface(intf) {
            let status = pm_runtime_get_sync(intf.dev);
            if (status < 0) {
                pm_runtime_put_sync(intf.dev);
            }
            if (status > 0) { status = 0; }
            return status;
        }
        fn usb_autopm_put_interface(intf) {
            pm_runtime_put_sync(intf.dev);
            return;
        }
        fn idmouse_open(inode, file) {
            let interface = inode.intf;
            let result = usb_autopm_get_interface(interface);
            if (result) { goto error; }
            result = idmouse_create_image(inode);
            if (result) { goto error; }
            usb_autopm_put_interface(interface);
        error:
            return result;
        }"#;
    let result = analyze(&[src]);
    let functions: Vec<&str> =
        result.reports.iter().map(|r| r.function.as_str()).collect();
    assert!(functions.contains(&"idmouse_open"));
    assert!(!functions.contains(&"usb_autopm_get_interface"));
    // The wrapper summary distinguishes its behaviours by return value.
    let wrapper = result.summaries.get("usb_autopm_get_interface").unwrap();
    assert!(wrapper.entries.len() >= 2);
    assert!(wrapper.entries.iter().any(rid::core::SummaryEntry::has_changes));
    assert!(wrapper.entries.iter().any(|e| !e.has_changes()));
}

/// Figure 10: the arizona IRQ thread — RID's documented false negative.
#[test]
fn figure10_arizona_false_negative() {
    let src = r#"module arizona;
        fn arizona_irq_thread(irq, data) {
            let ret = pm_runtime_get_sync(data.dev);
            if (ret < 0) {
                dev_err(data);
                return 0;
            }
            handle(data);
            pm_runtime_put(data.dev);
            return 1;
        }"#;
    let result = analyze(&[src]);
    assert!(result.reports.is_empty(), "{:?}", result.reports);
    // But the summary records the imbalance — a caller-side analysis
    // (future work in the paper) could use it.
    let summary = result.summaries.get("arizona_irq_thread").unwrap();
    assert!(summary.entries.iter().any(rid::core::SummaryEntry::has_changes));
}

/// §6.3's correct counterpart: a balanced error path draws no report.
#[test]
fn balanced_error_path_is_clean() {
    let src = r#"module good;
        fn good_probe(dev) {
            let ret = pm_runtime_get_sync(dev);
            if (ret < 0) {
                pm_runtime_put(dev);
                return ret;
            }
            pm_runtime_put(dev);
            return 0;
        }"#;
    let result = analyze(&[src]);
    assert!(result.reports.is_empty(), "{:?}", result.reports);
}
