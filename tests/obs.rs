//! Observability acceptance suite: the golden span sequence of a seeded
//! run, Chrome `trace_event` schema validity, span-kind coverage, and
//! agreement between the driver's degradation census and the `degrade`
//! events in the trace.
//!
//! Tracing state is process-global (enable/disable plus a shared sink),
//! so every test here serializes on one mutex and this file contains
//! *only* tracing tests — an unrelated test running analysis concurrently
//! in the same binary would leak its spans into our drains.

use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard};

use rid::core::apis::linux_dpm_apis;
use rid::core::{
    analyze_program_cached, analyze_program_with_faults, degrade_census, AnalysisOptions,
    FaultPlan, SummaryCache,
};
use rid::obs::{trace, SpanKind};

fn lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    // A panicking test poisons the mutex but leaves the global tracing
    // state reusable (each test re-enables from scratch).
    GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

const GOLDEN_SRC: &str = r#"module golden;
fn golden_leaf(dev) {
    let ret = pm_runtime_get_sync(dev);
    if (ret < 0) { return ret; }
    ret = random;
    pm_runtime_put_sync(dev);
    return ret;
}
fn golden_top(dev) {
    let r = golden_leaf(dev);
    return r;
}"#;

/// One traced cold-cache run of [`GOLDEN_SRC`]; parsing happens inside
/// the enabled window so the `lower` span is captured.
fn golden_run(threads: usize) -> (rid::core::AnalysisResult, trace::Trace) {
    trace::enable(trace::DEFAULT_CAPACITY);
    let program = rid::frontend::parse_program([GOLDEN_SRC]).unwrap();
    let mut cache = SummaryCache::new();
    let result = analyze_program_cached(
        &program,
        &linux_dpm_apis(),
        &AnalysisOptions { threads, ..AnalysisOptions::default() },
        &FaultPlan::none(),
        Some(&mut cache),
    );
    trace::disable();
    (result, trace::drain())
}

/// The byte-exact normalized JSONL of a single-threaded cold run: every
/// span the pipeline emits for the two-function corpus, in order. A
/// diff here means the instrumentation moved — rebaseline deliberately,
/// not accidentally (timestamps and thread ids are already normalized
/// out, so only real pipeline changes can break it). The trailing
/// `refute` span is the second-stage pass re-judging the leaf's report
/// (value 1 = confirmed: the joint constraints are genuinely
/// satisfiable, so the report survives).
const GOLDEN_JSONL: &str = r#"{"seq":0,"kind":"lower","name":"module","ph":"span","thread":0,"start_ns":0,"dur_ns":0,"value":2}
{"seq":1,"kind":"cache-lookup","name":"golden_leaf","ph":"span","thread":0,"start_ns":1,"dur_ns":0,"value":0}
{"seq":2,"kind":"exec","name":"golden_leaf","ph":"span","thread":0,"start_ns":2,"dur_ns":0,"value":2}
{"seq":3,"kind":"enumerate","name":"golden_leaf","ph":"span","thread":0,"start_ns":3,"dur_ns":0,"value":2}
{"seq":4,"kind":"solve","name":"golden_leaf","ph":"span","thread":0,"start_ns":4,"dur_ns":0,"value":1}
{"seq":5,"kind":"solve","name":"golden_leaf","ph":"span","thread":0,"start_ns":5,"dur_ns":0,"value":1}
{"seq":6,"kind":"solve","name":"golden_leaf","ph":"span","thread":0,"start_ns":6,"dur_ns":0,"value":1}
{"seq":7,"kind":"ipp-check","name":"golden_leaf","ph":"span","thread":0,"start_ns":7,"dur_ns":0,"value":0}
{"seq":8,"kind":"cache-lookup","name":"golden_top","ph":"span","thread":0,"start_ns":8,"dur_ns":0,"value":0}
{"seq":9,"kind":"exec","name":"golden_top","ph":"span","thread":0,"start_ns":9,"dur_ns":0,"value":1}
{"seq":10,"kind":"enumerate","name":"golden_top","ph":"span","thread":0,"start_ns":10,"dur_ns":0,"value":1}
{"seq":11,"kind":"solve","name":"golden_top","ph":"span","thread":0,"start_ns":11,"dur_ns":0,"value":1}
{"seq":12,"kind":"solve","name":"golden_top","ph":"span","thread":0,"start_ns":12,"dur_ns":0,"value":1}
{"seq":13,"kind":"ipp-check","name":"golden_top","ph":"span","thread":0,"start_ns":13,"dur_ns":0,"value":0}
{"seq":14,"kind":"refute","name":"golden_leaf","ph":"span","thread":0,"start_ns":14,"dur_ns":0,"value":1}
"#;

#[test]
fn golden_normalized_span_sequence_is_stable() {
    let _guard = lock();
    let (result, first) = golden_run(1);
    assert_eq!(result.reports.len(), 1, "the leaf carries the Figure 8 bug");
    assert_eq!(first.dropped, 0);
    assert_eq!(first.to_jsonl_normalized(), GOLDEN_JSONL);

    // And byte-stable run to run, not just against the snapshot.
    let (_, second) = golden_run(1);
    assert_eq!(second.to_jsonl_normalized(), GOLDEN_JSONL);
}

#[test]
fn chrome_trace_is_valid_and_covers_all_span_kinds() {
    let _guard = lock();
    // Two workers: a worker whose own deque runs dry scans its victim,
    // which is what emits the `steal` span — together with the cold
    // cache probes this covers all seven pipeline span kinds.
    let (_, trace) = golden_run(2);

    let pipeline_kinds = [
        SpanKind::Lower,
        SpanKind::Enumerate,
        SpanKind::Exec,
        SpanKind::Solve,
        SpanKind::IppCheck,
        SpanKind::CacheLookup,
        SpanKind::Steal,
    ];
    for kind in pipeline_kinds {
        assert!(
            trace.count_kind(kind) > 0,
            "span kind `{}` missing from a threads=2 cold-cache run",
            kind.label()
        );
    }

    // The Chrome export is real JSON with the trace_event fields that
    // chrome://tracing / Perfetto require, one event per trace event.
    let json: serde_json::Value = serde_json::from_str(&trace.to_chrome_json())
        .expect("chrome export must be valid JSON");
    let events = json["traceEvents"].as_array().expect("traceEvents array");
    assert_eq!(events.len(), trace.events.len());
    let labels: BTreeSet<&str> = SpanKind::all().iter().map(|k| k.label()).collect();
    let is_number =
        |v: &serde_json::Value| matches!(v, serde_json::Value::Int(_) | serde_json::Value::Float(_));
    for e in events {
        assert!(e["name"].as_str().is_some(), "missing name: {e:?}");
        assert!(labels.contains(e["cat"].as_str().expect("cat")), "bad cat: {e:?}");
        let ph = e["ph"].as_str().expect("ph");
        assert!(ph == "X" || ph == "i", "unexpected phase `{ph}`: {e:?}");
        assert!(is_number(&e["ts"]), "missing ts: {e:?}");
        assert_eq!(e["pid"].as_i64(), Some(1), "missing pid: {e:?}");
        assert!(is_number(&e["tid"]), "missing tid: {e:?}");
        if ph == "X" {
            assert!(is_number(&e["dur"]), "complete event without dur: {e:?}");
        }
    }
}

#[test]
fn degrade_events_agree_with_the_faults_census() {
    let _guard = lock();
    let src = r#"module m;
        fn boom(dev) { pm_runtime_get_sync(dev); pm_runtime_put(dev); return 0; }
        fn sleepy(dev) { pm_runtime_get_sync(dev); pm_runtime_put(dev); return 0; }
        fn fine(dev) { pm_runtime_get_sync(dev); pm_runtime_put(dev); return 0; }"#;
    let program = rid::frontend::parse_program([src]).unwrap();
    // Two different degradation reasons in one run: `boom` panics on both
    // attempts (degrades with Panic), `sleepy` blows its deadline
    // (degrades with Deadline); `fine` is untouched.
    let plan = FaultPlan {
        panic_functions: vec!["boom".into()],
        panic_twice: true,
        slow_functions: vec!["sleepy".into()],
        slow_ms: 60,
        ..FaultPlan::none()
    };
    let options = AnalysisOptions {
        threads: 1,
        budget: rid::core::Budget {
            func_deadline: Some(std::time::Duration::from_millis(20)),
            ..rid::core::Budget::unlimited()
        },
        ..AnalysisOptions::default()
    };

    trace::enable(trace::DEFAULT_CAPACITY);
    let result = analyze_program_with_faults(&program, &linux_dpm_apis(), &options, &plan);
    trace::disable();
    let trace = trace::drain();

    // Injected faults leave instant events...
    assert!(
        trace.events.iter().any(|e| e.kind == SpanKind::Fault && e.name == "panic:boom"),
        "injected panic must appear as a fault event"
    );

    // ...and the census reconstructed from `degrade` events matches the
    // driver's own degradation map exactly: same functions, same reasons.
    let census = degrade_census(&trace);
    assert!(result.degraded.len() >= 2, "both faulted functions must degrade");
    assert_eq!(census.len(), result.degraded.len());
    for (func, record) in &result.degraded {
        assert_eq!(
            census.get(func).map(String::as_str),
            Some(record.reason.label()),
            "trace and driver disagree about `{func}`"
        );
    }
    assert!(!census.contains_key("fine"), "untouched function must not degrade");
}
