//! Integration tests for the future-work extensions through the facade:
//! callback contracts, incremental recheck, summary rules, API mining,
//! and the wake-lock API family.

use rid::core::checks::{check_summary, SummaryRule};
use rid::core::incremental::{affected_functions, reanalyze};
use rid::core::mining::{all_function_names, discover_api_pairs, summaries_for_pairs};
use rid::core::{analyze_sources, apis, AnalysisOptions, CallGraph};

const ARIZONA: &str = r#"module arizona;
    fn arizona_irq_thread(irq, data) {
        let ret = pm_runtime_get_sync(data.dev);
        if (ret < 0) { return 0; }
        handle(data);
        pm_runtime_put(data.dev);
        return 1;
    }
    fn arizona_probe(dev) {
        request_irq(dev.irq, @arizona_irq_thread, dev);
        return 0;
    }"#;

#[test]
fn callback_contract_catches_figure10() {
    let apis = apis::linux_dpm_apis();
    let off = analyze_sources([ARIZONA], &apis, &AnalysisOptions::default()).unwrap();
    assert!(off.reports.is_empty(), "paper default misses Figure 10");

    let options = AnalysisOptions { check_callbacks: true, ..Default::default() };
    let on = analyze_sources([ARIZONA], &apis, &options).unwrap();
    assert_eq!(on.reports.len(), 1);
    assert!(on.reports[0].callback);
    assert_eq!(on.reports[0].function, "arizona_irq_thread");
}

#[test]
fn unregistered_function_is_not_callback_checked() {
    // Same body, but never registered: the extension must not fire.
    let src = r#"module m;
        fn maybe_handler(irq, data) {
            let ret = pm_runtime_get_sync(data.dev);
            if (ret < 0) { return 0; }
            pm_runtime_put(data.dev);
            return 1;
        }"#;
    let options = AnalysisOptions { check_callbacks: true, ..Default::default() };
    let result = analyze_sources([src], &apis::linux_dpm_apis(), &options).unwrap();
    assert!(result.reports.is_empty(), "{:?}", result.reports);
}

#[test]
fn incremental_recheck_through_facade() {
    let buggy = "module lib; fn helper(dev) { let r = chk(dev); if (r < 0) { return 0; } pm_runtime_get_sync(dev); return 0; }";
    let fixed = "module lib; fn helper(dev) { let r = chk(dev); if (r < 0) { return -1; } pm_runtime_get_sync(dev); return 0; }";
    let app = "module app; fn top(dev) { helper(dev); pm_runtime_put(dev); return 0; }";

    let apis = apis::linux_dpm_apis();
    let options = AnalysisOptions::default();
    let before = analyze_sources([buggy, app], &apis, &options).unwrap();
    assert!(before.reports.iter().any(|r| r.function == "helper"));

    let program = rid::frontend::parse_program([fixed, app]).unwrap();
    let graph = CallGraph::build(&program);
    let affected = affected_functions(&graph, &["helper"]);
    assert_eq!(affected.len(), 2); // helper + top

    let after = reanalyze(&program, &apis, &before, &["helper"], &options);
    assert!(after.reports.iter().all(|r| r.function != "helper"));
    let full = analyze_sources([fixed, app], &apis, &options).unwrap();
    let key = |r: &rid::core::IppReport| (r.function.clone(), r.refcount.clone());
    assert_eq!(
        after.reports.iter().map(key).collect::<Vec<_>>(),
        full.reports.iter().map(key).collect::<Vec<_>>()
    );
}

#[test]
fn summary_rules_catch_single_path_leaks() {
    let src = "module m; fn stash(obj, t) { Py_INCREF(obj); keep(t, obj); return 0; }";
    let result =
        analyze_sources([src], &apis::python_c_apis(), &AnalysisOptions::default()).unwrap();
    assert!(result.reports.is_empty(), "no pair exists for IPP checking");
    let summary = result.summaries.get("stash").unwrap();
    assert_eq!(check_summary(summary, SummaryRule::EscapeRule).len(), 1);
    assert_eq!(check_summary(summary, SummaryRule::ClosedBalance).len(), 1);
}

#[test]
fn mining_to_analysis_without_handwritten_specs() {
    let src = r#"module m;
        fn scan(node) {
            node_ref(node);
            let st = walk(node);
            if (st < 0) { return 0; }
            node_unref(node);
            return 0;
        }"#;
    let program = rid::frontend::parse_program([src]).unwrap();
    let pairs = discover_api_pairs(all_function_names(&program).iter().map(String::as_str));
    assert_eq!(pairs.len(), 1);
    assert_eq!((pairs[0].inc.as_str(), pairs[0].dec.as_str()), ("node_ref", "node_unref"));
    let mined = summaries_for_pairs(&pairs, "refs");
    let result = analyze_sources([src], &mined, &AnalysisOptions::default()).unwrap();
    assert_eq!(result.reports.len(), 1);
    assert_eq!(result.reports[0].function, "scan");
}

#[test]
fn wakelock_family_finds_no_sleep_bugs() {
    let src = r#"module m;
        fn hold(wl) {
            wake_lock(wl);
            let ok = start(wl);
            if (ok < 0) { return 0; }
            wake_unlock(wl);
            return 0;
        }"#;
    let result =
        analyze_sources([src], &apis::android_wakelock_apis(), &AnalysisOptions::default())
            .unwrap();
    assert_eq!(result.reports.len(), 1);
    assert_eq!(result.reports[0].refcount.to_string(), "[arg0].wl");
}
