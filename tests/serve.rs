//! Daemon acceptance suite, driven end-to-end through the `--stdio`
//! transport: batch coalescing pinned by an obs span census, the
//! affected-cone contract of `patch` pinned against
//! [`incremental::affected_functions`], per-request deadlines surfacing
//! as degraded envelopes, and graceful shutdown draining every accepted
//! request.
//!
//! Tracing state is process-global, so every test here serializes on one
//! mutex (like `tests/obs.rs`) — a concurrently tracing test in the same
//! binary would leak spans into the census.

use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard};

use rid::core::incremental::affected_functions;
use rid::core::CallGraph;
use rid::obs::{trace, SpanKind};
use rid::serve::{serve_stdio, Engine, ServerConfig};
use serde_json::Value;

fn lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Three refcount-relevant functions in a chain (`top` → `mid` →
/// `leaf`) plus one function outside the chain, split over two modules
/// so a patch crosses module boundaries.
const MOD_A: &str = r#"module a;
fn leaf(dev) {
    let ret = pm_runtime_get_sync(dev);
    if (ret < 0) { return ret; }
    pm_runtime_put(dev);
    return 0;
}
fn mid(dev) {
    let r = leaf(dev);
    pm_runtime_get_sync(dev);
    pm_runtime_put(dev);
    return r;
}"#;

const MOD_B: &str = r#"module b;
fn top(dev) {
    let r = mid(dev);
    pm_runtime_get_sync(dev);
    pm_runtime_put(dev);
    return r;
}
fn other(dev) {
    pm_runtime_get_sync(dev);
    pm_runtime_put(dev);
    return 0;
}"#;

/// `leaf` with a different (still clean) body — a real change.
const MOD_A_EDIT: &str = r#"module a;
fn leaf(dev) {
    let ret = pm_runtime_get_sync(dev);
    if (ret < 0) { pm_runtime_put_noidle(dev); return ret; }
    pm_runtime_put(dev);
    return 0;
}
fn mid(dev) {
    let r = leaf(dev);
    pm_runtime_get_sync(dev);
    pm_runtime_put(dev);
    return r;
}"#;

fn line(value: Value) -> String {
    serde_json::to_string(&value).unwrap()
}

fn parse(response: &str) -> Value {
    serde_json::from_str(response).expect("daemon emits valid JSON lines")
}

/// Feeds `lines` through the stdio transport and returns the parsed
/// response lines in order.
fn run_stdio(lines: &[String]) -> Vec<Value> {
    let input = format!("{}\n", lines.join("\n"));
    let mut output = Vec::new();
    serve_stdio(std::io::Cursor::new(input), &mut output, ServerConfig::default())
        .expect("stdio serve loop");
    String::from_utf8(output).unwrap().lines().map(parse).collect()
}

fn register_line(id: u64) -> String {
    line(serde_json::json!({
        "id": id, "op": "register", "project": "p",
        "sources": serde_json::json!({ "a.ril": MOD_A, "b.ril": MOD_B }),
    }))
}

fn by_id(responses: &[Value], id: u64) -> &Value {
    responses
        .iter()
        .find(|r| r["id"].as_u64() == Some(id))
        .unwrap_or_else(|| panic!("no response with id {id}"))
}

/// Two deferred overlapping patches coalesce into ONE driver run — there
/// is exactly one `serve.patch` span and its value is the batch size —
/// and that run re-executes exactly the affected cone: the span census
/// counts one `exec` per function of the initial analyze plus one per
/// re-executed function of the patch, nothing more.
#[test]
fn coalesced_patches_cost_one_run_over_the_affected_cone() {
    let _g = lock();
    trace::enable(trace::DEFAULT_CAPACITY);
    let responses = run_stdio(&[
        register_line(1),
        line(serde_json::json!({ "id": 2, "op": "analyze", "project": "p" })),
        // Two patches to the same module, deferred so they queue; the
        // second (a.ril back to a *new* edit) wins the merge.
        line(serde_json::json!({
            "id": 3, "op": "patch", "project": "p", "defer": true,
            "sources": serde_json::json!({ "a.ril": MOD_A_EDIT }),
        })),
        line(serde_json::json!({
            "id": 4, "op": "patch", "project": "p", "defer": true,
            "sources": serde_json::json!({ "a.ril": MOD_A_EDIT }),
        })),
        line(serde_json::json!({ "id": 5, "op": "stats" })),
    ]);
    trace::disable();
    let trace = trace::drain();

    // Both coalesced requests got the shared result.
    for id in [3, 4] {
        let reply = by_id(&responses, id);
        assert_eq!(reply["ok"].as_bool(), Some(true), "{reply}");
        assert_eq!(reply["result"]["batched"].as_u64(), Some(2));
        assert_eq!(reply["result"]["changed"][0].as_str(), Some("leaf"));
    }
    let stats = by_id(&responses, 5);
    assert_eq!(stats["result"]["server"]["coalesced"].as_u64(), Some(1));

    // Census: one patch span for two requests, batch size recorded.
    let patch_spans: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::Serve && e.name == "patch:p")
        .collect();
    assert_eq!(patch_spans.len(), 1, "two coalesced patches must cost one driver run");
    assert_eq!(patch_spans[0].value, 2, "span value records the batch size");

    // Census: the session's exec count is exactly (initial analyze) +
    // (patch re-execution of the affected cone).
    let analyzed = by_id(&responses, 2)["result"]["functions_analyzed"]
        .as_u64()
        .expect("analyze reports functions_analyzed");
    let reexecuted = by_id(&responses, 3)["result"]["reexecuted"]
        .as_u64()
        .expect("patch reports reexecuted");
    let execs =
        trace.events.iter().filter(|e| e.kind == SpanKind::Exec).count() as u64;
    assert_eq!(
        execs,
        analyzed + reexecuted,
        "patch must re-execute only the affected cone (no hidden full run)"
    );
}

/// The `affected` list in a patch response is exactly
/// `incremental::affected_functions` of the post-edit program — the
/// changed function plus its transitive callers, across modules.
#[test]
fn patch_affected_set_matches_incremental_contract() {
    let _g = lock();
    let responses = run_stdio(&[
        register_line(1),
        line(serde_json::json!({ "id": 2, "op": "analyze", "project": "p" })),
        line(serde_json::json!({
            "id": 3, "op": "patch", "project": "p",
            "sources": serde_json::json!({ "a.ril": MOD_A_EDIT }),
        })),
    ]);
    let reply = by_id(&responses, 3);
    assert_eq!(reply["ok"].as_bool(), Some(true), "{reply}");

    let program = rid::frontend::parse_program([MOD_A_EDIT, MOD_B]).unwrap();
    let graph = CallGraph::build(&program);
    let expected: BTreeSet<String> =
        affected_functions(&graph, &["leaf"]).into_iter().collect();
    assert_eq!(
        expected,
        ["leaf", "mid", "top"].map(str::to_owned).into(),
        "fixture sanity: the chain is the cone"
    );

    let affected: BTreeSet<String> = reply["result"]["affected"]
        .as_array()
        .expect("affected list")
        .iter()
        .map(|v| v.as_str().unwrap().to_owned())
        .collect();
    assert_eq!(affected, expected);
    let reexecuted = reply["result"]["reexecuted"].as_u64().unwrap();
    assert_eq!(reexecuted, 3, "every function of the cone is refcount-relevant");
}

/// A request deadline of zero cannot be met; the run still answers
/// `ok`, but every analyzed function is surfaced in the response's
/// `degraded` array rather than silently dropped.
#[test]
fn exceeded_deadline_surfaces_degraded_envelope() {
    let _g = lock();
    let responses = run_stdio(&[
        register_line(1),
        line(serde_json::json!({
            "id": 2, "op": "analyze", "project": "p", "deadline_ms": 0,
        })),
    ]);
    let reply = by_id(&responses, 2);
    assert_eq!(reply["ok"].as_bool(), Some(true), "{reply}");
    let degraded = reply["degraded"].as_array().expect("degraded array");
    assert!(!degraded.is_empty(), "an instant deadline must degrade the run");
    for entry in degraded {
        assert!(entry["function"].as_str().is_some());
        assert!(entry["reason"].as_str().is_some());
    }
    // A later run without a deadline is unaffected (degradation is
    // per-request, not sticky project state).
    let responses = run_stdio(&[
        register_line(1),
        line(serde_json::json!({ "id": 2, "op": "analyze", "project": "p" })),
    ]);
    let clean = by_id(&responses, 2);
    assert_eq!(clean["degraded"].as_array().map(Vec::len), Some(0), "{clean}");
}

/// Shutdown drains: every request accepted before the shutdown —
/// including deferred ones still sitting in the queue — is answered,
/// and the shutdown reply comes last and counts them. Input after the
/// shutdown line is never read by the stdio transport (the connection
/// is closed); a request reaching a draining engine by another route is
/// rejected explicitly rather than silently dropped.
#[test]
fn shutdown_answers_every_accepted_request() {
    let _g = lock();
    let responses = run_stdio(&[
        register_line(1),
        line(serde_json::json!({ "id": 2, "op": "analyze", "project": "p", "defer": true })),
        line(serde_json::json!({ "id": 3, "op": "stats", "defer": true })),
        line(serde_json::json!({ "id": 4, "op": "shutdown" })),
        // Never read: serve_stdio returns once the shutdown is answered.
        line(serde_json::json!({ "id": 5, "op": "stats" })),
    ]);
    assert_eq!(responses.len(), 4, "everything up to the shutdown is answered");
    assert_eq!(by_id(&responses, 2)["ok"].as_bool(), Some(true));
    assert_eq!(by_id(&responses, 3)["ok"].as_bool(), Some(true));
    let bye = by_id(&responses, 4);
    assert_eq!(bye["ok"].as_bool(), Some(true));
    assert_eq!(bye["result"]["drained"].as_u64(), Some(2));
    // The shutdown reply is ordered after the drained work it counts.
    let pos = |id: u64| responses.iter().position(|r| r["id"].as_u64() == Some(id)).unwrap();
    assert!(pos(4) > pos(2) && pos(4) > pos(3));

    // A request that does reach a draining engine (e.g. over another
    // socket connection) is answered with an explicit error.
    let mut engine: Engine<()> = Engine::new(ServerConfig::default());
    engine.handle_line((), &line(serde_json::json!({ "id": 1, "op": "shutdown" })));
    assert!(engine.is_shutting_down());
    let late = engine.handle_line((), &line(serde_json::json!({ "id": 2, "op": "stats" })));
    let late = parse(&late[0].1);
    assert_eq!(late["ok"].as_bool(), Some(false));
    assert_eq!(late["error"]["kind"].as_str(), Some("shutting-down"));
}

/// A Figure 8 bug for the diff op: registered, analyzed resident, and
/// classified against client-supplied baselines.
const BUGGY_MOD: &str = r#"module buggy;
fn probe(dev, set) {
    let ret = pm_runtime_get_sync(dev);
    if (ret < 0) { return ret; }
    ret = drm_crtc_helper_set_config(set);
    pm_runtime_put_autosuspend(dev);
    return ret;
}"#;

/// The `diff` op classifies the project's resident reports against the
/// request's baseline hash list: an empty baseline makes every report
/// `new`; a baseline carrying the report's own hash makes it
/// `unchanged`; a stale baseline hash comes back `resolved`. The hashes
/// on the wire agree with [`rid::core::report_hash`] computed locally —
/// that agreement is the whole point of the stable-hash contract.
#[test]
fn diff_op_classifies_resident_reports_against_the_baseline() {
    let _g = lock();
    // The expected hash, computed library-side from the same source.
    let program = rid::frontend::parse_program([BUGGY_MOD]).unwrap();
    let result = rid::core::driver::analyze_program(
        &program,
        &rid::core::apis::linux_dpm_apis(),
        &rid::core::AnalysisOptions::default(),
    );
    assert_eq!(result.reports.len(), 1);
    let expected = rid::core::report_hash(&result.reports[0]);

    let stale = "0123456789abcdef0123456789abcdef";
    let responses = run_stdio(&[
        line(serde_json::json!({
            "id": 1, "op": "register", "project": "d",
            "sources": serde_json::json!({ "buggy.ril": BUGGY_MOD }),
        })),
        // Cold diff: forces one analysis, everything is new.
        line(serde_json::json!({ "id": 2, "op": "diff", "project": "d" })),
        // Baseline contains the report: unchanged, nothing new.
        line(serde_json::json!({
            "id": 3, "op": "diff", "project": "d", "baseline": [expected.as_str()],
        })),
        // Stale baseline entry: resolved, the resident report is new.
        line(serde_json::json!({
            "id": 4, "op": "diff", "project": "d", "baseline": [stale],
        })),
        line(serde_json::json!({ "id": 5, "op": "diff" })),
    ]);

    let cold = by_id(&responses, 2);
    assert_eq!(cold["ok"].as_bool(), Some(true));
    assert_eq!(cold["result"]["new_count"].as_u64(), Some(1));
    assert_eq!(cold["result"]["new"][0]["hash"].as_str(), Some(expected.as_str()));
    assert_eq!(cold["result"]["new"][0]["function"].as_str(), Some("probe"));

    let unchanged = by_id(&responses, 3);
    assert_eq!(unchanged["result"]["new_count"].as_u64(), Some(0));
    assert_eq!(unchanged["result"]["unchanged"][0]["hash"].as_str(), Some(expected.as_str()));
    assert_eq!(unchanged["result"]["resolved"].as_array().map(Vec::len), Some(0));

    let stale_reply = by_id(&responses, 4);
    assert_eq!(stale_reply["result"]["new_count"].as_u64(), Some(1));
    assert_eq!(stale_reply["result"]["resolved"][0].as_str(), Some(stale));

    // `diff` requires a project, like the other project-scoped ops.
    let usage = by_id(&responses, 5);
    assert_eq!(usage["ok"].as_bool(), Some(false));
    assert_eq!(usage["error"]["kind"].as_str(), Some("usage"));
}
