//! Golden tests pinning the human-readable report format: every line a
//! reviewer relies on (bug kind, refcount with restored parameter names,
//! per-path deltas, witness constraint and example, traces) must be
//! present and stable for the canonical Figure 8 bug.

use rid::core::{analyze_sources, apis::linux_dpm_apis, render_reports, AnalysisOptions};

const FIG8: &str = r#"module radeon;
fn radeon_crtc_set_config(dev, set) {
    let ret = pm_runtime_get_sync(dev);
    if (ret < 0) { return ret; }
    ret = drm_crtc_helper_set_config(set);
    pm_runtime_put_autosuspend(dev);
    return ret;
}"#;

#[test]
fn figure8_report_rendering_is_stable() {
    let program = rid::frontend::parse_program([FIG8]).unwrap();
    let result =
        analyze_sources([FIG8], &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
    assert_eq!(result.reports.len(), 1);
    let text = render_reports(&result.reports, Some(&program));

    // Every load-bearing line of the format, in order.
    let expected_fragments = [
        "--- report 1 of 1 ---",
        "[missed release (refcount never returns to zero)]",
        "inconsistent refcount changes in `radeon_crtc_set_config`",
        "refcount : [dev].pm",
        "changes it by",
        "+1",
        "both paths are feasible and indistinguishable under:",
        "example  :",
        "traces   : kept",
    ];
    let mut cursor = 0;
    for fragment in expected_fragments {
        match text[cursor..].find(fragment) {
            Some(at) => cursor += at + fragment.len(),
            None => panic!("missing/out-of-order fragment `{fragment}` in:\n{text}"),
        }
    }

    // The report is deterministic run to run.
    let again =
        analyze_sources([FIG8], &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
    assert_eq!(render_reports(&again.reports, Some(&program)), text);
}

#[test]
fn json_report_schema_is_stable() {
    let result =
        analyze_sources([FIG8], &linux_dpm_apis(), &AnalysisOptions::default()).unwrap();
    let json = serde_json::to_value(&result.reports).unwrap();
    let report = &json[0];
    for key in
        ["function", "refcount", "change_a", "change_b", "path_a", "path_b", "witness",
         "callback", "witness_model"]
    {
        assert!(report.get(key).is_some(), "JSON report missing key `{key}`: {report}");
    }
    assert_eq!(report["function"], "radeon_crtc_set_config");
    assert_eq!(report["callback"], false);
    // Round-trips through the serde schema.
    let back: Vec<rid::core::IppReport> = serde_json::from_value(json).unwrap();
    assert_eq!(back.len(), 1);
    assert_eq!(back[0].function, result.reports[0].function);
    assert_eq!(back[0].refcount, result.reports[0].refcount);
}
