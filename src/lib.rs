//! # RID — finding reference count bugs with inconsistent path pair checking
//!
//! A from-scratch Rust reproduction of *RID: Finding Reference Count Bugs
//! with Inconsistent Path Pair Checking* (ASPLOS 2016). An **inconsistent
//! path pair** (IPP) is two paths through the same function that are
//! indistinguishable from outside — same arguments, same return value —
//! yet change a reference count differently; whichever path runs, the
//! count can either never return to zero or go negative, so an IPP is a
//! bug no matter what the developer intended. RID finds these knowing
//! nothing but the refcount API specifications.
//!
//! This crate is a facade over the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`ir`] | the abstract program of the paper's Figure 3 |
//! | [`solver`] | exact difference-logic engine (the Z3 substitute) |
//! | [`frontend`] | RIL, a C-like language lowering onto the IR |
//! | [`core`] | summaries, symbolic execution, IPP checking, the driver |
//! | [`obs`] | span tracing, metrics registry, profiling aggregation |
//! | [`corpus`] | seeded synthetic kernel / Python-C corpora with ground truth |
//! | [`baseline`] | a Cpychecker-style escape-rule checker (Table 2's comparator) |
//! | [`serve`] | the batched, incremental analysis daemon (`rid serve`) |
//!
//! ## Quickstart
//!
//! ```
//! use rid::core::{analyze_sources, apis::linux_dpm_apis, AnalysisOptions};
//!
//! // Figure 8 of the paper: pm_runtime_get_sync increments the device's
//! // PM count even when it fails, but the early error return skips the
//! // balancing put.
//! let src = r#"module radeon;
//!     fn radeon_crtc_set_config(dev, set) {
//!         let ret = pm_runtime_get_sync(dev);
//!         if (ret < 0) { return ret; }
//!         ret = drm_crtc_helper_set_config(set);
//!         pm_runtime_put_autosuspend(dev);
//!         return ret;
//!     }"#;
//!
//! let result = analyze_sources([src], &linux_dpm_apis(), &AnalysisOptions::default())?;
//! assert_eq!(result.reports.len(), 1);
//! println!("{}", rid::core::render_reports(&result.reports, None));
//! # Ok::<(), rid::frontend::FrontendError>(())
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rid_baseline as baseline;
pub use rid_core as core;
pub use rid_corpus as corpus;
pub use rid_frontend as frontend;
pub use rid_ir as ir;
pub use rid_obs as obs;
pub use rid_serve as serve;
pub use rid_solver as solver;
