//! Offline stand-in for the `proptest` crate.
//!
//! Property tests here sample deterministically seeded random inputs and
//! assert on each case. Unlike real proptest there is **no shrinking**: a
//! failing case reports its inputs via the panic message of the failing
//! assertion only. The supported surface follows what this workspace uses:
//! `Strategy` with `prop_map`/`prop_recursive`/`boxed`, `Just`, `any`,
//! range and tuple strategies, `prop::collection::vec`, `prop::option::of`,
//! and the `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`
//! macros with `ProptestConfig::with_cases`.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Everything a property test typically imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Run configuration for one `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic SplitMix64 generator driving all sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (e.g. the test name) so every
    /// property gets a stable but distinct stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy: Clone {
    /// The generated value type.
    type Value;

    /// Draws one value. `depth` bounds recursive strategies.
    fn gen_value(&self, rng: &mut TestRng, depth: u32) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// whole type (depth-limited to `depth` levels) and returns the
    /// non-leaf cases; `self` provides the leaves. `desired_size` and
    /// `expected_branch_size` are accepted for signature compatibility and
    /// ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        Recursive {
            leaf: self.boxed(),
            max_depth: depth,
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<V> {
    fn gen_dyn(&self, rng: &mut TestRng, depth: u32) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng, depth: u32) -> S::Value {
        self.gen_value(rng, depth)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng, depth: u32) -> V {
        self.0.gen_dyn(rng, depth)
    }
}

/// Always produces a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng, _depth: u32) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U + Clone> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng, depth: u32) -> U {
        (self.f)(self.inner.gen_value(rng, depth))
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<V> {
    leaf: BoxedStrategy<V>,
    max_depth: u32,
    recurse: Rc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
}

impl<V> Clone for Recursive<V> {
    fn clone(&self) -> Self {
        Recursive {
            leaf: self.leaf.clone(),
            max_depth: self.max_depth,
            recurse: Rc::clone(&self.recurse),
        }
    }
}

impl<V: 'static> Strategy for Recursive<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng, depth: u32) -> V {
        // Half the draws recurse (until the depth cap), half take a leaf,
        // giving a spread of small and deep values.
        if depth >= self.max_depth || rng.below(2) == 0 {
            self.leaf.gen_value(rng, depth)
        } else {
            (self.recurse)(self.clone().boxed()).gen_value(rng, depth + 1)
        }
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds the union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union { options: self.options.clone() }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng, depth: u32) -> V {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].gen_value(rng, depth)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn gen_value(&self, rng: &mut TestRng, _depth: u32) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn gen_value(&self, rng: &mut TestRng, _depth: u32) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $ty;
                }
                (start as i128 + rng.below(span as u64) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng, depth: u32) -> Self::Value {
                ($(self.$idx.gen_value(rng, depth),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for the full domain of `bool`.
#[derive(Clone)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn gen_value(&self, rng: &mut TestRng, _depth: u32) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            type Strategy = FullInt<$ty>;
            fn arbitrary() -> FullInt<$ty> {
                FullInt(std::marker::PhantomData)
            }
        }
    )*};
}

/// Strategy for the full domain of an integer type.
pub struct FullInt<T>(std::marker::PhantomData<T>);

impl<T> Clone for FullInt<T> {
    fn clone(&self) -> Self {
        FullInt(std::marker::PhantomData)
    }
}

macro_rules! full_int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for FullInt<$ty> {
            type Value = $ty;
            fn gen_value(&self, rng: &mut TestRng, _depth: u32) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

full_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Combinator modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// A length bound for [`vec()`].
        pub trait IntoSizeRange {
            /// Lower and upper (inclusive) length bounds.
            fn bounds(self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(self) -> (usize, usize) {
                (self, self)
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn bounds(self) -> (usize, usize) {
                assert!(self.start < self.end, "empty vec size range");
                (self.start, self.end - 1)
            }
        }

        impl IntoSizeRange for RangeInclusive<usize> {
            fn bounds(self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        /// Generates `Vec`s of `element` with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            VecStrategy { element, min, max }
        }

        /// See [`vec()`].
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn gen_value(&self, rng: &mut TestRng, depth: u32) -> Vec<S::Value> {
                let span = (self.max - self.min + 1) as u64;
                let len = self.min + rng_below(rng, span) as usize;
                (0..len).map(|_| self.element.gen_value(rng, depth)).collect()
            }
        }

        fn rng_below(rng: &mut TestRng, bound: u64) -> u64 {
            // Local shim: TestRng::below is private to the crate root.
            crate::below(rng, bound)
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Generates `None` a quarter of the time, `Some` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        #[derive(Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn gen_value(&self, rng: &mut TestRng, depth: u32) -> Option<S::Value> {
                if crate::below(rng, 4) == 0 {
                    None
                } else {
                    Some(self.inner.gen_value(rng, depth))
                }
            }
        }
    }
}

pub(crate) fn below(rng: &mut TestRng, bound: u64) -> u64 {
    rng.below(bound)
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strategy) ),+ ])
    };
}

/// Asserts inside a property (no shrinking in this stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!{@cfg $config; $($rest)*}
    };
    (@cfg $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($binding:pat in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $binding = $crate::Strategy::gen_value(&($strategy), &mut __rng, 0);)*
                $body
            }
        }
        $crate::proptest!{@cfg $config; $($rest)*}
    };
    (@cfg $config:expr;) => {};
    ($($rest:tt)*) => {
        $crate::proptest!{@cfg $crate::ProptestConfig::default(); $($rest)*}
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn tree() -> impl Strategy<Value = Tree> {
        (0i64..10).prop_map(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        })
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds.
        fn ranges_in_bounds(x in 3i64..17, y in 0u32..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        fn vecs_respect_size(v in prop::collection::vec(0i64..100, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for item in &v { prop_assert!((0..100).contains(item)); }
        }

        fn oneof_and_just(x in prop_oneof![Just(1i64), Just(2i64), 10i64..20]) {
            prop_assert!(x == 1 || x == 2 || (10..20).contains(&x));
        }

        fn recursion_terminates(t in tree()) {
            prop_assert!(depth(&t) <= 3);
        }

        fn options_mix(o in prop::option::of(0i64..3), b in any::<bool>()) {
            if let Some(v) = o { prop_assert!((0..3).contains(&v)); }
            prop_assert!(u8::from(b) <= 1);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let strat = prop::collection::vec(0i64..1000, 0..10);
        for _ in 0..20 {
            assert_eq!(strat.gen_value(&mut a, 0), strat.gen_value(&mut b, 0));
        }
    }
}
