//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the Value-tree data model of the sibling `serde` stub, without `syn` or
//! `quote` (neither is available offline). The input token stream is parsed
//! directly with `proc_macro`, which is sufficient for the shapes this
//! workspace uses:
//!
//! - structs with named fields (any visibility, no generics),
//! - enums with unit and tuple variants (externally tagged),
//! - field attributes `#[serde(skip)]`, `#[serde(default)]`,
//!   `#[serde(with = "module")]`.
//!
//! Unsupported shapes produce a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match Item::parse(input) {
        Ok(item) => {
            let code = match (&item.kind, mode) {
                (ItemKind::Struct(fields), Mode::Ser) => struct_ser(&item.name, fields),
                (ItemKind::Struct(fields), Mode::De) => struct_de(&item.name, fields),
                (ItemKind::Enum(variants), Mode::Ser) => enum_ser(&item.name, variants),
                (ItemKind::Enum(variants), Mode::De) => enum_de(&item.name, variants),
            };
            match code.parse() {
                Ok(ts) => ts,
                Err(e) => error(&format!("serde stub derive generated bad code: {e}")),
            }
        }
        Err(msg) => error(&msg),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

#[derive(Default, Clone)]
struct SerdeAttrs {
    skip: bool,
    default: bool,
    with: Option<String>,
}

struct Field {
    name: String,
    attrs: SerdeAttrs,
}

struct Variant {
    name: String,
    /// Number of unnamed (tuple) fields; `None` for a unit variant.
    tuple_arity: Option<usize>,
}

enum ItemKind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Collects `#[serde(...)]` directives from a `#` + group attribute pair.
fn parse_serde_attr(group: &proc_macro::Group, out: &mut SerdeAttrs) {
    // The group is `[serde(...)]`; find the inner parenthesized list.
    let mut tokens = group.stream().into_iter();
    let Some(TokenTree::Ident(tag)) = tokens.next() else { return };
    if tag.to_string() != "serde" {
        return;
    }
    let Some(TokenTree::Group(args)) = tokens.next() else { return };
    let mut inner = args.stream().into_iter().peekable();
    while let Some(tt) = inner.next() {
        if let TokenTree::Ident(word) = &tt {
            match word.to_string().as_str() {
                "skip" | "skip_serializing" | "skip_deserializing" => out.skip = true,
                "default" => out.default = true,
                "with" => {
                    // `with = "path"`
                    if matches!(inner.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=')
                    {
                        inner.next();
                        if let Some(TokenTree::Literal(lit)) = inner.next() {
                            let text = lit.to_string();
                            out.with = Some(text.trim_matches('"').to_owned());
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

impl Item {
    fn parse(input: TokenStream) -> Result<Item, String> {
        let mut tokens = input.into_iter().peekable();
        // Skip attributes and visibility ahead of `struct`/`enum`.
        let keyword = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next(); // the [...] group
                }
                Some(TokenTree::Ident(word)) => {
                    let w = word.to_string();
                    if w == "struct" || w == "enum" {
                        break w;
                    }
                    // `pub`, `pub(crate)` etc. — the optional group is
                    // consumed by the generic skip below.
                }
                Some(TokenTree::Group(_)) => {} // pub(crate) restriction
                Some(_) => {}
                None => return Err("serde stub: could not find struct/enum".into()),
            }
        };
        let name = match tokens.next() {
            Some(TokenTree::Ident(word)) => word.to_string(),
            _ => return Err("serde stub: missing type name".into()),
        };
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!("serde stub: generic type `{name}` is unsupported"));
            }
            _ => {}
        }
        let body = loop {
            match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    return Err(format!(
                        "serde stub: tuple struct `{name}` is unsupported"
                    ));
                }
                Some(_) => {}
                None => return Err(format!("serde stub: `{name}` has no body")),
            }
        };
        let kind = if keyword == "struct" {
            ItemKind::Struct(parse_named_fields(body.stream())?)
        } else {
            ItemKind::Enum(parse_variants(body.stream())?)
        };
        Ok(Item { name, kind })
    }
}

/// Splits `stream` at top-level commas, tracking `<...>` depth so commas
/// inside generic arguments do not split (groups nest on their own).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().unwrap().push(tt);
    }
    if chunks.last().is_some_and(Vec::is_empty) {
        chunks.pop();
    }
    chunks
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_level(stream) {
        let mut attrs = SerdeAttrs::default();
        let mut name = None;
        let mut it = chunk.into_iter().peekable();
        while let Some(tt) = it.next() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = it.next() {
                        parse_serde_attr(&g, &mut attrs);
                    }
                }
                TokenTree::Ident(word) if word.to_string() == "pub" => {
                    if matches!(it.peek(), Some(TokenTree::Group(_))) {
                        it.next();
                    }
                }
                TokenTree::Ident(word) => {
                    name = Some(word.to_string());
                    break; // the rest is `: Type`
                }
                _ => {}
            }
        }
        if let Some(name) = name {
            fields.push(Field { name, attrs });
        }
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream) {
        let mut name = None;
        let mut tuple_arity = None;
        let mut it = chunk.into_iter();
        while let Some(tt) = it.next() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    it.next(); // attribute group; no variant-level attrs used
                }
                TokenTree::Ident(word) => {
                    name = Some(word.to_string());
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    tuple_arity = Some(split_top_level(g.stream()).len());
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    return Err(format!(
                        "serde stub: struct variant `{}` is unsupported",
                        name.unwrap_or_default()
                    ));
                }
                _ => {}
            }
        }
        if let Some(name) = name {
            variants.push(Variant { name, tuple_arity });
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn struct_ser(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for field in fields {
        if field.attrs.skip {
            continue;
        }
        let fname = &field.name;
        if let Some(with) = &field.attrs.with {
            pushes.push_str(&format!(
                "__m.push((::std::string::String::from({fname:?}), \
                 {with}::serialize(&self.{fname}, \
                 serde::__private::ValueSerializer::<__S::Error>::new())?));\n"
            ));
        } else {
            pushes.push_str(&format!(
                "__m.push((::std::string::String::from({fname:?}), \
                 serde::__private::to_value_err::<_, __S::Error>(&self.{fname})?));\n"
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn serialize<__S: serde::Serializer>(&self, serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 let mut __m: ::std::vec::Vec<(::std::string::String, serde::Value)> =\n\
                     ::std::vec::Vec::new();\n\
                 {pushes}\n\
                 serializer.serialize_value(serde::Value::Map(__m))\n\
             }}\n\
         }}\n"
    )
}

fn struct_de(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for field in fields {
        let fname = &field.name;
        if field.attrs.skip {
            inits.push_str(&format!("{fname}: ::core::default::Default::default(),\n"));
        } else if let Some(with) = &field.attrs.with {
            inits.push_str(&format!(
                "{fname}: {with}::deserialize(\
                 serde::__private::ValueDeserializer::<__D::Error>::new(\
                 serde::__private::take_raw::<__D::Error>(&mut __m, {fname:?})?))?,\n"
            ));
        } else if field.attrs.default {
            inits.push_str(&format!(
                "{fname}: serde::__private::take_field_or_default::<_, __D::Error>(\
                 &mut __m, {fname:?})?,\n"
            ));
        } else {
            inits.push_str(&format!(
                "{fname}: serde::__private::take_field::<_, __D::Error>(\
                 &mut __m, {fname:?})?,\n"
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 #[allow(unused_mut, unused_variables)]\n\
                 let mut __m = serde::__private::expect_map::<__D::Error>(\
                     deserializer.take_value()?)?;\n\
                 ::core::result::Result::Ok({name} {{\n\
                     {inits}\n\
                 }})\n\
             }}\n\
         }}\n"
    )
}

fn enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for variant in variants {
        let vname = &variant.name;
        match variant.tuple_arity {
            None => arms.push_str(&format!(
                "{name}::{vname} => serializer.serialize_value(\
                 serde::Value::Str(::std::string::String::from({vname:?}))),\n"
            )),
            Some(1) => arms.push_str(&format!(
                "{name}::{vname}(__f0) => serializer.serialize_value(\
                 serde::Value::Map(vec![(::std::string::String::from({vname:?}), \
                 serde::__private::to_value_err::<_, __S::Error>(__f0)?)])),\n"
            )),
            Some(n) => {
                let binders: Vec<String> = (0..n).map(|i| format!("__f{i}")).collect();
                let elems: Vec<String> = binders
                    .iter()
                    .map(|b| {
                        format!("serde::__private::to_value_err::<_, __S::Error>({b})?")
                    })
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname}({binds}) => serializer.serialize_value(\
                     serde::Value::Map(vec![(::std::string::String::from({vname:?}), \
                     serde::Value::Seq(vec![{elems}]))])),\n",
                    binds = binders.join(", "),
                    elems = elems.join(", "),
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn serialize<__S: serde::Serializer>(&self, serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 match self {{\n\
                     {arms}\n\
                 }}\n\
             }}\n\
         }}\n"
    )
}

fn enum_de(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for variant in variants {
        let vname = &variant.name;
        match variant.tuple_arity {
            None => unit_arms.push_str(&format!(
                "{vname:?} => ::core::result::Result::Ok({name}::{vname}),\n"
            )),
            Some(1) => data_arms.push_str(&format!(
                "{vname:?} => ::core::result::Result::Ok({name}::{vname}(\
                 serde::__private::from_value_err::<_, __D::Error>(__val)?)),\n"
            )),
            Some(n) => {
                let elems: Vec<String> = (0..n)
                    .map(|_| {
                        "serde::__private::from_value_err::<_, __D::Error>(\
                         __it.next().ok_or_else(|| serde::de::Error::custom(\
                         \"variant tuple too short\"))?)?"
                            .to_owned()
                    })
                    .collect();
                data_arms.push_str(&format!(
                    "{vname:?} => {{\n\
                         let __seq = serde::__private::expect_seq::<__D::Error>(__val)?;\n\
                         let mut __it = __seq.into_iter();\n\
                         ::core::result::Result::Ok({name}::{vname}({elems}))\n\
                     }}\n",
                    elems = elems.join(", "),
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 match deserializer.take_value()? {{\n\
                     #[allow(unused_variables)]\n\
                     serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::core::result::Result::Err(\
                             serde::de::Error::custom(::core::format_args!(\
                             \"unknown variant `{{}}` of {name}\", __other))),\n\
                     }},\n\
                     #[allow(unused_variables, unused_mut)]\n\
                     serde::Value::Map(mut __m) if __m.len() == 1 => {{\n\
                         let (__k, __val) = __m.remove(0);\n\
                         match __k.as_str() {{\n\
                             {data_arms}\n\
                             __other => ::core::result::Result::Err(\
                                 serde::de::Error::custom(::core::format_args!(\
                                 \"unknown variant `{{}}` of {name}\", __other))),\n\
                         }}\n\
                     }}\n\
                     __other => ::core::result::Result::Err(\
                         serde::de::Error::custom(::core::format_args!(\
                         \"bad value for enum {name}: {{}}\", __other))),\n\
                 }}\n\
             }}\n\
         }}\n"
    )
}
