//! Offline stand-in for the `rand` crate.
//!
//! Provides the deterministic-seeding surface this workspace uses:
//! `rand::rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen_range, gen_bool}` over integer ranges. The generator is
//! SplitMix64 — not the real StdRng stream, but the workspace only relies
//! on *self-consistent* seeded determinism, never on bit-compatibility
//! with upstream rand.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word from the stream.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be built from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore + Sized {
    /// A uniform sample from `range` (half-open or inclusive integer range).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// A range that can be sampled uniformly to a `T`.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    // Modulo bias is irrelevant for corpus generation.
    if bound == 0 {
        0
    } else {
        rng.next_u64() % bound
    }
}

/// An integer type uniform ranges can produce (mirrors rand's
/// `SampleUniform` so `gen_range(0..100) < some_u32` infers the element
/// type from context through a single blanket impl).
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to `i128` (lossless for every supported type).
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (caller guarantees range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> $ty {
                v as $ty
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = (self.start.to_i128(), self.end.to_i128());
        assert!(start < end, "empty range in gen_range");
        let span = (end - start) as u64;
        T::from_i128(start + uniform_below(rng, span) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = (self.start().to_i128(), self.end().to_i128());
        assert!(start <= end, "empty range in gen_range");
        let span = (end - start + 1) as u128;
        if span > u128::from(u64::MAX) {
            return T::from_i128(i128::from(rng.next_u64()));
        }
        T::from_i128(start + uniform_below(rng, span as u64) as i128)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator (SplitMix64 in this stub).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public-domain constants).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Alias: the workspace treats SmallRng and StdRng identically.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17i64);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
