//! Offline stand-in for `criterion`.
//!
//! Runs every registered benchmark a handful of times and prints a single
//! mean-time line — enough to smoke-test bench targets and eyeball
//! regressions without the statistics machinery of real criterion.

use std::time::Instant;

pub use std::hint::black_box;

const WARMUP_ITERS: u32 = 2;
const MEASURE_ITERS: u32 = 10;

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { nanos: 0, iters: 0 };
    f(&mut bencher);
    if bencher.iters > 0 {
        let mean = bencher.nanos / u128::from(bencher.iters);
        println!("bench {name}: {mean} ns/iter (stub harness, {} iters)", bencher.iters);
    } else {
        println!("bench {name}: no iterations recorded");
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_owned(), _parent: self }
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hint; ignored by the stub.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    nanos: u128,
    iters: u32,
}

impl Bencher {
    /// Times `f`, warm-up excluded.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(f());
        }
        self.nanos += start.elapsed().as_nanos();
        self.iters += MEASURE_ITERS;
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench-harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(10).bench_function("inner", |b| b.iter(|| black_box(3) * 2));
        group.finish();
    }
}
