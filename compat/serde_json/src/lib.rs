//! Offline stand-in for the `serde_json` crate.
//!
//! Bridges the serde stub's [`Value`] tree to JSON text: a hand-written
//! recursive-descent parser for `from_str`, and the `Value` renderer for
//! `to_string`/`to_string_pretty`. Covers the API surface this workspace
//! uses: `to_string`, `to_string_pretty`, `from_str`, `to_value`,
//! `from_value`, the [`Value`] type, and the [`json!`] macro.

use std::fmt;

pub use serde::Value;

/// Error produced by any serde_json stub operation.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Convenience alias matching serde_json.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(to_value(value)?.to_json())
}

/// Serializes `value` to human-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(to_value(value)?.to_json_pretty())
}

/// Serializes `value` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    serde::__private::to_value_err(value)
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: serde::DeserializeOwned>(value: Value) -> Result<T> {
    serde::__private::from_value_err(value)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: serde::DeserializeOwned>(text: &str) -> Result<T> {
    from_value(parse_value(text)?)
}

/// Builds a [`Value`] from JSON-ish literal syntax.
///
/// Object values and array elements may be arbitrary serializable
/// expressions; serialization failures panic (the stub has no fallible
/// serializers in practice).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Map(vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val).unwrap()) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::to_value(&$elem).unwrap() ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

fn parse_value(text: &str) -> Result<Value> {
    let mut parser = Parser { bytes: text.as_bytes(), at: 0 };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.at != parser.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", parser.at)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        match self.peek() {
            Some(b) if b == byte => {
                self.at += 1;
                Ok(())
            }
            other => Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                byte as char, self.at, other.map(|b| b as char)
            ))),
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(_) => self.number(),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Map(pairs));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` in object, found {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` in array, found {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at) {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.bytes.get(self.at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u escape"))?,
                            );
                            self.at += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?}",
                                other.map(|&b| b as char)
                            )))
                        }
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.at;
        if self.bytes.get(self.at) == Some(&b'-') {
            self.at += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.at) {
            match b {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("expected number at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad float `{text}`: {e}")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::new(format!("bad integer `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a": [1, -2, 3.5], "b": "x\ny", "c": null, "d": true}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][1], -2i64);
        assert_eq!(v["b"], "x\ny");
        assert!(v["c"].is_null());
        assert_eq!(v["d"], true);
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_renders_nested() {
        let v = json!({"k": [1i64, 2], "empty": Vec::<i64>::new()});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"k\": [\n"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn typed_round_trip() {
        let pairs: Vec<(String, i64)> = vec![("a".into(), 1), ("b".into(), 2)];
        let text = to_string(&pairs).unwrap();
        let back: Vec<(String, i64)> = from_str(&text).unwrap();
        assert_eq!(back, pairs);
    }
}
