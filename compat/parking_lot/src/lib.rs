//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! with parking_lot's non-poisoning API (guards come back directly, not
//! wrapped in `Result`). A poisoned std lock panics — acceptable here
//! because the analysis driver isolates panics before they can poison a
//! shared lock.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock (see [`std::sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A condition variable (see [`std::sync::Condvar`]). Unlike the real
/// parking_lot the wait API takes the guard **by value** and hands it
/// back — std guards cannot be re-acquired through an `&mut` borrow
/// without unsafe code.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates the condition variable.
    pub fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Waits until notified or `timeout` elapses, whichever comes first;
    /// returns the re-acquired guard.
    pub fn wait_for<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> MutexGuard<'a, T> {
        self.inner
            .wait_timeout(guard, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .0
    }
}

/// A reader-writer lock (see [`std::sync::RwLock`]).
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
