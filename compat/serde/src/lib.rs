//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no network access, so the
//! real serde cannot be vendored. This crate implements the small slice of
//! serde's API the workspace actually uses, over a simple [`Value`] tree
//! data model: a [`Serializer`] receives a fully built [`Value`] and a
//! [`Deserializer`] surrenders one. Derive macros (`serde_derive` stub)
//! generate impls against this model; the `serde_json` stub renders and
//! parses the same tree as JSON text.
//!
//! The supported surface:
//! - `#[derive(Serialize, Deserialize)]` on named-field structs and on
//!   enums with unit or tuple variants (externally tagged, like serde).
//! - Field attributes `#[serde(skip)]`, `#[serde(default)]`,
//!   `#[serde(with = "module")]`.
//! - Impls for the primitive types, `String`, `Vec`, `Option`, tuples,
//!   `BTreeMap`/`HashMap` with string keys, `HashSet`/`BTreeSet`,
//!   `Duration`, `Box`, and references.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::time::Duration;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serialized value passes through.
///
/// JSON-shaped: maps are ordered key/value pair lists so that struct field
/// order survives a round-trip.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (covers every integer type the workspace uses).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object, as insertion-ordered pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The elements, when this is a sequence.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer, when this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer as unsigned, when non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member lookup on objects; `None` for other kinds or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Whether this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Seq(v) => v.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        matches!(self, Value::Int(n) if n == other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        matches!(self, Value::Int(n) if u64::try_from(*n).map(|v| v == *other).unwrap_or(false))
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Seq(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Map(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let inner_pad = "  ".repeat(indent + 1);
        match self {
            Value::Seq(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&inner_pad);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Map(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&inner_pad);
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Renders the value as compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Renders the value as indented JSON text.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// Serialization error traits (the subset of `serde::ser` used here).
pub mod ser {
    use std::fmt;

    /// The error contract a [`crate::Serializer`] error type satisfies.
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        /// Builds an error from a message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization error traits (the subset of `serde::de` used here).
pub mod de {
    use std::fmt;

    /// The error contract a [`crate::Deserializer`] error type satisfies.
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        /// Builds an error from a message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

/// A simple string-backed error usable for both directions.
#[derive(Debug, Clone)]
pub struct SimpleError(pub String);

impl fmt::Display for SimpleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SimpleError {}

impl ser::Error for SimpleError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        SimpleError(msg.to_string())
    }
}

impl de::Error for SimpleError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        SimpleError(msg.to_string())
    }
}

/// A sink that consumes one fully built [`Value`].
pub trait Serializer: Sized {
    /// Result of a successful serialization.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Consumes the value.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A source that surrenders one [`Value`].
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Produces the value to decode.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can rebuild itself from the [`Value`] data model.
pub trait Deserialize<'de>: Sized {
    /// Deserializes from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable without borrowing from the input (always true in
/// this stub; provided for signature compatibility).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Plumbing shared by derive-macro expansions and the `serde_json` stub.
pub mod __private {
    use super::*;
    use std::marker::PhantomData;

    /// A [`Serializer`] producing the built [`Value`] with a caller-chosen
    /// error type.
    pub struct ValueSerializer<E> {
        _marker: PhantomData<E>,
    }

    impl<E> ValueSerializer<E> {
        /// Creates the serializer.
        pub fn new() -> Self {
            ValueSerializer { _marker: PhantomData }
        }
    }

    impl<E> Default for ValueSerializer<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E: ser::Error> Serializer for ValueSerializer<E> {
        type Ok = Value;
        type Error = E;
        fn serialize_value(self, value: Value) -> Result<Value, E> {
            Ok(value)
        }
    }

    /// A [`Deserializer`] yielding a stored [`Value`] with a caller-chosen
    /// error type.
    pub struct ValueDeserializer<E> {
        value: Value,
        _marker: PhantomData<E>,
    }

    impl<E> ValueDeserializer<E> {
        /// Wraps a value.
        pub fn new(value: Value) -> Self {
            ValueDeserializer { value, _marker: PhantomData }
        }
    }

    impl<'de, E: de::Error> Deserializer<'de> for ValueDeserializer<E> {
        type Error = E;
        fn take_value(self) -> Result<Value, E> {
            Ok(self.value)
        }
    }

    /// Serializes `value` into a [`Value`], with error type `E`.
    pub fn to_value_err<T: Serialize + ?Sized, E: ser::Error>(value: &T) -> Result<Value, E> {
        value.serialize(ValueSerializer::<E>::new())
    }

    /// Deserializes a `T` out of `value`, with error type `E`.
    pub fn from_value_err<T: for<'de> Deserialize<'de>, E: de::Error>(
        value: Value,
    ) -> Result<T, E> {
        T::deserialize(ValueDeserializer::<E>::new(value))
    }

    /// Unwraps a map value into its pairs.
    pub fn expect_map<E: de::Error>(value: Value) -> Result<Vec<(String, Value)>, E> {
        match value {
            Value::Map(pairs) => Ok(pairs),
            other => Err(E::custom(format_args!("expected map, found {other}"))),
        }
    }

    /// Unwraps a sequence value into its elements.
    pub fn expect_seq<E: de::Error>(value: Value) -> Result<Vec<Value>, E> {
        match value {
            Value::Seq(items) => Ok(items),
            other => Err(E::custom(format_args!("expected sequence, found {other}"))),
        }
    }

    /// Removes `key` from `pairs`, erroring when missing.
    pub fn take_raw<E: de::Error>(
        pairs: &mut Vec<(String, Value)>,
        key: &str,
    ) -> Result<Value, E> {
        match pairs.iter().position(|(k, _)| k == key) {
            Some(at) => Ok(pairs.remove(at).1),
            None => Err(E::custom(format_args!("missing field `{key}`"))),
        }
    }

    /// Removes and decodes `key` from `pairs`, erroring when missing.
    pub fn take_field<T: for<'de> Deserialize<'de>, E: de::Error>(
        pairs: &mut Vec<(String, Value)>,
        key: &str,
    ) -> Result<T, E> {
        from_value_err(take_raw::<E>(pairs, key)?)
    }

    /// Removes and decodes `key`, defaulting when absent (`#[serde(default)]`).
    pub fn take_field_or_default<T: for<'de> Deserialize<'de> + Default, E: de::Error>(
        pairs: &mut Vec<(String, Value)>,
        key: &str,
    ) -> Result<T, E> {
        match pairs.iter().position(|(k, _)| k == key) {
            Some(at) => from_value_err(pairs.remove(at).1),
            None => Ok(T::default()),
        }
    }
}

/// Serializes `value` into a [`Value`] tree.
pub fn to_value_tree<T: Serialize + ?Sized>(value: &T) -> Result<Value, SimpleError> {
    __private::to_value_err(value)
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value_tree<T: DeserializeOwned>(value: Value) -> Result<T, SimpleError> {
    __private::from_value_err(value)
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Int(*self as i64))
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_value()? {
                    Value::Int(n) => <$ty>::try_from(n).map_err(|_| {
                        de::Error::custom(format_args!("integer {n} out of range"))
                    }),
                    other => Err(de::Error::custom(format_args!(
                        "expected integer, found {other}"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format_args!("expected bool, found {other}"))),
        }
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Float(f) => Ok(f),
            Value::Int(n) => Ok(n as f64),
            other => Err(de::Error::custom(format_args!("expected number, found {other}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(f64::from(*self)))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_owned()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(de::Error::custom(format_args!("expected string, found {other}"))),
        }
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(inner) => inner.serialize(serializer),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            other => T::deserialize(__private::ValueDeserializer::<D::Error>::new(other))
                .map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut items = Vec::with_capacity(self.len());
        for item in self {
            items.push(__private::to_value_err::<_, S::Error>(item)?);
        }
        serializer.serialize_value(Value::Seq(items))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = __private::expect_seq::<D::Error>(deserializer.take_value()?)?;
        items
            .into_iter()
            .map(|v| T::deserialize(__private::ValueDeserializer::<D::Error>::new(v)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(__private::to_value_err::<_, S::Error>(&self.$idx)?,)+
                ];
                serializer.serialize_value(Value::Seq(items))
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let items = __private::expect_seq::<D::Error>(deserializer.take_value()?)?;
                let mut it = items.into_iter();
                Ok((
                    $({
                        let _ = $idx;
                        let item = it.next().ok_or_else(|| {
                            de::Error::custom("tuple too short")
                        })?;
                        $name::deserialize(
                            __private::ValueDeserializer::<D::Error>::new(item),
                        )?
                    },)+
                ))
            }
        }
    )*};
}

impl_tuple! {
    (T0:0)
    (T0:0, T1:1)
    (T0:0, T1:1, T2:2)
    (T0:0, T1:1, T2:2, T3:3)
}

fn serialize_string_map<'a, V: Serialize + 'a, S: Serializer>(
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    serializer: S,
) -> Result<S::Ok, S::Error> {
    let mut pairs = Vec::new();
    for (k, v) in entries {
        pairs.push((k.clone(), __private::to_value_err::<_, S::Error>(v)?));
    }
    serializer.serialize_value(Value::Map(pairs))
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_string_map(self.iter(), serializer)
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let pairs = __private::expect_map::<D::Error>(deserializer.take_value()?)?;
        pairs
            .into_iter()
            .map(|(k, v)| {
                Ok((k, V::deserialize(__private::ValueDeserializer::<D::Error>::new(v))?))
            })
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Deterministic output: sort keys.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        serialize_string_map(entries.into_iter(), serializer)
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for HashMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let pairs = __private::expect_map::<D::Error>(deserializer.take_value()?)?;
        pairs
            .into_iter()
            .map(|(k, v)| {
                Ok((k, V::deserialize(__private::ValueDeserializer::<D::Error>::new(v))?))
            })
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut items = Vec::with_capacity(self.len());
        for item in self {
            items.push(__private::to_value_err::<_, S::Error>(item)?);
        }
        serializer.serialize_value(Value::Seq(items))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = __private::expect_seq::<D::Error>(deserializer.take_value()?)?;
        items
            .into_iter()
            .map(|v| T::deserialize(__private::ValueDeserializer::<D::Error>::new(v)))
            .collect()
    }
}

impl Serialize for HashSet<String> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Deterministic output: sort elements.
        let mut items: Vec<&String> = self.iter().collect();
        items.sort();
        let items = items
            .into_iter()
            .map(|s| Value::Str(s.clone()))
            .collect::<Vec<_>>();
        serializer.serialize_value(Value::Seq(items))
    }
}

impl<'de> Deserialize<'de> for HashSet<String> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = __private::expect_seq::<D::Error>(deserializer.take_value()?)?;
        items
            .into_iter()
            .map(|v| {
                String::deserialize(__private::ValueDeserializer::<D::Error>::new(v))
            })
            .collect()
    }
}

impl Serialize for Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Map(vec![
            ("secs".to_owned(), Value::Int(self.as_secs() as i64)),
            ("nanos".to_owned(), Value::Int(i64::from(self.subsec_nanos()))),
        ]))
    }
}

impl<'de> Deserialize<'de> for Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut pairs = __private::expect_map::<D::Error>(deserializer.take_value()?)?;
        let secs: u64 = __private::take_field(&mut pairs, "secs")?;
        let nanos: u32 = __private::take_field(&mut pairs, "nanos")?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let v = Value::Map(vec![
            ("a".into(), Value::Int(3)),
            ("b".into(), Value::Seq(vec![Value::Str("x".into())])),
        ]);
        assert_eq!(v["a"], 3i64);
        assert_eq!(v["b"][0], "x");
        assert!(v.get("missing").is_none());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn round_trip_std_types() {
        let map: BTreeMap<String, Vec<i64>> =
            [("k".to_owned(), vec![1, 2, 3])].into_iter().collect();
        let tree = to_value_tree(&map).unwrap();
        let back: BTreeMap<String, Vec<i64>> = from_value_tree(tree).unwrap();
        assert_eq!(back, map);

        let d = Duration::new(7, 250);
        let back: Duration = from_value_tree(to_value_tree(&d).unwrap()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn json_text_escaping() {
        let v = Value::Str("a\"b\\c\nd".into());
        assert_eq!(v.to_json(), r#""a\"b\\c\nd""#);
    }
}
