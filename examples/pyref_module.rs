//! Python/C reference counting: RID versus the Cpychecker-style escape
//! rule on one extension module (the §6.6 comparison in miniature).
//!
//! The module contains four functions:
//!
//! * `make_pair` — a bug **both** tools find (missing `Py_DECREF` on an
//!   error path, single-assignment code);
//! * `build_entry` — a bug **only RID** finds (the baseline bails on the
//!   reassigned status variable — the non-SSA limitation);
//! * `cache_default` — a bug **only the baseline** finds (a single-path
//!   leak has no inconsistent pair);
//! * `grab_ref` — an intentional wrapper: the baseline false-alarms, RID
//!   stays silent (§2.1).
//!
//! ```text
//! cargo run --example pyref_module
//! ```

use rid::baseline::check_sources;
use rid::core::{analyze_sources, render_reports, AnalysisOptions};

const MODULE: &str = r#"module ext;

fn make_pair(arg) {
    let obj = PyList_New(0);
    if (obj == null) { return null; }
    let rc = fill_pair(obj, arg);
    if (rc < 0) { return null; }      // BUG: missing Py_DECREF(obj)
    return obj;
}

fn build_entry(arg) {
    let st = 0;
    let obj = PyDict_New();
    if (obj == null) { return -1; }
    st = fill_entry(obj, arg);
    if (st < 0) { return -1; }        // BUG: missing Py_DECREF(obj)
    Py_DECREF(obj);
    return 0;
}

fn cache_default(obj, table) {
    Py_INCREF(obj);
    store_entry(table, obj);          // borrows; BUG: the +1 never drops
    return 0;
}

fn grab_ref(obj) {
    Py_INCREF(obj);                   // intentional: caller's reference
    return;
}
"#;

fn main() {
    let apis = rid::core::apis::python_c_apis();

    let rid_result =
        analyze_sources([MODULE], &apis, &AnalysisOptions::default()).expect("module parses");
    println!("=== RID (inconsistent path pairs) ===\n");
    println!("{}", render_reports(&rid_result.reports, None));

    let baseline = check_sources([MODULE], &apis).expect("module parses");
    println!("=== escape-rule baseline (Cpychecker-style) ===\n");
    for report in &baseline.reports {
        println!(
            "`{}`: {} changed by {:+}, escape rule expected {:+}",
            report.function, report.refcount, report.delta, report.expected
        );
    }
    if !baseline.bailed_functions.is_empty() {
        println!(
            "\nbaseline bailed on (reassigned variables, non-SSA): {:?}",
            baseline.bailed_functions
        );
    }

    // The Table 2 relationship, in miniature.
    let rid_found: Vec<&str> = rid_result.reports.iter().map(|r| r.function.as_str()).collect();
    let base_found: Vec<&str> = baseline.reports.iter().map(|r| r.function.as_str()).collect();
    assert!(rid_found.contains(&"make_pair") && base_found.contains(&"make_pair"));
    assert!(rid_found.contains(&"build_entry") && !base_found.contains(&"build_entry"));
    assert!(!rid_found.contains(&"cache_default") && base_found.contains(&"cache_default"));
    assert!(!rid_found.contains(&"grab_ref") && base_found.contains(&"grab_ref"));
    println!("\nsummary: common=make_pair, RID-only=build_entry,");
    println!("         baseline-only=cache_default, baseline false alarm=grab_ref");
}
