//! Whole-kernel scan: generate a small synthetic kernel, classify every
//! function (§5.2), analyze the relevant slice, and score the reports
//! against the seeded ground truth — the full evaluation pipeline in one
//! run.
//!
//! ```text
//! cargo run --example kernel_scan [-- <seed>]
//! ```

use rid::core::{analyze_sources, AnalysisOptions, BugKind};
use rid::corpus::kernel::{generate_kernel, KernelConfig};
use std::collections::HashSet;

fn main() {
    let seed: u64 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2016);
    let config = KernelConfig::tiny(seed);
    let corpus = generate_kernel(&config);
    println!(
        "generated kernel: {} modules, {} functions, {} seeded bugs",
        corpus.sources.len(),
        corpus.function_count,
        corpus.bugs.len()
    );

    let options = AnalysisOptions::default();
    let result = analyze_sources(
        corpus.sources.iter().map(String::as_str),
        &rid::core::apis::linux_dpm_apis(),
        &options,
    )
    .expect("generated corpus parses");

    let counts = result.classification.counts();
    println!("\nclassification (§5.2):");
    println!("  refcount-changing      : {}", counts.refcount_changing);
    println!("  affecting, analyzed    : {}", counts.affecting_analyzed);
    println!("  affecting, skipped     : {}", counts.affecting_skipped);
    println!("  other (ignored)        : {}", counts.other);
    println!(
        "  => analyzed {} of {} functions",
        result.stats.functions_analyzed, result.stats.functions_total
    );

    println!("\nreports ({}):", result.reports.len());
    for report in &result.reports {
        println!(
            "  [{}] {} — {} ({:+} vs {:+})",
            match rid::core::classify_report(report) {
                BugKind::MissedRelease => "missed release",
                BugKind::OverRelease => "over release",
                BugKind::LocalLeak => "local leak",
            },
            report.function,
            report.refcount,
            report.change_a,
            report.change_b
        );
    }

    // Score against ground truth.
    let reported: HashSet<&str> =
        result.reports.iter().map(|r| r.function.as_str()).collect();
    let detectable: HashSet<&str> = corpus.detectable_bug_functions().collect();
    let fps: HashSet<&str> =
        corpus.expected_false_positives.iter().map(String::as_str).collect();
    let found = detectable.iter().filter(|f| reported.contains(**f)).count();
    let fp_hits = fps.iter().filter(|f| reported.contains(**f)).count();
    println!("\nground truth:");
    println!("  seeded detectable bugs found : {found} / {}", detectable.len());
    println!("  §6.4 FP idioms reported      : {fp_hits} / {}", fps.len());
    println!(
        "  out-of-power bugs (Fig. 10 / loop) correctly missed: {} / {}",
        corpus.missed_bug_functions().filter(|f| !reported.contains(f)).count(),
        corpus.missed_bug_functions().count()
    );
    assert_eq!(found, detectable.len(), "all detectable bugs must be found");
}
