//! Quickstart: the paper's worked example (Figures 1 and 2).
//!
//! Builds `foo()` and `reg_read()` from Figure 1 programmatically with the
//! IR builder, summarizes them bottom-up, and shows the inconsistent path
//! pair exactly as Figure 2 derives it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

// The paper's worked example really is named `foo`.
#![allow(clippy::disallowed_names)]

use rid::core::{check_ipps, render_reports, summarize_paths, PathLimits, SummaryDb};
use rid::core::ipp::build_summary;
use rid::ir::{FunctionBuilder, Operand, Pred, Rvalue};
use rid::solver::SatOptions;

fn main() {
    // reg_read(d, reg): returns the register value (non-negative) when d
    // is valid, −1 otherwise — Figure 2's bottom-left listing.
    let mut b = FunctionBuilder::new("reg_read", ["d", "reg"]);
    let valid = b.new_block();
    let fail = b.new_block();
    let ok = b.new_block();
    b.assign("c", Rvalue::cmp(Pred::Ne, Operand::var("d"), Operand::Null));
    b.branch("c", valid, fail);
    b.switch_to(valid);
    b.assign("ret", Rvalue::Random); // the asm register read
    b.assign("c2", Rvalue::cmp(Pred::Ge, Operand::var("ret"), Operand::Int(0)));
    b.branch("c2", ok, fail);
    b.switch_to(ok);
    b.ret(Operand::var("ret"));
    b.switch_to(fail);
    b.ret(Operand::Int(-1));
    let reg_read = b.finish().expect("reg_read is structurally valid");

    // foo(dev): Figure 1 — increments the PM count only when the register
    // holds a positive value, but always returns 0.
    let mut b = FunctionBuilder::new("foo", ["dev"]);
    let exit = b.new_block();
    let body = b.new_block();
    b.assume(Pred::Ne, Operand::var("dev"), Operand::Null);
    b.assign("v", Rvalue::call("reg_read", [Operand::var("dev"), Operand::Int(0x54)]));
    b.assign("t", Rvalue::cmp(Pred::Le, Operand::var("v"), Operand::Int(0)));
    b.branch("t", exit, body);
    b.switch_to(body);
    b.call("inc_pmcount", [Operand::var("dev")]);
    b.jump(exit);
    b.switch_to(exit);
    b.ret(Operand::Int(0));
    let foo = b.finish().expect("foo is structurally valid");

    println!("=== the program (Figure 1) ===\n{reg_read}\n\n{foo}\n");

    // Predefined summary for inc_pmcount (Figure 2's bottom-right box):
    // increments [d].pm when d is non-null.
    let mut db = SummaryDb::new();
    db.insert(
        rid::core::apis::PredefinedBuilder::new("inc_pmcount")
            .entry(|e| e.arg_non_null(0).change_arg_field(0, "pm", 1))
            .build(),
    );

    let limits = PathLimits::default();
    let sat = SatOptions::default();

    // Bottom-up: summarize reg_read first (reverse topological order).
    let reg_outcome = summarize_paths(&reg_read, &db, &limits, sat);
    let reg_ipp = check_ipps("reg_read", &reg_outcome.path_entries, sat);
    let reg_summary =
        build_summary("reg_read", &reg_outcome.path_entries, &reg_ipp, reg_outcome.partial);
    println!("=== summary of reg_read() ({} entries) ===", reg_summary.entries.len());
    for (i, entry) in reg_summary.entries.iter().enumerate() {
        println!("entry {}: cons: {}", i + 1, entry.cons);
    }
    db.insert(reg_summary);

    // Now foo: its two paths survive with identical external constraints
    // but different changes to [dev].pm — the inconsistent path pair.
    let outcome = summarize_paths(&foo, &db, &limits, sat);
    println!("\n=== path summaries of foo() ===");
    for pe in &outcome.path_entries {
        let changes: Vec<String> =
            pe.entry.changes.iter().map(|(rc, d)| format!("{rc}: {d:+}")).collect();
        println!(
            "path {:?}: cons: {} | changes: [{}]",
            pe.trace.iter().map(|b| b.0).collect::<Vec<_>>(),
            pe.entry.cons,
            changes.join(", ")
        );
    }

    let ipp = check_ipps("foo", &outcome.path_entries, sat);
    println!("\n=== IPP check (step III of Figure 2) ===");
    println!("{}", render_reports(&ipp.reports, None));
    assert_eq!(ipp.reports.len(), 1, "the Figure 1 bug must be found");
    println!("as in the paper: path pair (p1, p2) is inconsistent — a refcount bug.");
}
