//! The three future-work extensions, end to end:
//!
//! 1. **Callback contract** (§6.4/§7): catching Figure 10's IRQ-handler
//!    bug through its function-pointer registration.
//! 2. **Incremental recheck** (§5.4, limitation 4): fixing a reported
//!    function and re-analyzing only it and its callers, reusing every
//!    other summary.
//! 3. **Stronger-property rules** (§2.1/§4.5): the escape rule layered on
//!    RID's own summaries, catching a single-path leak that has no
//!    inconsistent pair.
//!
//! ```text
//! cargo run --example extensions
//! ```

use rid::core::checks::{check_summary, SummaryRule};
use rid::core::incremental::reanalyze;
use rid::core::{analyze_sources, apis, AnalysisOptions};

fn main() {
    callback_contract();
    incremental_recheck();
    stronger_rules();
}

fn callback_contract() {
    println!("=== 1. callback contract (Figure 10) ===\n");
    let src = r#"module arizona;
        fn arizona_irq_thread(irq, data) {
            let ret = pm_runtime_get_sync(data.dev);
            if (ret < 0) {
                dev_err(data);
                return 0;    // IRQ_NONE — with the +1 retained
            }
            handle(data);
            pm_runtime_put(data.dev);
            return 1;        // IRQ_HANDLED
        }
        fn arizona_probe(dev) {
            request_irq(dev.irq, @arizona_irq_thread, dev);
            return 0;
        }"#;
    let apis = apis::linux_dpm_apis();

    let baseline =
        analyze_sources([src], &apis, &AnalysisOptions::default()).expect("parses");
    println!("paper-default RID: {} report(s) — the documented false negative", baseline.reports.len());
    assert!(baseline.reports.is_empty());

    let extended = analyze_sources(
        [src],
        &apis,
        &AnalysisOptions { check_callbacks: true, ..Default::default() },
    )
    .expect("parses");
    println!("with the callback contract: {} report(s):", extended.reports.len());
    print!("{}", rid::core::render_reports(&extended.reports, None));
    assert_eq!(extended.reports.len(), 1);
    assert!(extended.reports[0].callback);
}

fn incremental_recheck() {
    println!("\n=== 2. incremental recheck (§5.4) ===\n");
    let lib_buggy = r#"module lib;
        fn get_ref(dev) {
            let r = probe(dev);
            if (r < 0) { return 0; }    // returns 0 with no get...
            pm_runtime_get_sync(dev);   // ...or 0 with +1: inconsistent
            return 0;
        }"#;
    let lib_fixed = r#"module lib;
        fn get_ref(dev) {
            pm_runtime_get_sync(dev);
            let r = probe(dev);
            if (r < 0) { pm_runtime_put(dev); return -1; }
            return 0;
        }"#;
    let app = r#"module app;
        fn caller(dev) {
            let st = get_ref(dev);
            if (st < 0) { return 0; }
            let u = use_dev(dev);
            if (u < 0) { return 0; }    // BUG: put skipped on this path
            pm_runtime_put(dev);
            return 0;
        }"#;
    let apis = apis::linux_dpm_apis();
    let options = AnalysisOptions::default();

    let before = analyze_sources([lib_buggy, app], &apis, &options).expect("parses");
    let functions: Vec<&str> = before.reports.iter().map(|r| r.function.as_str()).collect();
    println!("before the fix, reports on: {functions:?}");

    let fixed_program =
        rid::frontend::parse_program([lib_fixed, app]).expect("fixed sources parse");
    let after = reanalyze(&fixed_program, &apis, &before, &["get_ref"], &options);
    let functions: Vec<&str> = after.reports.iter().map(|r| r.function.as_str()).collect();
    println!(
        "after fixing get_ref and rechecking {} function(s): reports on {functions:?}",
        after.stats.functions_analyzed
    );
    assert!(functions.contains(&"caller"));
    assert!(!functions.contains(&"get_ref"));
}

fn stronger_rules() {
    println!("\n=== 3. stronger-property rules on summaries (§4.5) ===\n");
    let src = r#"module ext;
        fn cache_default(obj, table) {
            Py_INCREF(obj);
            store_entry(table, obj);
            return 0;
        }"#;
    let apis = apis::python_c_apis();
    let result = analyze_sources([src], &apis, &AnalysisOptions::default()).expect("parses");
    println!("IPP reports: {} (a single path has no pair)", result.reports.len());
    assert!(result.reports.is_empty());

    let summary = result.summaries.get("cache_default").expect("summarized");
    let violations = check_summary(summary, SummaryRule::EscapeRule);
    println!("escape-rule violations on the summary: {}", violations.len());
    for v in &violations {
        println!(
            "  `{}` entry {}: {} changed by {:+}, rule allows {:+}",
            v.function, v.entry_index, v.refcount, v.delta, v.expected
        );
    }
    assert_eq!(violations.len(), 1);
    println!("\nthe stronger rule catches what IPP checking cannot — at the cost");
    println!("of false alarms on intentional wrappers (§2.1), which is exactly");
    println!("why the paper keeps it an optional layer.");
}
