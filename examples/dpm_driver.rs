//! The Linux DPM bug gallery: Figures 8, 9 and 10 of the paper, analyzed
//! end-to-end from RIL source.
//!
//! * `radeon_crtc_set_config` (Figure 8) — the developer assumes
//!   `pm_runtime_get_sync` does nothing on failure; it always increments.
//! * `usb_autopm_get_interface` + `idmouse_open` (Figure 9) — RID
//!   summarizes the subsystem wrapper precisely and finds the caller's
//!   missing put on the `idmouse_create_image` error path.
//! * `arizona_irq_thread` (Figure 10) — internally consistent; the bug
//!   only shows at function-pointer callers. RID stays silent: the
//!   paper's documented false negative.
//!
//! ```text
//! cargo run --example dpm_driver
//! ```

use rid::core::{analyze_sources, render_reports, AnalysisOptions};

const RADEON: &str = r#"module radeon;
// Figure 8 of the paper.
fn radeon_crtc_set_config(dev, set) {
    let ret = pm_runtime_get_sync(dev);
    if (ret < 0) {
        return ret;                       // BUG: the get already counted
    }
    ret = drm_crtc_helper_set_config(set);
    pm_runtime_put_autosuspend(dev);
    return ret;
}"#;

const USB: &str = r#"module usb;
// Figure 9 of the paper: the wrapper balances the count on error...
fn usb_autopm_get_interface(intf) {
    let status = pm_runtime_get_sync(intf.dev);
    if (status < 0) {
        pm_runtime_put_sync(intf.dev);
    }
    if (status > 0) {
        status = 0;
    }
    return status;
}

fn usb_autopm_put_interface(intf) {
    pm_runtime_put_sync(intf.dev);
    return;
}"#;

const IDMOUSE: &str = r#"module idmouse;
// ...so idmouse_open's first error path is fine, but the second is not.
fn idmouse_open(inode, file) {
    let interface = inode.intf;
    let result = usb_autopm_get_interface(interface);
    if (result) { goto error; }
    result = idmouse_create_image(inode);
    if (result) { goto error; }           // BUG: missing autopm_put
    usb_autopm_put_interface(interface);
error:
    return result;
}"#;

const ARIZONA: &str = r#"module arizona;
// Figure 10 of the paper: IRQ_NONE (0) vs IRQ_HANDLED (1) distinguish the
// paths, so no inconsistent pair exists inside the function.
fn arizona_irq_thread(irq, data) {
    let ret = pm_runtime_get_sync(data.dev);
    if (ret < 0) {
        dev_err(data);
        return 0;
    }
    handle_irq(data);
    pm_runtime_put(data.dev);
    return 1;
}"#;

fn main() {
    let sources = [RADEON, USB, IDMOUSE, ARIZONA];
    let program =
        rid::frontend::parse_program(sources).expect("the gallery sources parse");
    let result = analyze_sources(
        sources,
        &rid::core::apis::linux_dpm_apis(),
        &AnalysisOptions::default(),
    )
    .expect("analysis runs");

    println!("=== RID reports over the Figure 8/9/10 gallery ===\n");
    println!("{}", render_reports(&result.reports, Some(&program)));

    // The wrapper summary the analysis derived (Figure 9's point: no
    // manual annotation needed — the wrapper's behaviour is computed).
    let wrapper = result.summaries.get("usb_autopm_get_interface").unwrap();
    println!("=== derived summary of usb_autopm_get_interface ===");
    for (i, entry) in wrapper.entries.iter().enumerate() {
        let changes: Vec<String> =
            entry.changes.iter().map(|(rc, d)| format!("{rc}: {d:+}")).collect();
        println!("entry {}: cons: {} | changes: [{}]", i + 1, entry.cons, changes.join(", "));
    }

    let functions: Vec<&str> = result.reports.iter().map(|r| r.function.as_str()).collect();
    assert!(functions.contains(&"radeon_crtc_set_config"), "Figure 8 found");
    assert!(functions.contains(&"idmouse_open"), "Figure 9 found");
    assert!(!functions.contains(&"arizona_irq_thread"), "Figure 10 is a known miss");
    assert!(
        !functions.contains(&"usb_autopm_get_interface"),
        "the wrapper itself is consistent"
    );
    println!("\ngallery verified: Fig. 8 ✓  Fig. 9 ✓  Fig. 10 correctly missed ✓");
}
