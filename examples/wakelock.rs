//! Android wake locks — the paper's introductory motivation ("bugs
//! related to wake locks ... a significant root cause of abnormal power
//! consumption on smartphones").
//!
//! The same IPP machinery applies unchanged: only the predefined API
//! summaries differ ([`rid::core::apis::android_wakelock_apis`]). A wake
//! lock whose counter never returns to zero keeps the phone awake — a
//! no-sleep energy bug.
//!
//! ```text
//! cargo run --example wakelock
//! ```

use rid::core::{analyze_sources, apis, render_reports, AnalysisOptions};

const SYNC_SERVICE: &str = r#"module sync_service;

// A classic no-sleep bug: the early error return skips wake_unlock.
fn sync_mailbox(wl, account) {
    wake_lock(wl);
    let conn = open_connection(account);
    if (conn == null) {
        return -1;               // BUG: lock held forever — no sleep
    }
    let n = fetch_messages(conn);
    wake_unlock(wl);
    return n;
}

// Correct variant: every path unlocks.
fn sync_calendar(wl, account) {
    wake_lock(wl);
    let conn = open_connection(account);
    if (conn == null) {
        wake_unlock(wl);
        return -1;
    }
    let n = fetch_events(conn);
    wake_unlock(wl);
    return n;
}

// Distinguishable by return value: the caller is told the lock is kept
// (a handoff API) — consistent, not a bug.
fn grab_for_download(wl) {
    let ok = can_download(wl);
    if (ok) {
        wake_lock(wl);
        return 1;                // caller knows it must unlock
    }
    return 0;
}
"#;

fn main() {
    let result = analyze_sources(
        [SYNC_SERVICE],
        &apis::android_wakelock_apis(),
        &AnalysisOptions::default(),
    )
    .expect("module parses");
    let program = rid::frontend::parse_program([SYNC_SERVICE]).unwrap();

    println!("=== wake-lock scan ===\n");
    print!("{}", render_reports(&result.reports, Some(&program)));

    let functions: Vec<&str> = result.reports.iter().map(|r| r.function.as_str()).collect();
    assert!(functions.contains(&"sync_mailbox"), "the no-sleep bug is found");
    assert!(!functions.contains(&"sync_calendar"), "the balanced variant is clean");
    assert!(
        !functions.contains(&"grab_for_download"),
        "return-value handoff is consistent"
    );
    println!("sync_mailbox leaks the lock ✓ — the no-sleep energy bug class");
    println!("from the paper's introduction, found with a 5-line API spec.");
}
