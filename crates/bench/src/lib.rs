//! # rid-bench — the evaluation harness
//!
//! One binary per table / quantitative claim in §6 of the paper (see
//! `DESIGN.md` for the experiment index):
//!
//! | binary      | paper artifact |
//! |-------------|----------------|
//! | `table1`    | Table 1 — function classification census |
//! | `table2`    | Table 2 — RID vs Cpychecker on 3 Python/C programs |
//! | `headline`  | §6.2 — confirmed bugs out of total reports |
//! | `pm_misuse` | §6.3 — `pm_runtime_get*` error-handling census |
//! | `perf`      | §6.5 — classification/analysis time scaling |
//! | `ablation`  | design-choice knobs (limits, selectivity, threads) |
//! | `faults`    | fault-tolerance census (injected panics/stalls, budgets) |
//!
//! Criterion micro-benchmarks live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;

use rid_baseline::BaselineResult;
use rid_core::{AnalysisOptions, AnalysisResult, IppReport};
use rid_corpus::kernel::KernelCorpus;
use rid_corpus::pyc::{PycBugClass, PycProgram};

/// Runs RID on a generated kernel corpus.
///
/// # Panics
///
/// Panics if the generated corpus fails to parse (a corpus-generator bug).
#[must_use]
pub fn run_rid_on_kernel(corpus: &KernelCorpus, options: &AnalysisOptions) -> AnalysisResult {
    rid_core::analyze_sources(
        corpus.sources.iter().map(String::as_str),
        &rid_core::apis::linux_dpm_apis(),
        options,
    )
    .expect("kernel corpus must parse")
}

/// Ground-truth evaluation of a kernel analysis run (the §6.2 headline
/// numbers: reports, confirmed bugs, false positives, missed bugs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HeadlineNumbers {
    /// Total IPP reports.
    pub reports: usize,
    /// Reports landing on functions with seeded, detectable bugs
    /// ("confirmed by developers" in the paper's terms).
    pub confirmed: usize,
    /// Reports on seeded false-positive idioms (§6.4).
    pub false_positives: usize,
    /// Reports on functions with no seeded defect at all (unexpected —
    /// should stay near zero).
    pub unexpected: usize,
    /// Seeded detectable bugs RID found.
    pub detected_bugs: usize,
    /// Seeded detectable bugs RID missed (should stay near zero).
    pub missed_detectable: usize,
    /// Seeded bugs outside RID's power (Figure 10 / loop-only) that were
    /// correctly *not* reported.
    pub correctly_missed: usize,
    /// Reports landing on out-of-power bug functions — zero under paper
    /// defaults, positive when an extension (callback contract, deeper
    /// unrolling) widens RID's power.
    pub extended_catches: usize,
}

/// Scores RID reports against the kernel corpus ground truth.
#[must_use]
pub fn evaluate_kernel(corpus: &KernelCorpus, result: &AnalysisResult) -> HeadlineNumbers {
    let detectable: HashSet<&str> = corpus.detectable_bug_functions().collect();
    let undetectable: HashSet<&str> = corpus.missed_bug_functions().collect();
    let fp_expected: HashSet<&str> =
        corpus.expected_false_positives.iter().map(String::as_str).collect();

    let reported: HashSet<&str> =
        result.reports.iter().map(|r| r.function.as_str()).collect();

    let mut numbers = HeadlineNumbers { reports: result.reports.len(), ..Default::default() };
    for report in &result.reports {
        let f = report.function.as_str();
        if detectable.contains(f) {
            numbers.confirmed += 1;
        } else if undetectable.contains(f) {
            // A real bug beyond baseline RID's power — only reachable via
            // extensions (callback contract, deeper unrolling).
            numbers.extended_catches += 1;
        } else if fp_expected.contains(f) {
            numbers.false_positives += 1;
        } else {
            numbers.unexpected += 1;
        }
    }
    numbers.detected_bugs = detectable.iter().filter(|f| reported.contains(**f)).count();
    numbers.missed_detectable = detectable.len() - numbers.detected_bugs;
    numbers.correctly_missed =
        undetectable.iter().filter(|f| !reported.contains(**f)).count();
    numbers
}

/// Per-program Table 2 row: bugs found by both tools, by RID only, and by
/// the Cpychecker-style baseline only.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table2Row {
    /// Program name.
    pub program: String,
    /// Bugs found by both tools.
    pub common: usize,
    /// Bugs found only by RID.
    pub rid_only: usize,
    /// Bugs found only by the baseline.
    pub baseline_only: usize,
    /// Baseline false alarms on intentional wrappers (§2.1; not counted
    /// as bugs in the table).
    pub baseline_wrapper_alarms: usize,
    /// Expected values from the corpus ground truth, for comparison.
    pub expected: (usize, usize, usize),
}

/// Runs RID and the baseline on one generated Python/C program and scores
/// both against ground truth.
///
/// # Panics
///
/// Panics if the generated program fails to parse.
#[must_use]
pub fn compare_on_program(program: &PycProgram, options: &AnalysisOptions) -> Table2Row {
    let apis = rid_core::apis::python_c_apis();
    let sources = program.sources.iter().map(String::as_str);
    let rid = rid_core::analyze_sources(sources.clone(), &apis, options)
        .expect("generated program must parse");
    let baseline: BaselineResult =
        rid_baseline::check_sources(sources, &apis).expect("generated program must parse");

    let rid_found: HashSet<&str> = rid.reports.iter().map(|r| r.function.as_str()).collect();
    let baseline_found: HashSet<&str> =
        baseline.reports.iter().map(|r| r.function.as_str()).collect();
    let wrappers: HashSet<&str> = program.wrappers.iter().map(String::as_str).collect();

    let mut row = Table2Row { program: program.name.clone(), ..Default::default() };
    for bug in &program.bugs {
        let f = bug.function.as_str();
        match (rid_found.contains(f), baseline_found.contains(f)) {
            (true, true) => row.common += 1,
            (true, false) => row.rid_only += 1,
            (false, true) => row.baseline_only += 1,
            (false, false) => {}
        }
    }
    row.baseline_wrapper_alarms =
        baseline_found.iter().filter(|f| wrappers.contains(**f)).count();
    let expect = |class: PycBugClass| program.bugs.iter().filter(|b| b.class == class).count();
    row.expected = (
        expect(PycBugClass::Common),
        expect(PycBugClass::RidOnly),
        expect(PycBugClass::BaselineOnly),
    );
    row
}

/// Formats a simple aligned table.
#[must_use]
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_owned()
    };
    out.push_str(&fmt_row(headers.iter().map(|s| (*s).to_owned()).collect(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Counts reports per seeded-bug kind for diagnostics.
#[must_use]
pub fn reports_on(reports: &[IppReport], functions: &HashSet<&str>) -> usize {
    reports.iter().filter(|r| functions.contains(r.function.as_str())).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rid_corpus::kernel::{generate_kernel, KernelConfig};
    use rid_corpus::pyc::{generate_pyc, PycConfig};

    #[test]
    fn tiny_kernel_end_to_end() {
        let corpus = generate_kernel(&KernelConfig::tiny(42));
        let result = run_rid_on_kernel(&corpus, &AnalysisOptions::default());
        let numbers = evaluate_kernel(&corpus, &result);
        // Every detectable bug found; no detectable bug missed.
        assert_eq!(numbers.missed_detectable, 0, "{numbers:?}");
        // Undetectable classes correctly missed.
        assert_eq!(
            numbers.correctly_missed,
            corpus.missed_bug_functions().count(),
            "{numbers:?}"
        );
        // No reports on entirely clean functions.
        assert_eq!(numbers.unexpected, 0, "{numbers:?}");
    }

    #[test]
    fn tiny_pyc_comparison_matches_ground_truth() {
        let corpus = generate_pyc(&PycConfig::tiny(42));
        let row = compare_on_program(&corpus.programs[0], &AnalysisOptions::default());
        assert_eq!(
            (row.common, row.rid_only, row.baseline_only),
            row.expected,
            "{row:?}"
        );
        // Wrapper false alarms occur on the baseline only.
        assert_eq!(row.baseline_wrapper_alarms, 2);
    }

    #[test]
    fn table_formatting() {
        let text = format_table(
            &["name", "count"],
            &[vec!["a".into(), "1".into()], vec!["bb".into(), "22".into()]],
        );
        assert!(text.contains("name"));
        assert!(text.lines().count() == 4);
    }
}
