//! Minimal command-line flag parsing shared by the bench binaries.

/// Returns the value following `--name` on the command line, parsed.
#[must_use]
pub fn flag<T: std::str::FromStr>(name: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    let key = format!("--{name}");
    args.iter()
        .position(|a| a == &key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Whether the boolean flag `--name` is present.
#[must_use]
#[allow(dead_code)] // not every binary uses boolean flags
pub fn has_flag(name: &str) -> bool {
    let key = format!("--{name}");
    std::env::args().any(|a| a == key)
}
