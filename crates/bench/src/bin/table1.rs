//! Regenerates **Table 1** of the paper: the function-classification
//! census ("Function in different categories and paths analyzed in
//! functions", §6.5).
//!
//! The paper classifies 270k Linux functions into 2133 refcount-changing /
//! 1889 affecting-analyzed / 2803 affecting-not-analyzed / 261391 other.
//! We regenerate the census over the synthetic kernel; pass
//! `--paper-shape` to inflate the filler mass so the category-3 :
//! category-1 ratio matches the paper's (~122:1), or `--scale F` to grow
//! or shrink everything.
//!
//! ```text
//! cargo run -p rid-bench --release --bin table1 [-- --paper-shape] [--seed N]
//! ```

use rid_bench::format_table;
use rid_core::CallGraph;
use rid_corpus::kernel::{generate_kernel, KernelConfig};

#[path = "../args.rs"]
mod args;

fn main() {
    let seed: u64 = args::flag("seed").unwrap_or(2016);
    let mut config = KernelConfig::evaluation(seed);
    if args::has_flag("paper-shape") {
        // Enough category-3 mass for the paper's ~122:1 other-to-cat1 ratio.
        config.filler_modules = 2200;
    }
    if let Some(scale) = args::flag::<f64>("scale") {
        config = config.scaled(scale);
    }

    eprintln!("generating kernel corpus (seed {seed})...");
    let corpus = generate_kernel(&config);
    eprintln!("parsing {} modules...", corpus.sources.len());
    let program = rid_frontend::parse_program(corpus.sources.iter().map(String::as_str))
        .expect("corpus must parse");
    eprintln!("classifying {} functions...", program.function_count());
    let graph = CallGraph::build(&program);
    let classification =
        rid_core::classify::classify(&program, &graph, &rid_core::apis::linux_dpm_apis());
    let counts = classification.counts();

    println!("Table 1: functions in different categories (paper §6.5)");
    println!();
    let rows = vec![
        vec![
            "Functions with refcount changes".to_owned(),
            counts.refcount_changing.to_string(),
            "2133".to_owned(),
        ],
        vec![
            "Functions affecting those / analyzed".to_owned(),
            counts.affecting_analyzed.to_string(),
            "1889".to_owned(),
        ],
        vec![
            "Functions affecting those / not analyzed".to_owned(),
            counts.affecting_skipped.to_string(),
            "2803".to_owned(),
        ],
        vec!["The others".to_owned(), counts.other.to_string(), "261391".to_owned()],
        vec!["Total".to_owned(), counts.total().to_string(), "268216".to_owned()],
    ];
    println!("{}", format_table(&["Category", "measured", "paper"], &rows));

    let analyzed = counts.refcount_changing + counts.affecting_analyzed;
    println!(
        "analyzed fraction: {:.2}% of all functions (paper: {:.2}%)",
        100.0 * analyzed as f64 / counts.total() as f64,
        100.0 * (2133.0 + 1889.0) / 268216.0
    );
    println!(
        "other : refcount-changing ratio: {:.0}:1 (paper: {:.0}:1)",
        counts.other as f64 / counts.refcount_changing.max(1) as f64,
        261391.0 / 2133.0
    );

    // Table 1's caption also covers "paths analyzed in functions".
    let result = rid_core::analyze_program(
        &program,
        &rid_core::apis::linux_dpm_apis(),
        &rid_core::AnalysisOptions::default(),
    );
    println!(
        "paths analyzed: {} across {} analyzed functions ({:.1} paths/function)",
        result.stats.paths_enumerated,
        result.stats.functions_analyzed,
        result.stats.paths_enumerated as f64 / result.stats.functions_analyzed.max(1) as f64
    );
}
