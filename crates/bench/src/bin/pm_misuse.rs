//! Regenerates the **§6.3 census**: the fraction of `pm_runtime_get*`
//! call sites with error handling that miss the balancing decrement, and
//! how many of those RID detects.
//!
//! Paper: 96 call sites with error handling, 67 (~70%) missing the
//! decrement, 40 of them detected by RID.
//!
//! ```text
//! cargo run -p rid-bench --release --bin pm_misuse [-- --seed N]
//! ```

use std::collections::HashSet;

use rid_bench::{format_table, run_rid_on_kernel};
use rid_core::AnalysisOptions;
use rid_corpus::kernel::{generate_kernel, KernelConfig};

#[path = "../args.rs"]
mod args;

fn main() {
    let seed: u64 = args::flag("seed").unwrap_or(2016);
    let config = KernelConfig::evaluation(seed);
    eprintln!("generating kernel corpus (seed {seed})...");
    let corpus = generate_kernel(&config);

    eprintln!("running RID...");
    let result = run_rid_on_kernel(&corpus, &AnalysisOptions::default());
    let reported: HashSet<&str> =
        result.reports.iter().map(|r| r.function.as_str()).collect();

    let total = corpus.census.len();
    let missing: Vec<_> = corpus.census.iter().filter(|s| s.missing_decrement).collect();
    let detected = missing.iter().filter(|s| reported.contains(s.function.as_str())).count();

    println!("§6.3: pm_runtime_get* call sites with error handling");
    println!();
    let rows = vec![
        vec!["call sites with error handling".to_owned(), total.to_string(), "96".to_owned()],
        vec![
            "missing the decrement on error".to_owned(),
            missing.len().to_string(),
            "67".to_owned(),
        ],
        vec![
            "missing-decrement fraction".to_owned(),
            format!("{:.0}%", 100.0 * missing.len() as f64 / total.max(1) as f64),
            "~70%".to_owned(),
        ],
        vec!["detected by RID".to_owned(), detected.to_string(), "40".to_owned()],
        vec![
            "detected fraction of buggy sites".to_owned(),
            format!("{:.0}%", 100.0 * detected as f64 / missing.len().max(1) as f64),
            format!("{:.0}%", 100.0 * 40.0 / 67.0),
        ],
    ];
    println!("{}", format_table(&["metric", "measured", "paper"], &rows));

    let undetectable = missing.iter().filter(|s| !s.rid_detectable).count();
    println!(
        "undetected buggy sites are in contexts outside RID's power ({} sites:",
        undetectable
    );
    println!("IRQ-handler-style functions whose imbalance is only visible at");
    println!("function-pointer callers, §6.4), matching the paper's explanation.");
}
