//! Exercises the **fault-tolerance machinery**: runs the analyzer over a
//! generated kernel corpus with a deterministic [`FaultPlan`] (injected
//! panics, solver stalls, slow functions) plus optional budgets, and
//! prints a per-reason degradation table alongside the detection quality
//! of the surviving run.
//!
//! ```text
//! cargo run -p rid-bench --release --bin faults [-- --seed N]
//!     [--panic-rate R] [--stall-rate R] [--slow-rate R] [--slow-ms MS]
//!     [--panic-twice] [--deadline-ms MS] [--fuel N] [--threads N]
//!     [--adversarial N] [--scale S]
//! ```
//!
//! The point to check: the run *completes* (no fault escapes the driver),
//! every injected fault shows up as a `retried`/`panic`/`solver-fuel`/
//! `deadline` record, and detection on un-faulted functions matches the
//! clean run.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use rid_bench::{evaluate_kernel, format_table};
use rid_core::{AnalysisOptions, Budget, DegradeReason, FaultPlan};
use rid_corpus::kernel::{generate_kernel, KernelConfig};

#[path = "../args.rs"]
mod args;

fn main() {
    let seed: u64 = args::flag("seed").unwrap_or(2016);
    let threads: usize = args::flag("threads").unwrap_or(4);
    let scale: f64 = args::flag("scale").unwrap_or(1.0);
    let adversarial: usize = args::flag("adversarial").unwrap_or(0);

    let plan = FaultPlan {
        seed,
        panic_rate: args::flag("panic-rate").unwrap_or(0.05),
        slow_rate: args::flag("slow-rate").unwrap_or(0.0),
        slow_ms: args::flag("slow-ms").unwrap_or(50),
        stall_rate: args::flag("stall-rate").unwrap_or(0.0),
        panic_twice: args::has_flag("panic-twice"),
        ..FaultPlan::none()
    };
    let budget = Budget {
        func_deadline: args::flag("deadline-ms").map(Duration::from_millis),
        solver_fuel: args::flag("fuel"),
        global_deadline: args::flag("global-deadline-ms").map(Duration::from_millis),
    };

    let config = KernelConfig {
        adversarial_modules: adversarial,
        ..KernelConfig::tiny(seed).scaled(scale)
    };
    eprintln!("generating corpus (seed {seed}, scale {scale})...");
    let corpus = generate_kernel(&config);
    let program = rid_frontend::parse_program(corpus.sources.iter().map(String::as_str))
        .expect("corpus must parse");
    let apis = rid_core::apis::linux_dpm_apis();
    let options = AnalysisOptions { threads, budget, ..AnalysisOptions::default() };

    eprintln!("clean run...");
    let clean_start = Instant::now();
    let clean = rid_core::analyze_program(&program, &apis, &AnalysisOptions {
        budget: Budget::unlimited(),
        ..options
    });
    let clean_time = clean_start.elapsed();

    eprintln!("faulted run...");
    // Injected panics are caught by the driver; keep their backtraces off
    // the terminal so the census below stays readable.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let faulted_start = Instant::now();
    let faulted = rid_core::analyze_program_with_faults(&program, &apis, &options, &plan);
    let faulted_time = faulted_start.elapsed();
    std::panic::set_hook(default_hook);

    let mut by_reason: BTreeMap<DegradeReason, (usize, u64)> = BTreeMap::new();
    for d in faulted.degraded.values() {
        let slot = by_reason.entry(d.reason).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += d.cost.wall_ms;
    }
    let rows: Vec<Vec<String>> = by_reason
        .iter()
        .map(|(reason, (count, wall_ms))| {
            vec![reason.label().to_owned(), count.to_string(), format!("{wall_ms} ms")]
        })
        .collect();

    println!("fault tolerance: degradation census (seed {seed})");
    println!();
    if rows.is_empty() {
        println!("no functions degraded — raise --panic-rate or tighten budgets");
    } else {
        println!("{}", format_table(&["reason", "functions", "wall-clock"], &rows));
    }

    let faulted_fns: Vec<&str> =
        plan.faulted(faulted.summaries.iter().map(|s| s.func.as_str())).collect();
    let clean_quality = evaluate_kernel(&corpus, &clean);
    let fault_quality = evaluate_kernel(&corpus, &faulted);
    println!(
        "fault plan touched {} of {} summarized functions",
        faulted_fns.len(),
        faulted.summaries.len()
    );
    println!(
        "clean run:   {} reports, {} confirmed, {} missed  ({:.2}s)",
        clean_quality.reports,
        clean_quality.confirmed,
        clean_quality.missed_detectable,
        clean_time.as_secs_f64()
    );
    println!(
        "faulted run: {} reports, {} confirmed, {} missed  ({:.2}s)",
        fault_quality.reports,
        fault_quality.confirmed,
        fault_quality.missed_detectable,
        faulted_time.as_secs_f64()
    );
    println!();
    println!("the shape to check: the faulted run completes, every injected fault");
    println!("surfaces as a degradation record, and detection quality matches the");
    println!("clean run except on functions the plan itself degraded.");
}
