//! Ablation study over the design knobs `DESIGN.md` calls out: path and
//! subcase limits (§5.2/§6.1), selective analysis on/off, the solver's
//! disequality split budget, and worker threads.
//!
//! Each row reports confirmed bugs, total reports and analysis time on
//! the same seeded corpus, so the cost/precision effect of each knob is
//! directly visible.
//!
//! ```text
//! cargo run -p rid-bench --release --bin ablation [-- --seed N]
//! ```

use rid_bench::{evaluate_kernel, format_table, run_rid_on_kernel};
use rid_core::{AnalysisOptions, PathLimits};
use rid_corpus::kernel::{generate_kernel, KernelConfig};
use rid_solver::SatOptions;

#[path = "../args.rs"]
mod args;

fn main() {
    let seed: u64 = args::flag("seed").unwrap_or(2016);
    // Half-scale corpus keeps the ablation sweep quick.
    let config = KernelConfig::evaluation(seed).scaled(0.5);
    eprintln!("generating kernel corpus (seed {seed}, half scale)...");
    let corpus = generate_kernel(&config);

    let baseline = AnalysisOptions::default();
    let variants: Vec<(&str, AnalysisOptions)> = vec![
        ("paper defaults (100 paths, 10 subcases)", baseline),
        (
            "max_paths = 4",
            AnalysisOptions {
                limits: PathLimits { max_paths: 4, ..PathLimits::default() },
                ..baseline
            },
        ),
        (
            "max_subcases = 2",
            AnalysisOptions {
                limits: PathLimits { max_subcases: 2, ..PathLimits::default() },
                ..baseline
            },
        ),
        (
            "loops unrolled twice (visits = 3)",
            AnalysisOptions {
                limits: PathLimits { max_block_visits: 3, ..PathLimits::default() },
                ..baseline
            },
        ),
        ("selective analysis OFF", AnalysisOptions { selective: false, ..baseline }),
        (
            "diseq split budget = 0",
            AnalysisOptions { sat: SatOptions { max_splits: 0 }, ..baseline },
        ),
        ("4 worker threads", AnalysisOptions { threads: 4, ..baseline }),
        (
            "callback-contract extension ON (§7 future work)",
            AnalysisOptions { check_callbacks: true, ..baseline },
        ),
    ];

    let mut rows = Vec::new();
    for (label, options) in variants {
        eprintln!("running: {label}");
        let result = run_rid_on_kernel(&corpus, &options);
        let numbers = evaluate_kernel(&corpus, &result);
        rows.push(vec![
            label.to_owned(),
            numbers.confirmed.to_string(),
            numbers.extended_catches.to_string(),
            numbers.reports.to_string(),
            numbers.missed_detectable.to_string(),
            result.stats.functions_analyzed.to_string(),
            format!("{:.2}s", result.stats.analyze_time.as_secs_f64()),
        ]);
    }

    println!("ablation on the seeded kernel corpus (half scale)");
    println!();
    println!(
        "{}",
        format_table(
            &["variant", "confirmed", "extended", "reports", "missed", "analyzed fns", "analyze time"],
            &rows
        )
    );
    println!("expected effects: tighter path/subcase limits lose bugs; deeper");
    println!("unrolling and the callback extension surface out-of-power bug");
    println!("classes (the `extended` column); selective-off analyzes far more");
    println!("functions for the same yield; a zero split budget adds false");
    println!("reports but loses none (§5.4 bias).");
}
