//! Regenerates the **§6.5 performance** claim and persists a
//! machine-readable baseline (schema `rid-bench-perf/v9`).
//!
//! For each corpus scale the binary parses the seeded kernel corpus once,
//! then runs the whole-program analysis `--iters` times per execution
//! mode (tree, per-path, and the adaptive default `auto`), keeping the
//! *minimum* wall-clock per phase (minimum-of-N is the standard noise
//! filter for sub-second runs). At the largest scale it additionally
//! measures a **thread-scaling sweep** (1/2/4/8 workers through the
//! work-stealing scheduler) and a **cold-vs-warm cache pair**: one run
//! populating a fresh [`rid_core::SummaryCache`], then re-runs of the
//! unchanged corpus answering from it. The human-readable table goes to
//! stdout; the machine-readable baseline is written to `BENCH_perf.json`
//! (override with `--out`), which CI validates and archives.
//!
//! ```text
//! cargo run -p rid-bench --release --bin perf -- \
//!     [--seed N] [--threads N] [--scale F] [--iters N] [--out PATH]
//! ```
//!
//! `--scale` restricts the run to a single scale (CI smoke uses 0.25);
//! the default sweep is 0.25 / 0.5 / 1.0. `--threads` sets the worker
//! count for the per-mode records and the cache pair (the thread sweep
//! ignores it).
//!
//! Since v6 the baseline additionally records a [`MemoryRecord`] (peak
//! RSS plus the interned-IR footprint against its pre-interning
//! string-layout model), a [`StoreRecord`] (RIDSS1 summary-container
//! open/materialize wall-clock against the legacy eager serde parse),
//! and — when built with `--features alloc-track` — per-phase
//! allocation counts from a counting global allocator.
//!
//! Since v7 every sweep cell is **honest about the host**: a record
//! whose worker count exceeds `host_cpus` carries
//! `scaling_asserted: false`, telling the validator (and the reader)
//! that no speedup claim is being made for it. The thread sweep also
//! reports the scheduler's steal/idle telemetry (successful steals,
//! scan misses, mean batch size, total parked nanoseconds), and a new
//! **process sweep** measures `--processes`-style sharded runs through
//! [`rid_core::analyze_processes`], recording per-cell wall-clock and
//! whether the sharded reports matched the sequential reference
//! (`identical_reports` — the determinism claim, re-checked at bench
//! time).
//!
//! Since v9 the baseline carries a [`RefuteRecord`]: the wall-clock
//! cost of the second-stage refutation pass at the largest scale
//! (stage-one-only vs the default two-stage pipeline) and its precision
//! effect on a corpus seeded with known-spurious idioms
//! (`gen-kernel --spurious`) — how many seeded-spurious reports the
//! pass refutes and how many true positives it loses (the committed
//! baseline is all-of-them and zero; CI enforces both against this
//! record).

use std::time::Instant;

use rid_bench::format_table;
use rid_core::{AnalysisOptions, AnalysisResult, ExecMode, FaultPlan, SummaryCache};
use rid_corpus::kernel::{generate_kernel, KernelConfig};
use serde::Serialize;

#[path = "../args.rs"]
mod args;

/// The allocation-tracking harness: a counting shim in front of the
/// system allocator, compiled in only with `--features alloc-track`
/// (`rid-bench`'s library forbids `unsafe`; the shim lives in this
/// binary). Counters are relaxed atomics, so the shim is safe in any
/// allocation context and cheap enough that CI runs the whole benchmark
/// under it.
#[cfg(feature = "alloc-track")]
mod alloc_track {
    #![deny(unsafe_op_in_unsafe_fn)]

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    struct Counting;

    // SAFETY: every operation delegates to `System` unchanged; the
    // bookkeeping on the side is lock-free and never allocates.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size.saturating_sub(layout.size()) as u64, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    #[global_allocator]
    static COUNTING: Counting = Counting;

    /// Cumulative (allocations, requested bytes) since process start.
    pub fn snapshot() -> (u64, u64) {
        (ALLOCS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
    }
}

/// Cumulative (allocations, requested bytes); the zero pair when the
/// harness is compiled out.
fn alloc_snapshot() -> (u64, u64) {
    #[cfg(feature = "alloc-track")]
    {
        alloc_track::snapshot()
    }
    #[cfg(not(feature = "alloc-track"))]
    {
        (0, 0)
    }
}

/// Runs `f`, appending the allocation delta it caused as a named phase.
/// Deltas are all-zero without `--features alloc-track` (the record's
/// `enabled` flag says which reading this is).
fn track_phase<T>(
    phases: &mut Vec<PhaseAlloc>,
    name: impl Into<String>,
    f: impl FnOnce() -> T,
) -> T {
    let before = alloc_snapshot();
    let out = f();
    let after = alloc_snapshot();
    phases.push(PhaseAlloc {
        phase: name.into(),
        allocs: after.0.saturating_sub(before.0),
        bytes: after.1.saturating_sub(before.1),
    });
    out
}

/// One measured analysis configuration (a scale × mode cell).
#[derive(Serialize)]
struct ModeRecord {
    /// Wall-clock of the classification phase (seconds, min over iters).
    classify_s: f64,
    /// Wall-clock of summarization + IPP checking (seconds, min over
    /// iters) — the phase the scheduler and the execution tree accelerate.
    analyze_s: f64,
    /// Functions symbolically analyzed.
    functions_analyzed: usize,
    /// Structural paths enumerated.
    paths_enumerated: usize,
    /// Symbolic states executed (initial states + call forks + tree
    /// branch forks).
    states_explored: usize,
    /// Satisfiability queries issued.
    sat_queries: usize,
    /// Of those, answered by the conjunction-keyed memo cache.
    sat_memo_hits: usize,
    /// Basic blocks symbolically executed.
    blocks_executed: usize,
    /// Block executions saved by shared-prefix execution (0 in per-path
    /// mode by construction).
    blocks_saved: usize,
    /// Functions executed in tree mode (after `Auto` resolution).
    exec_tree: usize,
    /// Functions executed in per-path mode (after `Auto` resolution).
    exec_per_path: usize,
    /// Bug reports found (must agree across modes).
    reports: usize,
}

#[derive(Serialize)]
struct ScaleRecord {
    scale: f64,
    functions: usize,
    /// Corpus parse wall-clock (seconds; shared by all modes).
    parse_s: f64,
    tree: ModeRecord,
    per_path: ModeRecord,
    auto: ModeRecord,
    /// `per_path.analyze_s / tree.analyze_s`.
    analyze_speedup: f64,
    /// `min(tree, per_path).analyze_s / auto.analyze_s` — the adaptive
    /// mode's efficiency against the per-scale best fixed mode. 1.0
    /// means Auto matched the best mode exactly; above 1.0 its per-
    /// function mix beat both fixed modes. CI asserts >= 0.97.
    auto_vs_best: f64,
}

/// One cell of the thread-scaling sweep (largest scale, `Auto` mode).
#[derive(Serialize)]
struct ThreadRecord {
    threads: usize,
    /// Analyze wall-clock (seconds, min over iters).
    analyze_s: f64,
    /// `analyze_s(1 thread) / analyze_s(this)` — work-stealing scaling.
    speedup_vs_1: f64,
    /// Whether this cell is a scaling claim at all: `true` iff the host
    /// offers at least `threads` CPUs. On a 1-core runner every
    /// multi-worker cell is `false` — the numbers are recorded for
    /// continuity but assert nothing.
    scaling_asserted: bool,
    /// Successful steals across all workers (best iteration).
    steals: u64,
    /// Victim scans that found every deque empty (worker then parked).
    scan_misses: u64,
    /// Mean items drained per successful steal (0 when none happened).
    steal_batch_mean: f64,
    /// Total nanoseconds workers spent parked waiting for work.
    idle_wait_ns: u64,
}

/// One cell of the multi-process sharding sweep (largest scale, `Auto`
/// mode, 1 in-process worker per shard so the cell isolates the
/// process-level scaling).
#[derive(Serialize)]
struct ProcessRecord {
    processes: usize,
    /// Coordinator analyze wall-clock — wavefront scheduling, worker
    /// processes, store merges (seconds, min over iters).
    analyze_s: f64,
    /// `analyze_s(1 process) / analyze_s(this)`.
    speedup_vs_1: f64,
    /// `true` iff the host offers at least `processes` CPUs (see
    /// [`ThreadRecord::scaling_asserted`]).
    scaling_asserted: bool,
    /// Whether this cell reproduced the sequential reference reports
    /// exactly — the byte-identity claim, re-verified at bench time.
    identical_reports: bool,
}

/// Counter triple of one cached run.
#[derive(Serialize)]
struct CacheCounters {
    hits: usize,
    misses: usize,
    invalidated: usize,
}

/// Cold-vs-warm persistent-cache measurement (largest scale, `Auto`).
#[derive(Serialize)]
struct CacheRecord {
    /// Worker threads used for the cold/warm pair. Pinned to 1 so the
    /// record isolates the cache effect: the thread sweep above already
    /// characterizes scheduler scaling, and on a single-core runner
    /// extra workers only add noise to both sides of the ratio.
    threads: usize,
    /// Analyze wall-clock populating a fresh cache (seconds, min over
    /// iters; each iteration starts from an empty cache).
    cold_s: f64,
    /// Analyze wall-clock of the unchanged corpus answering from the
    /// populated cache (seconds, min over iters).
    warm_s: f64,
    /// `cold_s / warm_s` (target: ≥ 5).
    warm_speedup: f64,
    cold: CacheCounters,
    warm: CacheCounters,
}

/// The branchy workload: adversarial modules whose functions chain
/// diamonds (2^depth structural paths, truncated by the path cap). This
/// is the CFG shape the execution tree targets — long shared prefixes
/// across many enumerated paths — and the shape real kernel drivers
/// have (chains of `if (err) goto out;`). The evaluation corpus cannot
/// show it: classification skips functions with more than three
/// branches, so surviving functions have at most a handful of paths.
#[derive(Serialize)]
struct AdversarialRecord {
    modules: usize,
    depth: usize,
    functions: usize,
    parse_s: f64,
    tree: ModeRecord,
    per_path: ModeRecord,
    auto: ModeRecord,
    /// `per_path.analyze_s / tree.analyze_s`.
    analyze_speedup: f64,
    /// `min(tree, per_path).analyze_s / auto.analyze_s` (>= 0.97 target).
    auto_vs_best: f64,
}

/// Tracing-overhead pair (largest scale, `Auto` mode, 1 thread).
///
/// `disabled_s` is the production configuration: the rid-obs probes are
/// compiled in but gated behind one relaxed atomic load, so it must
/// track the plain `analyze_s` records (CI compares it against the
/// committed baseline with a <2% tolerance). `enabled_s` quantifies the
/// cost of a full `--trace` run for the docs.
#[derive(Serialize)]
struct OverheadRecord {
    /// Analyze wall-clock with tracing compiled in but disabled
    /// (seconds, min over iters).
    disabled_s: f64,
    /// Analyze wall-clock with tracing enabled, ring drained per run
    /// (seconds, min over iters).
    enabled_s: f64,
    /// `enabled_s / disabled_s`.
    enabled_over_disabled: f64,
    /// Events captured by the slowest-path sanity run (must be > 0, or
    /// the "enabled" measurement silently measured nothing).
    events: usize,
}

/// Two-stage refutation measurement (schema v9). The overhead pair is
/// measured at the largest scale with a single worker (per-report solver
/// cost, not scheduling, is the quantity of interest); the precision
/// half runs on a dedicated small corpus seeded with known-spurious
/// idioms, because the evaluation corpus deliberately contains none.
#[derive(Serialize)]
struct RefuteRecord {
    /// Analyze wall-clock with `--no-refute` — stage one only (seconds,
    /// min over iters).
    stage1_s: f64,
    /// Analyze wall-clock of the default two-stage pipeline (seconds,
    /// min over iters).
    two_stage_s: f64,
    /// `two_stage_s / stage1_s` — the refutation overhead multiplier on
    /// a corpus where (almost) every report is a true positive, i.e. the
    /// worst case: refutation re-solves every report and drops none.
    overhead_ratio: f64,
    /// Reports surviving the two-stage pipeline at the largest scale.
    reports_confirmed: usize,
    /// Seeded-spurious functions in the precision corpus.
    seeded_spurious: usize,
    /// Of those, drawing a stage-one report (the corpus generator
    /// guarantees all of them do — the idiom is built to exhaust the
    /// stage-one split budget).
    stage1_spurious_reports: usize,
    /// Seeded-spurious reports removed by the refutation pass.
    refuted_spurious: usize,
    /// `refuted_spurious / stage1_spurious_reports` — the committed
    /// baseline share CI holds future runs to (≥, never <).
    refutation_share: f64,
    /// Ground-truth bug functions reported by stage one but missing
    /// after refutation. Soundness bar: must be 0 — a fresh-variable
    /// conjunction can never refute a genuinely satisfiable pair.
    true_positives_lost: usize,
}

/// Allocation delta of one benchmark phase (see [`track_phase`]).
#[derive(Serialize)]
struct PhaseAlloc {
    phase: String,
    /// Heap allocations performed during the phase (alloc + alloc_zeroed
    /// + realloc calls).
    allocs: u64,
    /// Bytes requested from the allocator during the phase (realloc
    /// counts growth only).
    bytes: u64,
}

/// Per-phase output of the counting-allocator harness.
#[derive(Serialize)]
struct AllocRecord {
    /// Whether the binary was built with `--features alloc-track`. When
    /// `false` every phase delta is zero (the phases still document
    /// what would be measured).
    enabled: bool,
    phases: Vec<PhaseAlloc>,
}

/// Resident-memory measurement at the largest scale: the process peak
/// plus the interned-IR footprint against the modeled pre-interning
/// layout (see [`rid_ir::mem`]). CI asserts `ir_reduction_ratio >= 1.3`
/// — the ≥30% bytes-per-function reduction claim.
#[derive(Serialize)]
struct MemoryRecord {
    /// Peak resident set of this process (`VmHWM`, bytes; 0 where
    /// `/proc/self/status` is unavailable). Covers the whole benchmark
    /// including the corpus text, so it bounds — not isolates — the IR.
    peak_rss_bytes: u64,
    /// Measured heap bytes of the interned struct-of-arrays IR
    /// (largest scale), intern table included.
    ir_resident_bytes: usize,
    /// Of `ir_resident_bytes`: the process-global intern table.
    ir_interner_bytes: usize,
    /// The same IR priced under the pre-interning `String` layout.
    ir_string_layout_bytes: usize,
    /// `ir_resident_bytes / functions`.
    ir_bytes_per_function: f64,
    /// `ir_string_layout_bytes / ir_resident_bytes` (>= 1.3 target).
    ir_reduction_ratio: f64,
    /// Name occurrences in the walked IR (each one an owned `String`
    /// in the old layout).
    sym_occurrences: usize,
    /// Total text bytes across those occurrences, duplicates included.
    sym_text_bytes: usize,
}

/// Warm-restart cost of the RIDSS1 summary container against the
/// legacy eager serde parse of the same cache (largest scale, min over
/// iters). `store_open_s` is what a daemon restore or `--cache` warm
/// start now pays up front — header + index verification only; entry
/// payloads are read (and checksummed) on first use.
#[derive(Serialize)]
struct StoreRecord {
    /// Summaries in the measured cache.
    entries: usize,
    /// Container size on disk (bytes).
    file_bytes: u64,
    /// Open + index verify, no payload reads (seconds, min over iters).
    store_open_s: f64,
    /// Open + read and verify every entry (seconds, min over iters) —
    /// the worst case where the whole corpus misses.
    store_full_s: f64,
    /// Eager parse of the legacy single-document JSON encoding of the
    /// same cache (seconds, min over iters) — what every v5 warm load
    /// paid regardless of how many entries the run would touch.
    serde_load_s: f64,
    /// `serde_load_s / store_open_s` (CI asserts > 1).
    open_speedup: f64,
}

#[derive(Serialize)]
struct PerfBaseline {
    schema: String,
    seed: u64,
    threads: usize,
    iters: usize,
    /// CPUs the host actually offers — the ceiling on any observable
    /// thread-sweep speedup (a 1-core runner can only show ~1.0x).
    host_cpus: usize,
    scales: Vec<ScaleRecord>,
    /// Work-stealing scheduler scaling at the largest measured scale.
    thread_sweep: Vec<ThreadRecord>,
    /// Multi-process sharded-analysis scaling at the largest scale.
    process_sweep: Vec<ProcessRecord>,
    /// Persistent-cache cold/warm pair at the largest measured scale.
    cache: CacheRecord,
    /// Disabled-vs-enabled tracing cost at the largest measured scale.
    overhead: OverheadRecord,
    /// Second-stage refutation cost + precision (seeded-spurious corpus).
    refute: RefuteRecord,
    adversarial: AdversarialRecord,
    /// Peak RSS and interned-IR footprint at the largest scale.
    memory: MemoryRecord,
    /// Summary-container warm-load pair at the largest scale.
    summary_store: StoreRecord,
    /// Counting-allocator phase deltas (zeros unless built with
    /// `--features alloc-track`).
    alloc: AllocRecord,
    /// Daemon cold/warm/patch latency record. This binary leaves it
    /// `null`; `serve_bench` measures it and patches it into the same
    /// baseline file (so the two binaries can be re-run independently
    /// without clobbering each other's sections).
    serve: serde_json::Value,
}

/// One timed run; returns (classify_s, analyze_s, result).
fn run_once(
    program: &rid_ir::Program,
    mode: ExecMode,
    threads: usize,
) -> (f64, f64, AnalysisResult) {
    let options = AnalysisOptions { threads, exec_mode: mode, ..Default::default() };
    let result =
        rid_core::analyze_program(program, &rid_core::apis::linux_dpm_apis(), &options);
    let classify = result.stats.classify_time.as_secs_f64();
    let analyze = result.stats.analyze_time.as_secs_f64();
    (classify, analyze, result)
}

fn to_record(best: Option<(f64, f64, AnalysisResult)>) -> ModeRecord {
    let (classify_s, analyze_s, result) = best.expect("at least one iteration");
    ModeRecord {
        classify_s,
        analyze_s,
        functions_analyzed: result.stats.functions_analyzed,
        paths_enumerated: result.stats.paths_enumerated,
        states_explored: result.stats.states_explored,
        sat_queries: result.stats.sat_queries,
        sat_memo_hits: result.stats.sat_memo_hits,
        blocks_executed: result.stats.blocks_executed,
        blocks_saved: result.stats.blocks_saved,
        exec_tree: result.stats.exec_tree,
        exec_per_path: result.stats.exec_per_path,
        reports: result.reports.len(),
    }
}

/// Measures all three modes with iterations **interleaved round-robin**
/// (tree, per-path, auto, tree, …) rather than mode-by-mode: slow
/// environmental drift (a noisy neighbor, thermal throttling) then hits
/// every mode's sample set equally instead of skewing whichever mode
/// happened to own the bad window, which is what the cross-mode ratios
/// (`analyze_speedup`, `auto_vs_best`) are sensitive to.
fn measure_modes(
    program: &rid_ir::Program,
    threads: usize,
    iters: usize,
) -> (ModeRecord, ModeRecord, ModeRecord) {
    let mut best: [Option<(f64, f64, AnalysisResult)>; 3] = [None, None, None];
    for _ in 0..iters.max(1) {
        for (slot, mode) in
            [ExecMode::Tree, ExecMode::PerPath, ExecMode::Auto].into_iter().enumerate()
        {
            let (classify, analyze, result) = run_once(program, mode, threads);
            let better = match &best[slot] {
                Some((_, prev_analyze, _)) => analyze < *prev_analyze,
                None => true,
            };
            if better {
                best[slot] = Some((classify, analyze, result));
            }
        }
    }
    let [tree, per_path, auto] = best;
    (to_record(tree), to_record(per_path), to_record(auto))
}

/// Minimum analyze wall-clock of `Auto` mode over `iters` runs.
fn measure_analyze_s(program: &rid_ir::Program, threads: usize, iters: usize) -> f64 {
    let options = AnalysisOptions { threads, ..Default::default() };
    (0..iters.max(1))
        .map(|_| {
            rid_core::analyze_program(program, &rid_core::apis::linux_dpm_apis(), &options)
                .stats
                .analyze_time
                .as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// One thread-sweep cell: minimum analyze wall-clock plus the scheduler
/// telemetry of that best iteration (1-thread runs take the sequential
/// fast path and legitimately report no steals).
fn measure_thread_cell(
    program: &rid_ir::Program,
    threads: usize,
    iters: usize,
    host_cpus: usize,
) -> ThreadRecord {
    let options = AnalysisOptions { threads, ..Default::default() };
    let mut best: Option<AnalysisResult> = None;
    for _ in 0..iters.max(1) {
        let result =
            rid_core::analyze_program(program, &rid_core::apis::linux_dpm_apis(), &options);
        if best.as_ref().is_none_or(|b| result.stats.analyze_time < b.stats.analyze_time) {
            best = Some(result);
        }
    }
    let best = best.expect("at least one iteration");
    let profiles = &best.stats.worker_profiles;
    let steals: u64 = profiles.iter().map(|p| p.steals).sum();
    let scan_misses: u64 = profiles.iter().map(|p| p.scan_misses).sum();
    let batch_sum: u64 = profiles.iter().map(|p| p.steal_batch.sum).sum();
    let idle_wait_ns: u64 = profiles.iter().map(|p| p.idle_wait_ns.sum).sum();
    ThreadRecord {
        threads,
        analyze_s: best.stats.analyze_time.as_secs_f64(),
        speedup_vs_1: 0.0, // stamped by the caller once the 1-thread cell exists
        scaling_asserted: threads <= host_cpus,
        steals,
        scan_misses,
        steal_batch_mean: if steals > 0 { batch_sum as f64 / steals as f64 } else { 0.0 },
        idle_wait_ns,
    }
}

/// The multi-process sharding sweep: coordinator wall-clock per process
/// count, plus a determinism re-check of every cell's reports against
/// the in-process sequential reference.
fn measure_processes(
    sources: &[String],
    iters: usize,
    host_cpus: usize,
    reference: &AnalysisResult,
) -> Vec<ProcessRecord> {
    let apis = rid_core::apis::linux_dpm_apis();
    let options = AnalysisOptions::default();
    let faults = FaultPlan::none();
    let mut sweep = Vec::new();
    let mut base = None;
    for processes in [1usize, 2, 4] {
        let mut analyze_s = f64::INFINITY;
        let mut identical_reports = true;
        for _ in 0..iters.max(1) {
            let result =
                rid_core::analyze_processes(sources, &apis, &options, &faults, processes, None)
                    .expect("sharded analysis runs");
            analyze_s = analyze_s.min(result.stats.analyze_time.as_secs_f64());
            identical_reports &= result.reports == reference.reports;
        }
        let base = *base.get_or_insert(analyze_s);
        sweep.push(ProcessRecord {
            processes,
            analyze_s,
            speedup_vs_1: base / analyze_s.max(1e-9),
            scaling_asserted: processes <= host_cpus,
            identical_reports,
        });
    }
    sweep
}

/// Disabled-vs-enabled tracing measurement, interleaved round-robin for
/// the same drift-fairness reason as [`measure_modes`]. Single worker:
/// the overhead of interest is per-event probe cost, not scheduling.
fn measure_overhead(program: &rid_ir::Program, iters: usize) -> OverheadRecord {
    let mut disabled_s = f64::INFINITY;
    let mut enabled_s = f64::INFINITY;
    let mut events = 0usize;
    for _ in 0..iters.max(1) {
        disabled_s = disabled_s.min(measure_analyze_s(program, 1, 1));
        rid_obs::trace::enable(rid_obs::trace::DEFAULT_CAPACITY);
        enabled_s = enabled_s.min(measure_analyze_s(program, 1, 1));
        rid_obs::trace::disable();
        events = events.max(rid_obs::drain().events.len());
    }
    assert!(events > 0, "enabled run captured no events — probes not wired?");
    OverheadRecord {
        disabled_s,
        enabled_s,
        enabled_over_disabled: enabled_s / disabled_s.max(1e-9),
        events,
    }
}

/// Two-stage refutation measurement (see [`RefuteRecord`]): the
/// stage-one vs two-stage wall-clock pair on the largest evaluation
/// corpus, interleaved round-robin like every other paired measurement,
/// then the precision deltas on a seeded-spurious corpus.
fn measure_refute(program: &rid_ir::Program, seed: u64, iters: usize) -> RefuteRecord {
    let apis = rid_core::apis::linux_dpm_apis();
    let stage1_options = AnalysisOptions { threads: 1, refute: false, ..Default::default() };
    let two_stage_options = AnalysisOptions { threads: 1, ..Default::default() };

    let mut stage1_s = f64::INFINITY;
    let mut two_stage_s = f64::INFINITY;
    let mut reports_confirmed = 0usize;
    for _ in 0..iters.max(1) {
        let result = rid_core::analyze_program(program, &apis, &stage1_options);
        stage1_s = stage1_s.min(result.stats.analyze_time.as_secs_f64());
        let result = rid_core::analyze_program(program, &apis, &two_stage_options);
        two_stage_s = two_stage_s.min(result.stats.analyze_time.as_secs_f64());
        reports_confirmed = result.stats.reports_confirmed;
    }

    // The precision corpus: a tiny kernel with seeded-spurious idioms
    // (the evaluation corpus contains none by construction, so the
    // refutation rate there is trivially undefined).
    let mut spur_config = KernelConfig::tiny(seed);
    spur_config.seeded_spurious = 8;
    let corpus = generate_kernel(&spur_config);
    let spur_program = rid_frontend::parse_program(corpus.sources.iter().map(String::as_str))
        .expect("spurious corpus must parse");
    let stage1 = rid_core::analyze_program(&spur_program, &apis, &stage1_options);
    let stage2 = rid_core::analyze_program(&spur_program, &apis, &two_stage_options);

    let spurious: std::collections::BTreeSet<&str> =
        corpus.spurious_functions.iter().map(String::as_str).collect();
    let count_spurious = |result: &AnalysisResult| {
        result.reports.iter().filter(|r| spurious.contains(r.function.as_str())).count()
    };
    let stage1_spurious_reports = count_spurious(&stage1);
    let refuted_spurious = stage1_spurious_reports - count_spurious(&stage2);

    let reported = |result: &AnalysisResult| -> std::collections::BTreeSet<String> {
        result.reports.iter().map(|r| r.function.clone()).collect()
    };
    let (found1, found2) = (reported(&stage1), reported(&stage2));
    let true_positives_lost = corpus
        .detectable_bug_functions()
        .filter(|f| found1.contains(*f) && !found2.contains(*f))
        .count();

    RefuteRecord {
        stage1_s,
        two_stage_s,
        overhead_ratio: two_stage_s / stage1_s.max(1e-9),
        reports_confirmed,
        seeded_spurious: corpus.spurious_functions.len(),
        stage1_spurious_reports,
        refuted_spurious,
        refutation_share: refuted_spurious as f64 / (stage1_spurious_reports as f64).max(1.0),
        true_positives_lost,
    }
}

fn cache_counters(result: &AnalysisResult) -> CacheCounters {
    CacheCounters {
        hits: result.stats.cache_hits,
        misses: result.stats.cache_misses,
        invalidated: result.stats.cache_invalidated,
    }
}

fn measure_cache(program: &rid_ir::Program, threads: usize, iters: usize) -> CacheRecord {
    let apis = rid_core::apis::linux_dpm_apis();
    let options = AnalysisOptions { threads, ..Default::default() };
    let faults = FaultPlan::none();

    // Populate the warm cache once (untimed), then alternate timed
    // cold/warm iterations so slow environmental drift lands on both
    // sides of the ratio equally (same rationale as [`measure_modes`]).
    let mut warm_cache = SummaryCache::new();
    let _ = rid_core::analyze_program_cached(
        program,
        &apis,
        &options,
        &faults,
        Some(&mut warm_cache),
    );

    let mut cold_s = f64::INFINITY;
    let mut cold_result: Option<AnalysisResult> = None;
    let mut warm_s = f64::INFINITY;
    let mut warm_result: Option<AnalysisResult> = None;
    for _ in 0..iters.max(1) {
        let mut fresh = SummaryCache::new();
        let result = rid_core::analyze_program_cached(
            program,
            &apis,
            &options,
            &faults,
            Some(&mut fresh),
        );
        let s = result.stats.analyze_time.as_secs_f64();
        if s < cold_s {
            cold_s = s;
            cold_result = Some(result);
        }

        let result = rid_core::analyze_program_cached(
            program,
            &apis,
            &options,
            &faults,
            Some(&mut warm_cache),
        );
        let s = result.stats.analyze_time.as_secs_f64();
        if s < warm_s {
            warm_s = s;
            warm_result = Some(result);
        }
    }
    let cold_result = cold_result.expect("at least one cold iteration");
    let warm_result = warm_result.expect("at least one warm iteration");
    assert_eq!(
        cold_result.reports, warm_result.reports,
        "warm run must reproduce the cold run's reports"
    );

    CacheRecord {
        threads,
        cold_s,
        warm_s,
        warm_speedup: cold_s / warm_s.max(1e-9),
        cold: cache_counters(&cold_result),
        warm: cache_counters(&warm_result),
    }
}

/// Peak resident set of this process in bytes (`VmHWM` from
/// `/proc/self/status`; 0 where that file does not exist or parse).
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                let rest = line.strip_prefix("VmHWM:")?;
                let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                Some(kib * 1024)
            })
        })
        .unwrap_or(0)
}

/// The largest-scale IR footprint (see [`MemoryRecord`]). `peak_rss_bytes`
/// is left 0 here and stamped by the caller at the end of the run, when
/// the high-water mark actually is the peak.
fn measure_memory(program: &rid_ir::Program) -> MemoryRecord {
    let footprint = rid_ir::measure_program(program);
    MemoryRecord {
        peak_rss_bytes: 0,
        ir_resident_bytes: footprint.resident_bytes,
        ir_interner_bytes: footprint.interner_bytes,
        ir_string_layout_bytes: footprint.string_layout_bytes,
        ir_bytes_per_function: footprint.bytes_per_function(),
        ir_reduction_ratio: footprint.reduction_ratio(),
        sym_occurrences: footprint.sym_occurrences,
        sym_text_bytes: footprint.sym_text_bytes,
    }
}

/// Summary-container warm-load measurement (see [`StoreRecord`]):
/// populates one cache, persists it as a RIDSS1 container, then times
/// index-only opens, full materializations, and eager parses of the
/// legacy JSON encoding of the same data.
fn measure_store(
    program: &rid_ir::Program,
    iters: usize,
    phases: &mut Vec<PhaseAlloc>,
) -> StoreRecord {
    let apis = rid_core::apis::linux_dpm_apis();
    let options = AnalysisOptions { threads: 1, ..Default::default() };
    let faults = FaultPlan::none();
    let mut cache = SummaryCache::new();
    let _ =
        rid_core::analyze_program_cached(program, &apis, &options, &faults, Some(&mut cache));
    let entries = cache.len();

    let path = std::env::temp_dir().join(format!("rid-perf-store-{}.bin", std::process::id()));
    track_phase(phases, "store_save", || {
        rid_core::persist::save_cache(&cache, &path).expect("container written");
    });
    let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    // The v5 on-disk format was this exact single JSON document, parsed
    // eagerly on every warm start (`SummaryCache`'s serde impls keep
    // that encoding alive for snapshots and tests).
    let legacy_json = serde_json::to_string(&cache).expect("cache serializes");

    // One tracked pass of each load flavor for the allocation record,
    // then untracked timing iterations.
    track_phase(phases, "store_open", || {
        rid_core::persist::load_cache(&path).expect("container opens");
    });
    track_phase(phases, "serde_load", || {
        serde_json::from_str::<SummaryCache>(&legacy_json).expect("legacy JSON parses");
    });

    let mut store_open_s = f64::INFINITY;
    let mut store_full_s = f64::INFINITY;
    let mut serde_load_s = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let loaded = rid_core::persist::load_cache(&path).expect("container opens");
        store_open_s = store_open_s.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        let loaded_full = rid_core::persist::load_cache(&path).expect("container opens");
        let store = loaded_full.backing_store().expect("container-backed cache");
        let names: Vec<String> = store.names().map(str::to_owned).collect();
        let mut read = 0usize;
        for name in &names {
            let entry = store.read_entry(name).expect("entry reads");
            assert!(entry.is_some(), "indexed entry {name} must materialize");
            read += 1;
        }
        store_full_s = store_full_s.min(start.elapsed().as_secs_f64());
        assert_eq!(read, entries, "full materialization must touch every entry");
        drop(loaded);

        let start = Instant::now();
        let parsed =
            serde_json::from_str::<SummaryCache>(&legacy_json).expect("legacy JSON parses");
        serde_load_s = serde_load_s.min(start.elapsed().as_secs_f64());
        assert_eq!(parsed.len(), entries, "legacy parse must see every entry");
    }
    std::fs::remove_file(&path).ok();

    StoreRecord {
        entries,
        file_bytes,
        store_open_s,
        store_full_s,
        serde_load_s,
        open_speedup: serde_load_s / store_open_s.max(1e-9),
    }
}

fn auto_vs_best(auto: &ModeRecord, tree: &ModeRecord, per_path: &ModeRecord) -> f64 {
    tree.analyze_s.min(per_path.analyze_s) / auto.analyze_s.max(1e-9)
}

fn mode_row(
    label: String,
    functions: usize,
    parse_s: f64,
    tree: &ModeRecord,
    per_path: &ModeRecord,
    auto: &ModeRecord,
) -> Vec<String> {
    vec![
        label,
        functions.to_string(),
        format!("{parse_s:.2}s"),
        format!("{:.3}s", tree.classify_s),
        format!("{:.3}s", per_path.analyze_s),
        format!("{:.3}s", tree.analyze_s),
        format!("{:.3}s", auto.analyze_s),
        format!("{:.2}x", per_path.analyze_s / tree.analyze_s.max(1e-9)),
        format!("{}/{}", auto.exec_tree, auto.exec_per_path),
        format!("{}/{}", tree.sat_memo_hits, tree.sat_queries),
    ]
}

fn main() {
    // The process sweep re-execs this binary as shard workers.
    rid_core::maybe_run_worker();
    let seed: u64 = args::flag("seed").unwrap_or(2016);
    let threads: usize = args::flag("threads").unwrap_or(1);
    let iters: usize = args::flag("iters").unwrap_or(3);
    let out: String = args::flag("out").unwrap_or_else(|| "BENCH_perf.json".to_owned());
    let scales: Vec<f64> = match args::flag::<f64>("scale") {
        Some(s) => vec![s],
        None => vec![0.25, 0.5, 1.0],
    };

    let host_cpus =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut largest: Option<rid_ir::Program> = None;
    let mut largest_sources: Vec<String> = Vec::new();
    let mut phases: Vec<PhaseAlloc> = Vec::new();
    for &scale in &scales {
        let config = KernelConfig::evaluation(seed).scaled(scale);
        eprintln!("scale {scale}: generating...");
        let corpus = generate_kernel(&config);
        let parse_start = Instant::now();
        let program = track_phase(&mut phases, format!("parse@{scale}"), || {
            rid_frontend::parse_program(corpus.sources.iter().map(String::as_str))
                .expect("corpus must parse")
        });
        let parse_s = parse_start.elapsed().as_secs_f64();

        let (tree, per_path, auto) = measure_modes(&program, threads, iters);
        assert_eq!(
            tree.reports, per_path.reports,
            "modes disagree on reports at scale {scale}"
        );
        assert_eq!(auto.reports, per_path.reports, "auto disagrees at scale {scale}");
        let analyze_speedup = per_path.analyze_s / tree.analyze_s.max(1e-9);

        rows.push(mode_row(
            format!("{scale}"),
            program.function_count(),
            parse_s,
            &tree,
            &per_path,
            &auto,
        ));
        records.push(ScaleRecord {
            scale,
            functions: program.function_count(),
            parse_s,
            auto_vs_best: auto_vs_best(&auto, &tree, &per_path),
            tree,
            per_path,
            auto,
            analyze_speedup,
        });
        largest = Some(program);
        largest_sources = corpus.sources;
    }
    let largest = largest.expect("at least one scale");

    // Thread sweep: the work-stealing scheduler at the largest scale.
    eprintln!("thread sweep...");
    let mut thread_sweep = Vec::new();
    let mut analyze_1t = None;
    for t in [1usize, 2, 4, 8] {
        let mut cell = measure_thread_cell(&largest, t, iters, host_cpus);
        let base = *analyze_1t.get_or_insert(cell.analyze_s);
        cell.speedup_vs_1 = base / cell.analyze_s.max(1e-9);
        thread_sweep.push(cell);
    }

    // Process sweep: sharded multi-process analysis at the largest
    // scale, checked against the sequential reference every iteration.
    eprintln!("process sweep...");
    let reference = rid_core::analyze_program(
        &largest,
        &rid_core::apis::linux_dpm_apis(),
        &AnalysisOptions::default(),
    );
    let process_sweep = measure_processes(&largest_sources, iters, host_cpus, &reference);

    // One tracked analyze pass for the allocation record (the timed
    // mode records above stay unperturbed by phase bookkeeping).
    track_phase(&mut phases, "analyze", || run_once(&largest, ExecMode::Auto, threads));

    // IR footprint at the largest scale (see [`MemoryRecord`]).
    let mut memory = measure_memory(&largest);

    // Summary-container warm-load pair (see [`StoreRecord`]).
    eprintln!("summary store open/parse...");
    let summary_store = measure_store(&largest, iters, &mut phases);

    // Cold vs warm cache at the largest scale, single worker (see
    // [`CacheRecord::threads`]).
    eprintln!("cache cold/warm...");
    let cache = measure_cache(&largest, 1, iters);

    // Tracing probe cost at the largest scale (see [`OverheadRecord`]).
    eprintln!("tracing overhead...");
    let overhead = measure_overhead(&largest, iters);

    // Second-stage refutation cost and precision (see [`RefuteRecord`]).
    eprintln!("refutation overhead + precision...");
    let refute = measure_refute(&largest, seed, iters);

    // The branchy workload (see [`AdversarialRecord`]).
    let adv_modules = 6;
    let adv_depth = 14;
    let adv_config = KernelConfig {
        adversarial_modules: adv_modules,
        adversarial_depth: adv_depth,
        subsystems: 1,
        drivers_per_subsystem: 1,
        filler_modules: 1,
        filler_functions_per_module: 1,
        ..KernelConfig::evaluation(seed)
    };
    eprintln!("adversarial: generating...");
    let adv_corpus = generate_kernel(&adv_config);
    let parse_start = Instant::now();
    let adv_program = rid_frontend::parse_program(adv_corpus.sources.iter().map(String::as_str))
        .expect("adversarial corpus must parse");
    let adv_parse_s = parse_start.elapsed().as_secs_f64();
    let (adv_tree, adv_per_path, adv_auto) = measure_modes(&adv_program, threads, iters);
    assert_eq!(adv_tree.reports, adv_per_path.reports, "modes disagree on adversarial reports");
    assert_eq!(adv_auto.reports, adv_per_path.reports, "auto disagrees on adversarial reports");
    let adv_speedup = adv_per_path.analyze_s / adv_tree.analyze_s.max(1e-9);
    rows.push(mode_row(
        format!("adv 2^{adv_depth}"),
        adv_program.function_count(),
        adv_parse_s,
        &adv_tree,
        &adv_per_path,
        &adv_auto,
    ));
    let adversarial = AdversarialRecord {
        modules: adv_modules,
        depth: adv_depth,
        functions: adv_program.function_count(),
        parse_s: adv_parse_s,
        auto_vs_best: auto_vs_best(&adv_auto, &adv_tree, &adv_per_path),
        tree: adv_tree,
        per_path: adv_per_path,
        auto: adv_auto,
        analyze_speedup: adv_speedup,
    };

    println!(
        "§6.5: performance scaling ({threads} thread(s), {host_cpus} host cpu(s), \
         min of {iters} runs)"
    );
    println!();
    println!(
        "{}",
        format_table(
            &[
                "scale",
                "functions",
                "parse",
                "classify",
                "analyze/path",
                "analyze/tree",
                "analyze/auto",
                "speedup",
                "auto t/p",
                "memo hits",
            ],
            &rows
        )
    );
    println!();
    println!("scheduler thread sweep (largest scale, auto mode; ceiling = host cpus):");
    for record in &thread_sweep {
        println!(
            "  {} thread(s): {:.3}s ({:.2}x vs 1 thread{}; {} steal(s), mean batch {:.1}, \
             {} scan miss(es), {:.1}ms idle)",
            record.threads,
            record.analyze_s,
            record.speedup_vs_1,
            if record.scaling_asserted { "" } else { ", not asserted: host too small" },
            record.steals,
            record.steal_batch_mean,
            record.scan_misses,
            record.idle_wait_ns as f64 / 1e6,
        );
    }
    println!("process sweep (sharded coordinator, 1 worker thread per shard):");
    for record in &process_sweep {
        println!(
            "  {} process(es): {:.3}s ({:.2}x vs 1 process{}; reports {})",
            record.processes,
            record.analyze_s,
            record.speedup_vs_1,
            if record.scaling_asserted { "" } else { ", not asserted: host too small" },
            if record.identical_reports { "identical" } else { "DIVERGED" },
        );
    }
    println!(
        "cache: cold {:.3}s -> warm {:.3}s ({:.1}x; warm {} hit(s), {} miss(es))",
        cache.cold_s, cache.warm_s, cache.warm_speedup, cache.warm.hits, cache.warm.misses
    );
    println!(
        "tracing: disabled {:.3}s, enabled {:.3}s ({:.2}x, {} event(s))",
        overhead.disabled_s,
        overhead.enabled_s,
        overhead.enabled_over_disabled,
        overhead.events
    );
    println!(
        "refutation: stage one {:.3}s -> two-stage {:.3}s ({:.2}x, {} confirmed); \
         spurious corpus: {}/{} refuted, {} true positive(s) lost",
        refute.stage1_s,
        refute.two_stage_s,
        refute.overhead_ratio,
        refute.reports_confirmed,
        refute.refuted_spurious,
        refute.stage1_spurious_reports,
        refute.true_positives_lost,
    );
    memory.peak_rss_bytes = peak_rss_bytes();
    println!(
        "memory: IR {:.1} KiB resident ({:.0} B/function), string layout {:.1} KiB \
         ({:.2}x), peak RSS {:.1} MiB",
        memory.ir_resident_bytes as f64 / 1024.0,
        memory.ir_bytes_per_function,
        memory.ir_string_layout_bytes as f64 / 1024.0,
        memory.ir_reduction_ratio,
        memory.peak_rss_bytes as f64 / (1024.0 * 1024.0),
    );
    println!(
        "summary store: open {:.4}s, full {:.4}s, legacy serde {:.4}s \
         ({:.1}x open speedup; {} entries, {:.1} KiB)",
        summary_store.store_open_s,
        summary_store.store_full_s,
        summary_store.serde_load_s,
        summary_store.open_speedup,
        summary_store.entries,
        summary_store.file_bytes as f64 / 1024.0,
    );
    if cfg!(feature = "alloc-track") {
        for phase in &phases {
            println!(
                "alloc[{}]: {} allocation(s), {:.1} KiB",
                phase.phase,
                phase.allocs,
                phase.bytes as f64 / 1024.0
            );
        }
    }
    println!();
    println!("paper reference: classify 270k functions in 64 min; analyze in 67 min;");
    println!("the shape to check: the dependency-driven scheduler scales with threads,");
    println!("warm cache re-runs skip straight to checking, and every configuration");
    println!("produces byte-identical summaries (the differential suite enforces that).");

    // Keep an existing serve record (written by `serve_bench`) across
    // perf re-runs instead of resetting it to null.
    let serve = std::fs::read_to_string(&out)
        .ok()
        .and_then(|text| serde_json::from_str::<serde_json::Value>(&text).ok())
        .map(|v| v["serve"].clone())
        .unwrap_or(serde_json::Value::Null);

    let baseline = PerfBaseline {
        schema: "rid-bench-perf/v9".to_owned(),
        seed,
        threads,
        iters,
        host_cpus,
        scales: records,
        thread_sweep,
        process_sweep,
        cache,
        overhead,
        refute,
        adversarial,
        memory,
        summary_store,
        alloc: AllocRecord { enabled: cfg!(feature = "alloc-track"), phases },
        serve,
    };
    let json = serde_json::to_string(&baseline).expect("baseline serializes");
    std::fs::write(&out, json).expect("baseline written");
    eprintln!("wrote {out}");
}
