//! Regenerates the **§6.5 performance** claim and persists a
//! machine-readable baseline.
//!
//! For each corpus scale the binary parses the seeded kernel corpus once,
//! then runs the whole-program analysis `--iters` times per execution
//! mode (tree and per-path), keeping the *minimum* wall-clock per phase
//! (minimum-of-N is the standard noise filter for sub-second runs). The
//! human-readable table goes to stdout; the machine-readable baseline —
//! per-phase wall-clock, sat-query/memo-hit counters, and states
//! executed vs saved by prefix sharing — is written to `BENCH_perf.json`
//! (override with `--out`), which CI validates and archives.
//!
//! ```text
//! cargo run -p rid-bench --release --bin perf -- \
//!     [--seed N] [--threads N] [--scale F] [--iters N] [--out PATH]
//! ```
//!
//! `--scale` restricts the run to a single scale (CI smoke uses 0.25);
//! the default sweep is 0.25 / 0.5 / 1.0.

use std::time::Instant;

use rid_bench::format_table;
use rid_core::{AnalysisOptions, AnalysisResult, ExecMode};
use rid_corpus::kernel::{generate_kernel, KernelConfig};
use serde::Serialize;

#[path = "../args.rs"]
mod args;

/// One measured analysis configuration (a scale × mode cell).
#[derive(Serialize)]
struct ModeRecord {
    /// Wall-clock of the classification phase (seconds, min over iters).
    classify_s: f64,
    /// Wall-clock of summarization + IPP checking (seconds, min over
    /// iters) — the phase the execution tree accelerates.
    analyze_s: f64,
    /// Functions symbolically analyzed.
    functions_analyzed: usize,
    /// Structural paths enumerated.
    paths_enumerated: usize,
    /// Symbolic states executed (initial states + call forks + tree
    /// branch forks).
    states_explored: usize,
    /// Satisfiability queries issued.
    sat_queries: usize,
    /// Of those, answered by the conjunction-keyed memo cache.
    sat_memo_hits: usize,
    /// Basic blocks symbolically executed.
    blocks_executed: usize,
    /// Block executions saved by shared-prefix execution (0 in per-path
    /// mode by construction).
    blocks_saved: usize,
    /// Bug reports found (must agree across modes).
    reports: usize,
}

#[derive(Serialize)]
struct ScaleRecord {
    scale: f64,
    functions: usize,
    /// Corpus parse wall-clock (seconds; shared by both modes).
    parse_s: f64,
    tree: ModeRecord,
    per_path: ModeRecord,
    /// `per_path.analyze_s / tree.analyze_s`.
    analyze_speedup: f64,
}

/// The branchy workload: adversarial modules whose functions chain
/// diamonds (2^depth structural paths, truncated by the path cap). This
/// is the CFG shape the execution tree targets — long shared prefixes
/// across many enumerated paths — and the shape real kernel drivers
/// have (chains of `if (err) goto out;`). The evaluation corpus cannot
/// show it: classification skips functions with more than three
/// branches, so surviving functions have at most a handful of paths.
#[derive(Serialize)]
struct AdversarialRecord {
    modules: usize,
    depth: usize,
    functions: usize,
    parse_s: f64,
    tree: ModeRecord,
    per_path: ModeRecord,
    /// `per_path.analyze_s / tree.analyze_s`.
    analyze_speedup: f64,
}

#[derive(Serialize)]
struct PerfBaseline {
    schema: String,
    seed: u64,
    threads: usize,
    iters: usize,
    scales: Vec<ScaleRecord>,
    adversarial: AdversarialRecord,
}

fn measure(
    program: &rid_ir::Program,
    mode: ExecMode,
    threads: usize,
    iters: usize,
) -> ModeRecord {
    let options = AnalysisOptions { threads, exec_mode: mode, ..Default::default() };
    let mut best: Option<(f64, f64, AnalysisResult)> = None;
    for _ in 0..iters.max(1) {
        let result =
            rid_core::analyze_program(program, &rid_core::apis::linux_dpm_apis(), &options);
        let classify = result.stats.classify_time.as_secs_f64();
        let analyze = result.stats.analyze_time.as_secs_f64();
        let better = match &best {
            Some((_, prev_analyze, _)) => analyze < *prev_analyze,
            None => true,
        };
        if better {
            best = Some((classify, analyze, result));
        }
    }
    let (classify_s, analyze_s, result) = best.expect("at least one iteration");
    ModeRecord {
        classify_s,
        analyze_s,
        functions_analyzed: result.stats.functions_analyzed,
        paths_enumerated: result.stats.paths_enumerated,
        states_explored: result.stats.states_explored,
        sat_queries: result.stats.sat_queries,
        sat_memo_hits: result.stats.sat_memo_hits,
        blocks_executed: result.stats.blocks_executed,
        blocks_saved: result.stats.blocks_saved,
        reports: result.reports.len(),
    }
}

fn main() {
    let seed: u64 = args::flag("seed").unwrap_or(2016);
    let threads: usize = args::flag("threads").unwrap_or(1);
    let iters: usize = args::flag("iters").unwrap_or(3);
    let out: String = args::flag("out").unwrap_or_else(|| "BENCH_perf.json".to_owned());
    let scales: Vec<f64> = match args::flag::<f64>("scale") {
        Some(s) => vec![s],
        None => vec![0.25, 0.5, 1.0],
    };

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &scale in &scales {
        let config = KernelConfig::evaluation(seed).scaled(scale);
        eprintln!("scale {scale}: generating...");
        let corpus = generate_kernel(&config);
        let parse_start = Instant::now();
        let program = rid_frontend::parse_program(corpus.sources.iter().map(String::as_str))
            .expect("corpus must parse");
        let parse_s = parse_start.elapsed().as_secs_f64();

        let tree = measure(&program, ExecMode::Tree, threads, iters);
        let per_path = measure(&program, ExecMode::PerPath, threads, iters);
        assert_eq!(
            tree.reports, per_path.reports,
            "modes disagree on reports at scale {scale}"
        );
        let analyze_speedup = per_path.analyze_s / tree.analyze_s.max(1e-9);

        rows.push(vec![
            format!("{scale}"),
            program.function_count().to_string(),
            format!("{parse_s:.2}s"),
            format!("{:.3}s", tree.classify_s),
            format!("{:.3}s", per_path.analyze_s),
            format!("{:.3}s", tree.analyze_s),
            format!("{analyze_speedup:.2}x"),
            format!("{}/{}", tree.sat_memo_hits, tree.sat_queries),
            format!("{}/{}", tree.blocks_saved, tree.blocks_saved + tree.blocks_executed),
        ]);
        records.push(ScaleRecord {
            scale,
            functions: program.function_count(),
            parse_s,
            tree,
            per_path,
            analyze_speedup,
        });
    }

    // The branchy workload (see [`AdversarialRecord`]).
    let adv_modules = 6;
    let adv_depth = 14;
    let adv_config = KernelConfig {
        adversarial_modules: adv_modules,
        adversarial_depth: adv_depth,
        subsystems: 1,
        drivers_per_subsystem: 1,
        filler_modules: 1,
        filler_functions_per_module: 1,
        ..KernelConfig::evaluation(seed)
    };
    eprintln!("adversarial: generating...");
    let adv_corpus = generate_kernel(&adv_config);
    let parse_start = Instant::now();
    let adv_program = rid_frontend::parse_program(adv_corpus.sources.iter().map(String::as_str))
        .expect("adversarial corpus must parse");
    let adv_parse_s = parse_start.elapsed().as_secs_f64();
    let adv_tree = measure(&adv_program, ExecMode::Tree, threads, iters);
    let adv_per_path = measure(&adv_program, ExecMode::PerPath, threads, iters);
    assert_eq!(adv_tree.reports, adv_per_path.reports, "modes disagree on adversarial reports");
    let adv_speedup = adv_per_path.analyze_s / adv_tree.analyze_s.max(1e-9);
    rows.push(vec![
        format!("adv 2^{adv_depth}"),
        adv_program.function_count().to_string(),
        format!("{adv_parse_s:.2}s"),
        format!("{:.3}s", adv_tree.classify_s),
        format!("{:.3}s", adv_per_path.analyze_s),
        format!("{:.3}s", adv_tree.analyze_s),
        format!("{adv_speedup:.2}x"),
        format!("{}/{}", adv_tree.sat_memo_hits, adv_tree.sat_queries),
        format!("{}/{}", adv_tree.blocks_saved, adv_tree.blocks_saved + adv_tree.blocks_executed),
    ]);
    let adversarial = AdversarialRecord {
        modules: adv_modules,
        depth: adv_depth,
        functions: adv_program.function_count(),
        parse_s: adv_parse_s,
        tree: adv_tree,
        per_path: adv_per_path,
        analyze_speedup: adv_speedup,
    };

    println!("§6.5: performance scaling ({threads} thread(s), min of {iters} runs)");
    println!();
    println!(
        "{}",
        format_table(
            &[
                "scale",
                "functions",
                "parse",
                "classify",
                "analyze/path",
                "analyze/tree",
                "speedup",
                "memo hits",
                "blocks saved",
            ],
            &rows
        )
    );
    println!("paper reference: classify 270k functions in 64 min; analyze in 67 min;");
    println!("the shape to check: tree-mode analysis beats per-path re-execution while");
    println!("producing byte-identical summaries (the differential suite enforces that).");

    let baseline = PerfBaseline {
        schema: "rid-bench-perf/v1".to_owned(),
        seed,
        threads,
        iters,
        scales: records,
        adversarial,
    };
    let json = serde_json::to_string(&baseline).expect("baseline serializes");
    std::fs::write(&out, json).expect("baseline written");
    eprintln!("wrote {out}");
}
