//! Regenerates the **§6.5 performance** claim: classification and
//! analysis wall-clock across corpus scales, and the concentration effect
//! of selective analysis (the paper: 64 min to classify 270k functions,
//! 67 min to analyze the kernel; selective analysis concentrates work on
//! <2% of functions).
//!
//! ```text
//! cargo run -p rid-bench --release --bin perf [-- --seed N] [--threads N]
//! ```

use std::time::Instant;

use rid_bench::format_table;
use rid_core::{AnalysisOptions, CallGraph};
use rid_corpus::kernel::{generate_kernel, KernelConfig};

#[path = "../args.rs"]
mod args;

fn main() {
    let seed: u64 = args::flag("seed").unwrap_or(2016);
    let threads: usize = args::flag("threads").unwrap_or(1);
    let scales = [0.25, 0.5, 1.0, 2.0];

    let mut rows = Vec::new();
    for &scale in &scales {
        let config = KernelConfig::evaluation(seed).scaled(scale);
        eprintln!("scale {scale}: generating...");
        let corpus = generate_kernel(&config);
        let parse_start = Instant::now();
        let program = rid_frontend::parse_program(corpus.sources.iter().map(String::as_str))
            .expect("corpus must parse");
        let parse_time = parse_start.elapsed();

        // Phase timings mirroring the paper's split: classification vs
        // summarization+IPP checking.
        let classify_start = Instant::now();
        let graph = CallGraph::build(&program);
        let classification = rid_core::classify::classify(
            &program,
            &graph,
            &rid_core::apis::linux_dpm_apis(),
        );
        let classify_time = classify_start.elapsed();

        let options = AnalysisOptions { threads, ..Default::default() };
        let analyze_start = Instant::now();
        let result =
            rid_core::analyze_program(&program, &rid_core::apis::linux_dpm_apis(), &options);
        let analyze_time = analyze_start.elapsed();

        let counts = classification.counts();
        rows.push(vec![
            format!("{scale}"),
            program.function_count().to_string(),
            format!("{:.2}s", parse_time.as_secs_f64()),
            format!("{:.2}s", classify_time.as_secs_f64()),
            format!("{:.2}s", analyze_time.as_secs_f64()),
            result.stats.functions_analyzed.to_string(),
            format!(
                "{:.2}%",
                100.0 * (counts.refcount_changing + counts.affecting_analyzed) as f64
                    / counts.total().max(1) as f64
            ),
        ]);
    }

    println!("§6.5: performance scaling ({} thread(s))", threads);
    println!();
    println!(
        "{}",
        format_table(
            &["scale", "functions", "parse", "classify", "analyze", "analyzed fns", "analyzed %"],
            &rows
        )
    );
    println!("paper reference: classify 270k functions in 64 min; analyze in 67 min;");
    println!("the shape to check: classify and analyze are the same order of magnitude");
    println!("and selective analysis touches only a small percentage of functions.");
}
