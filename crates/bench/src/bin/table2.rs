//! Regenerates **Table 2** of the paper: RID vs a Cpychecker-style
//! escape-rule checker on three Python/C-like programs (§6.6).
//!
//! ```text
//! cargo run -p rid-bench --release --bin table2 [-- --seed N]
//! ```

use rid_bench::{compare_on_program, format_table};
use rid_core::AnalysisOptions;
use rid_corpus::pyc::{generate_pyc, PycConfig};

#[path = "../args.rs"]
mod args;

fn main() {
    let seed: u64 = args::flag("seed").unwrap_or(2016);
    let config = PycConfig { seed, ..PycConfig::default() };
    eprintln!("generating Python/C corpus (seed {seed})...");
    let corpus = generate_pyc(&config);

    // Paper Table 2 (common / RID-specific / Cpychecker-specific).
    let paper = [("krbv", (48, 86, 14)), ("ldap", (7, 13, 1)), ("pyaudio", (31, 15, 1))];

    let mut rows = Vec::new();
    let mut total = (0, 0, 0);
    let mut total_alarms = 0;
    for program in &corpus.programs {
        eprintln!("analyzing {} ({} modules)...", program.name, program.sources.len());
        let row = compare_on_program(program, &AnalysisOptions::default());
        let paper_row = paper
            .iter()
            .find(|(name, _)| *name == program.name)
            .map_or((0, 0, 0), |(_, r)| *r);
        rows.push(vec![
            program.name.clone(),
            row.common.to_string(),
            row.rid_only.to_string(),
            row.baseline_only.to_string(),
            format!("{}/{}/{}", paper_row.0, paper_row.1, paper_row.2),
            row.baseline_wrapper_alarms.to_string(),
        ]);
        total.0 += row.common;
        total.1 += row.rid_only;
        total.2 += row.baseline_only;
        total_alarms += row.baseline_wrapper_alarms;
    }
    rows.push(vec![
        "total".to_owned(),
        total.0.to_string(),
        total.1.to_string(),
        total.2.to_string(),
        "86/114/16".to_owned(),
        total_alarms.to_string(),
    ]);

    println!("Table 2: comparison between RID and the Cpychecker-style baseline");
    println!();
    println!(
        "{}",
        format_table(
            &["Program", "Common", "RID-only", "Cpy-only", "paper (C/R/Cpy)", "wrapper alarms"],
            &rows
        )
    );
    println!("(wrapper alarms: escape-rule false positives on intentional");
    println!(" refcount wrappers, §2.1 — RID raises none by construction)");
}
