//! Cold-vs-warm-vs-daemon latency for the `rid serve` tentpole claim:
//! once a project is resident in the daemon, a one-function `patch`
//! round-trip must be much cheaper than a cold `rid analyze` of the
//! same corpus, because only the affected-function cone re-executes.
//!
//! Three configurations over the seeded evaluation corpus:
//!
//! - **cold** — what a one-shot `rid analyze` pays: parse the whole
//!   corpus and analyze it with an empty cache.
//! - **warm** — a resident daemon's `analyze` of the unchanged corpus:
//!   no re-parse, every summary answered by the cache.
//! - **patch** — the daemon round-trip for an edit to one function:
//!   request parse, re-parse of the one changed module, in-place relink,
//!   affected-set computation, incremental re-analysis of just that
//!   cone (previous summaries reused), response serialization. Two
//!   function variants alternate so every timed patch is a real change,
//!   never a no-op.
//! - **restore** — crash-safe startup: [`Engine::recover`] loading the
//!   snapshotted corpus (binary module codec + summary cache + last
//!   result) from `--state-dir`, measured in a separate daemon phase so
//!   journaling never taxes the warm/patch paths above. The crash-safety
//!   claim is that restore costs a fraction of the cold analyze it
//!   replaces.
//!
//! - **open loop** — tail latency under concurrent load: a real
//!   `serve_unix` daemon on a Unix socket, N client connections, and a
//!   fixed arrival schedule (requests fire at `epoch + k/rate` whether
//!   or not earlier ones finished, so daemon queueing delay lands in
//!   the measured latency instead of silently throttling the
//!   generator). Alternating one-function patches are the probe; the
//!   p50/p99/p999 of the per-request latency distribution are the
//!   daemon's SLO numbers.
//!
//! The record is patched into the `serve` slot of `BENCH_perf.json`
//! (schema `rid-bench-perf/v9`, written by the `perf` binary) so CI
//! validates both sections together; `--out` overrides the path.
//!
//! ```text
//! cargo run -p rid-bench --release --bin serve_bench -- \
//!     [--seed N] [--scale F] [--iters N] [--out PATH]
//!     [--conns N] [--rate RPS] [--requests N]
//! ```

use std::time::Instant;

use rid_core::AnalysisOptions;
use rid_corpus::kernel::{generate_kernel, KernelConfig};
use rid_serve::{Engine, Request, ServerConfig};
use serde_json::Value;

#[path = "../args.rs"]
mod args;

/// The two alternating bodies of the benchmark's synthetic edit. Both
/// are clean (no IPP), structurally different, and call nothing, so the
/// affected set is exactly the edited function.
const PROBE_A: &str =
    "\nfn __bench_probe(dev) { pm_runtime_get_sync(dev); pm_runtime_put(dev); return 0; }\n";
const PROBE_B: &str = "\nfn __bench_probe(dev) { let r = pm_runtime_get_sync(dev); \
     if (r < 0) { pm_runtime_put_noidle(dev); return r; } pm_runtime_put(dev); return 0; }\n";

fn response_value(replies: &[((), String)]) -> Value {
    assert_eq!(replies.len(), 1, "exactly one response expected");
    let value: Value = serde_json::from_str(&replies[0].1).expect("response parses");
    assert_eq!(value["ok"].as_bool(), Some(true), "daemon errored: {}", replies[0].1);
    value
}

/// The `q`-quantile of a sorted latency sample (nearest-rank method —
/// the same approximation contract as the daemon's log2 histograms).
fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// Open-loop tail-latency phase: a real Unix-socket daemon, `conns`
/// client connections, and `total` one-function patches fired on a
/// fixed `rate` requests/second schedule. Latency is measured from the
/// *scheduled* arrival, so when the daemon falls behind the queueing
/// delay is charged to the requests that suffered it.
#[cfg(unix)]
fn open_loop_phase(
    sources: &[(String, String)],
    conns: usize,
    rate: f64,
    total: usize,
) -> Value {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    use rid_serve::Client;

    let socket =
        std::env::temp_dir().join(format!("rid-serve-bench-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || rid_serve::serve_unix(&socket, ServerConfig::default()))
    };
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Make the project resident (untimed daemon startup cost).
    let mut control = Client::connect(&socket).expect("daemon reachable");
    let mut register = Request::new(1, "register", "bench");
    register.sources = sources.iter().cloned().collect();
    let reply = control.request(&register).expect("register");
    assert!(reply.contains("\"ok\":true"), "register failed: {reply}");
    let reply = control.request(&Request::new(2, "analyze", "bench")).expect("analyze");
    assert!(reply.contains("\"ok\":true"), "analyze failed: {reply}");

    let base_module = &sources[0];
    let errors = AtomicUsize::new(0);
    let bench_start = Instant::now();
    // Arrival k is due at `epoch + k/rate`; connection t owns arrivals
    // k ≡ t (mod conns). The schedule is fixed up front — a slow
    // response never delays the next arrival beyond its own connection.
    let epoch = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|t| {
                let socket = &socket;
                let errors = &errors;
                scope.spawn(move || {
                    let mut client = Client::connect(socket).expect("daemon reachable");
                    let mut samples = Vec::new();
                    let mut k = t;
                    while k < total {
                        let due = epoch + Duration::from_secs_f64(k as f64 / rate);
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let body = if k % 2 == 0 { PROBE_B } else { PROBE_A };
                        let mut request =
                            Request::new(1000 + k as u64, "patch", "bench");
                        request
                            .sources
                            .insert(base_module.0.clone(), format!("{}{body}", base_module.1));
                        match client.request(&request) {
                            Ok(reply) if reply.contains("\"ok\":true") => {
                                samples.push(due.elapsed().as_micros() as u64);
                            }
                            _ => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        k += conns;
                    }
                    samples
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let duration_s = bench_start.elapsed().as_secs_f64();
    let _ = control.request(&Request::new(9999, "shutdown", ""));
    server.join().expect("server thread").expect("daemon exits cleanly");
    let _ = std::fs::remove_file(&socket);

    assert_eq!(errors.load(Ordering::Relaxed), 0, "open-loop requests errored");
    latencies.sort_unstable();
    let (p50, p99, p999) = (
        quantile_us(&latencies, 0.50),
        quantile_us(&latencies, 0.99),
        quantile_us(&latencies, 0.999),
    );
    let max_us = latencies.last().copied().unwrap_or(0);
    let achieved_rps = latencies.len() as f64 / duration_s.max(1e-9);
    println!(
        "  open loop     : {} req over {conns} conn(s) at {rate:.0} rps \
         (achieved {achieved_rps:.0}): p50 {p50}us  p99 {p99}us  p999 {p999}us  max {max_us}us",
        latencies.len()
    );
    serde_json::json!({
        "conns": conns,
        "rate_rps": rate,
        "requests": latencies.len(),
        "duration_s": duration_s,
        "achieved_rps": achieved_rps,
        "p50_us": p50,
        "p99_us": p99,
        "p999_us": p999,
        "max_us": max_us,
    })
}

#[cfg(not(unix))]
fn open_loop_phase(_: &[(String, String)], _: usize, _: f64, _: usize) -> Value {
    serde_json::json!({ "skipped": "unix sockets unavailable" })
}

fn main() {
    let seed: u64 = args::flag("seed").unwrap_or(2016);
    let scale: f64 = args::flag("scale").unwrap_or(1.0);
    let iters: usize = args::flag("iters").unwrap_or(5);
    let out: String = args::flag("out").unwrap_or_else(|| "BENCH_perf.json".to_owned());
    let conns: usize = args::flag("conns").unwrap_or(4);
    let rate: f64 = args::flag("rate").unwrap_or(100.0);
    let requests: usize = args::flag("requests").unwrap_or(400);

    eprintln!("scale {scale}: generating...");
    let corpus = generate_kernel(&KernelConfig::evaluation(seed).scaled(scale));
    let sources: Vec<(String, String)> = corpus
        .sources
        .iter()
        .enumerate()
        .map(|(i, text)| (format!("module_{i:04}.ril"), text.clone()))
        .collect();

    // Cold: parse + analyze from scratch, the one-shot CLI cost.
    eprintln!("cold runs...");
    let apis = rid_core::apis::linux_dpm_apis();
    let options = AnalysisOptions::default();
    let mut cold_s = f64::INFINITY;
    let mut functions = 0;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let program = rid_frontend::parse_program(sources.iter().map(|(_, s)| s.as_str()))
            .expect("corpus must parse");
        let result = rid_core::analyze_program(&program, &apis, &options);
        cold_s = cold_s.min(start.elapsed().as_secs_f64());
        functions = program.function_count();
        assert!(result.degraded.is_empty(), "cold run degraded — timings not comparable");
    }

    // Resident daemon: register + first analyze populate the cache
    // (untimed — that is the daemon's startup cost, paid once).
    eprintln!("daemon startup...");
    let mut engine: Engine<()> = Engine::new(ServerConfig::default());
    let mut register = Request::new(1, "register", "bench");
    register.sources = sources.iter().cloned().collect();
    response_value(&engine.handle_line((), &register.to_line()));
    let analyze = Request::new(2, "analyze", "bench");
    response_value(&engine.handle_line((), &analyze.to_line()));

    // Warm: the resident daemon re-analyzes the unchanged corpus. Only
    // the daemon's work (request parse → response line) is timed; this
    // harness's own parse of the response for validation is not part of
    // the daemon's latency.
    eprintln!("warm runs...");
    let mut warm_s = f64::INFINITY;
    for i in 0..iters.max(1) {
        let request = Request::new(10 + i as u64, "analyze", "bench");
        let line = request.to_line();
        let start = Instant::now();
        let replies = engine.handle_line((), &line);
        warm_s = warm_s.min(start.elapsed().as_secs_f64());
        let value = response_value(&replies);
        assert_eq!(value["result"]["cache"]["misses"].as_i64(), Some(0), "warm run missed");
    }

    // Patch: alternate the probe variants so each round-trip re-parses
    // the module and re-executes exactly the one changed function.
    eprintln!("patch runs...");
    let base_module = sources[0].1.clone();
    let mut patch_s = f64::INFINITY;
    let mut reexecuted = 0;
    let mut affected = 0;
    // Seed the probe function (untimed: its first appearance also
    // invalidates module 0's other functions' is-defined context; the
    // timed iterations below only ever change the probe body).
    let mut seed_patch = Request::new(100, "patch", "bench");
    seed_patch.sources.insert(sources[0].0.clone(), format!("{base_module}{PROBE_A}"));
    response_value(&engine.handle_line((), &seed_patch.to_line()));
    for i in 0..iters.max(1) * 2 {
        let body = if i % 2 == 0 { PROBE_B } else { PROBE_A };
        let mut request = Request::new(200 + i as u64, "patch", "bench");
        request.sources.insert(sources[0].0.clone(), format!("{base_module}{body}"));
        let line = request.to_line();
        let start = Instant::now();
        let replies = engine.handle_line((), &line);
        let elapsed = start.elapsed().as_secs_f64();
        let value = response_value(&replies);
        let changed = value["result"]["changed"].as_array().expect("changed list");
        assert_eq!(changed.len(), 1, "each patch changes exactly the probe");
        assert_eq!(changed[0].as_str(), Some("__bench_probe"));
        if elapsed < patch_s {
            patch_s = elapsed;
            reexecuted =
                value["result"]["reexecuted"].as_u64().expect("reexecuted count") as usize;
            affected = value["result"]["affected"].as_array().expect("affected list").len();
        }
    }

    // Restore: a *separate* durable daemon (journaled appends would tax
    // the timed patch round-trips above) snapshots the same resident
    // corpus, then crash-safe startup is timed from the snapshot files.
    eprintln!("restore runs...");
    let state_dir = std::env::temp_dir().join(format!("rid-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let durable = || ServerConfig {
        state_dir: Some(state_dir.clone()),
        ..ServerConfig::default()
    };
    let (snapshot_s, snapshot_bytes) = {
        let mut durable_engine: Engine<()> = Engine::recover(durable()).expect("state dir usable");
        let mut register = Request::new(1, "register", "bench");
        register.sources = sources.iter().cloned().collect();
        response_value(&durable_engine.handle_line((), &register.to_line()));
        response_value(&durable_engine.handle_line((), &Request::new(2, "analyze", "bench").to_line()));
        let line = Request::new(3, "snapshot", "bench").to_line();
        let start = Instant::now();
        let replies = durable_engine.handle_line((), &line);
        let snapshot_s = start.elapsed().as_secs_f64();
        let value = response_value(&replies);
        let bytes = value["result"]["bytes"].as_u64().expect("snapshot bytes") as usize;
        // Dropped without shutdown: the crash the restore recovers from.
        (snapshot_s, bytes)
    };
    let mut restore_s = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let mut restored: Engine<()> = Engine::recover(durable()).expect("restore succeeds");
        restore_s = restore_s.min(start.elapsed().as_secs_f64());
        let stats = response_value(&restored.handle_line((), &Request::new(4, "stats", "").to_line()));
        assert_eq!(
            stats["result"]["projects"]["bench"]["functions"].as_u64(),
            Some(functions as u64),
            "restore must bring back the whole corpus"
        );
    }
    let _ = std::fs::remove_dir_all(&state_dir);

    let patch_speedup = cold_s / patch_s.max(1e-9);
    let warm_speedup = cold_s / warm_s.max(1e-9);
    let restore_speedup = cold_s / restore_s.max(1e-9);
    println!(
        "serve latency (scale {scale}, {functions} functions, min of {} runs):",
        iters.max(1)
    );
    println!("  cold  analyze : {cold_s:.3}s   (one-shot parse + analyze)");
    println!("  daemon analyze: {warm_s:.3}s   ({warm_speedup:.1}x; cache-warm, no re-parse)");
    println!(
        "  daemon patch  : {patch_s:.3}s   ({patch_speedup:.1}x; {affected} affected, \
         {reexecuted} re-executed)"
    );
    println!(
        "  restore       : {restore_s:.3}s   ({restore_speedup:.1}x vs cold; \
         snapshot {snapshot_s:.3}s, {snapshot_bytes} bytes)"
    );

    eprintln!("open-loop runs...");
    let open_loop = open_loop_phase(&sources, conns, rate, requests);

    let record = serde_json::json!({
        "scale": scale,
        "functions": functions,
        "iters": iters,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "patch_s": patch_s,
        "warm_speedup_vs_cold": warm_speedup,
        "patch_speedup_vs_cold": patch_speedup,
        "patch_affected": affected,
        "patch_reexecuted": reexecuted,
        "snapshot_s": snapshot_s,
        "snapshot_bytes": snapshot_bytes,
        "restore_s": restore_s,
        "restore_speedup_vs_cold": restore_speedup,
        "open_loop": open_loop,
    });

    // Patch the record into the baseline the `perf` binary maintains;
    // when the file does not exist yet (serve_bench run first), write a
    // minimal skeleton holding just the serve record.
    let baseline = std::fs::read_to_string(&out)
        .ok()
        .and_then(|text| serde_json::from_str::<Value>(&text).ok());
    let updated = match baseline {
        Some(Value::Map(mut pairs)) => {
            if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == "serve") {
                slot.1 = record;
            } else {
                pairs.push(("serve".to_owned(), record));
            }
            if let Some(schema) = pairs.iter_mut().find(|(k, _)| k == "schema") {
                schema.1 = Value::Str("rid-bench-perf/v9".to_owned());
            }
            Value::Map(pairs)
        }
        _ => serde_json::json!({ "schema": "rid-bench-perf/v9", "serve": record }),
    };
    std::fs::write(&out, serde_json::to_string(&updated).expect("baseline serializes"))
        .expect("baseline written");
    eprintln!("wrote serve record to {out}");
}
