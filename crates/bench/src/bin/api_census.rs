//! Regenerates the **§3.1 census**: how many refcount-API sets a
//! syntactic antonym search discovers, how many functions they comprise,
//! and what fraction of modules call them directly or indirectly.
//!
//! Paper: 800+ sets / 1600+ functions; 10987 of 11755 files (93.5%)
//! touch them.
//!
//! ```text
//! cargo run -p rid-bench --release --bin api_census [-- --seed N] [--paper-shape]
//! ```

use std::collections::HashSet;

use rid_bench::format_table;
use rid_core::mining::{all_function_names, discover_api_pairs, modules_touching};
use rid_corpus::kernel::{generate_kernel, KernelConfig};

#[path = "../args.rs"]
mod args;

fn main() {
    let seed: u64 = args::flag("seed").unwrap_or(2016);
    let mut config = KernelConfig::evaluation(seed);
    if args::has_flag("paper-shape") {
        config.filler_modules = 2200;
    }
    eprintln!("generating kernel corpus (seed {seed})...");
    let corpus = generate_kernel(&config);
    let modules: Vec<rid_ir::Module> = corpus
        .sources
        .iter()
        .map(|s| rid_frontend::parse_module(s).expect("corpus parses"))
        .collect();
    let mut program = rid_ir::Program::new();
    for module in &modules {
        program.link(module.clone()).expect("corpus links");
    }

    eprintln!("mining antonym-named API pairs over {} names...", program.function_count());
    let names = all_function_names(&program);
    let pairs = discover_api_pairs(names.iter().map(String::as_str));
    let api_functions: HashSet<&str> = pairs
        .iter()
        .flat_map(|p| [p.inc.as_str(), p.dec.as_str()])
        .collect();
    let (touching, total) = modules_touching(&modules, &api_functions);

    println!("§3.1: syntactic refcount-API census");
    println!();
    let rows = vec![
        vec!["API sets discovered".to_owned(), pairs.len().to_string(), "800+".to_owned()],
        vec![
            "API functions".to_owned(),
            api_functions.len().to_string(),
            "1600+".to_owned(),
        ],
        vec![
            "modules touching them (direct or indirect)".to_owned(),
            format!("{touching} / {total}"),
            "10987 / 11755".to_owned(),
        ],
        vec![
            "touching fraction".to_owned(),
            format!("{:.1}%", 100.0 * touching as f64 / total.max(1) as f64),
            "93.5%".to_owned(),
        ],
    ];
    println!("{}", format_table(&["metric", "measured", "paper"], &rows));

    // A sample of the discovered inventory.
    println!("\nsample of discovered pairs:");
    for pair in pairs.iter().take(8) {
        println!("  {} / {}   (verbs {}-{})", pair.inc, pair.dec, pair.verbs.0, pair.verbs.1);
    }
    let verb_kinds: HashSet<&str> = pairs.iter().map(|p| p.verbs.0.as_str()).collect();
    println!("antonym families in use: {verb_kinds:?}");
}
