//! Regenerates the **§6.2 headline**: "RID has found 83 new bugs out of
//! 355 reports in Linux involving DPM", plus the true/false-positive
//! breakdown of §6.4, measured against the synthetic kernel's ground
//! truth.
//!
//! ```text
//! cargo run -p rid-bench --release --bin headline [-- --seed N] [--threads N]
//! ```

use rid_bench::{evaluate_kernel, format_table, run_rid_on_kernel};
use rid_core::AnalysisOptions;
use rid_corpus::kernel::{generate_kernel, KernelConfig, SeededBug};

#[path = "../args.rs"]
mod args;

fn main() {
    let seed: u64 = args::flag("seed").unwrap_or(2016);
    let threads: usize = args::flag("threads").unwrap_or(1);
    let config = KernelConfig::evaluation(seed);

    eprintln!("generating kernel corpus (seed {seed})...");
    let corpus = generate_kernel(&config);
    eprintln!(
        "{} modules, {} functions, {} seeded bugs, {} FP idioms",
        corpus.sources.len(),
        corpus.function_count,
        corpus.bugs.len(),
        corpus.expected_false_positives.len()
    );

    let options = AnalysisOptions { threads, ..Default::default() };
    eprintln!("running RID...");
    let result = run_rid_on_kernel(&corpus, &options);
    let numbers = evaluate_kernel(&corpus, &result);

    println!("§6.2 headline: DPM bug reports vs confirmed bugs");
    println!();
    let rows = vec![
        vec!["total IPP reports".to_owned(), numbers.reports.to_string(), "355".to_owned()],
        vec![
            "confirmed (reports on real seeded bugs)".to_owned(),
            numbers.confirmed.to_string(),
            "83".to_owned(),
        ],
        vec![
            "false positives (§6.4 idioms)".to_owned(),
            numbers.false_positives.to_string(),
            "272".to_owned(),
        ],
        vec![
            "reports on clean functions (should be ~0)".to_owned(),
            numbers.unexpected.to_string(),
            "-".to_owned(),
        ],
    ];
    println!("{}", format_table(&["metric", "measured", "paper"], &rows));

    println!(
        "precision: {:.1}% (paper: {:.1}%)",
        100.0 * numbers.confirmed as f64 / numbers.reports.max(1) as f64,
        100.0 * 83.0 / 355.0
    );
    println!();
    println!("ground-truth recall (not measurable in the paper):");
    println!(
        "  detectable bugs found  : {} / {}",
        numbers.detected_bugs,
        numbers.detected_bugs + numbers.missed_detectable
    );
    println!(
        "  out-of-power bugs missed as expected (Fig. 10, loop-only): {} / {}",
        numbers.correctly_missed,
        corpus.missed_bug_functions().count()
    );

    // Bug-class breakdown (the paper's two dominant classes, §6.2).
    let count_kind = |kind: SeededBug| corpus.bugs.iter().filter(|b| b.kind == kind).count();
    println!();
    println!("seeded bug classes:");
    println!(
        "  API misunderstanding (Fig. 8)   : {}",
        count_kind(SeededBug::MissingPutOnGetError)
    );
    println!(
        "  improper error handling (Fig. 9): {}",
        count_kind(SeededBug::MissingPutOnOpError)
    );
    println!("  double put                      : {}", count_kind(SeededBug::DoublePut));
    println!(
        "  function-pointer hidden (Fig.10): {}",
        count_kind(SeededBug::IrqHandlerStyle)
    );
    println!("  loop-only (§5.4)                : {}", count_kind(SeededBug::LoopOnly));

    println!();
    println!(
        "analysis: {} functions total, {} analyzed, {} paths, {} states",
        result.stats.functions_total,
        result.stats.functions_analyzed,
        result.stats.paths_enumerated,
        result.stats.states_explored
    );
    println!(
        "time: classify {:?}, analyze {:?}",
        result.stats.classify_time, result.stats.analyze_time
    );
}
