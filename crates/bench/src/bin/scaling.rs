//! `scaling` — the CI gate for "parallelism pays".
//!
//! Measures the work-stealing scheduler at 1 and 2 workers on the seeded
//! kernel corpus and **fails (exit 1)** if the 2-worker run is slower
//! than the 1-worker run beyond the measured noise floor — but only on
//! hosts that actually have 2+ CPUs. On a single-core runner the
//! comparison proves nothing, so the binary prints the numbers, says so,
//! and exits 0 (the same honesty rule as `scaling_asserted` in the
//! `BENCH_perf.json` sweeps).
//!
//! The noise floor is measured, not guessed: the 1-worker configuration
//! runs `--iters` times and the relative spread `(max - min) / min` of
//! those samples is the floor (plus a fixed 5% margin for scheduler
//! overhead on tiny corpora). A 2-worker minimum within
//! `1-worker minimum × (1 + floor + margin)` passes.
//!
//! A determinism spot-check rides along: one `--processes 2` sharded run
//! must reproduce the sequential reports exactly (cheap insurance that
//! the multi-process path stays byte-identical on every CI host shape).
//!
//! ```text
//! cargo run -p rid-bench --release --bin scaling -- \
//!     [--seed N] [--scale F] [--iters N]
//! ```

use rid_core::{AnalysisOptions, FaultPlan};
use rid_corpus::kernel::{generate_kernel, KernelConfig};

#[path = "../args.rs"]
mod args;

/// Analyze wall-clock samples for one worker count.
fn samples(program: &rid_ir::Program, threads: usize, iters: usize) -> Vec<f64> {
    let options = AnalysisOptions { threads, ..Default::default() };
    (0..iters.max(2))
        .map(|_| {
            rid_core::analyze_program(program, &rid_core::apis::linux_dpm_apis(), &options)
                .stats
                .analyze_time
                .as_secs_f64()
        })
        .collect()
}

fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

fn main() {
    // The sharded determinism check re-execs this binary as workers.
    rid_core::maybe_run_worker();
    let seed: u64 = args::flag("seed").unwrap_or(2016);
    let scale: f64 = args::flag("scale").unwrap_or(0.5);
    let iters: usize = args::flag("iters").unwrap_or(5);
    let host_cpus =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);

    let config = KernelConfig::evaluation(seed).scaled(scale);
    eprintln!("scale {scale}: generating...");
    let corpus = generate_kernel(&config);
    let program = rid_frontend::parse_program(corpus.sources.iter().map(String::as_str))
        .expect("corpus must parse");

    // Interleave 1- and 2-worker samples so slow drift (thermal, noisy
    // neighbors) lands on both sides of the comparison equally.
    let mut one = Vec::new();
    let mut two = Vec::new();
    for _ in 0..iters.max(2) {
        one.extend(samples(&program, 1, 1));
        two.extend(samples(&program, 2, 1));
    }
    let one_min = min(&one);
    let one_max = one.iter().copied().fold(0.0f64, f64::max);
    let two_min = min(&two);
    let noise = (one_max - one_min) / one_min.max(1e-9);
    let margin = 0.05;
    let bound = one_min * (1.0 + noise + margin);

    println!(
        "scaling: 1 worker min {one_min:.3}s (noise floor {:.1}%), 2 workers min {two_min:.3}s \
         ({:.2}x), {host_cpus} host cpu(s)",
        noise * 100.0,
        one_min / two_min.max(1e-9),
    );

    // Determinism spot-check: a 2-process sharded run must reproduce the
    // sequential reports exactly, whatever the host shape.
    let reference = rid_core::analyze_program(
        &program,
        &rid_core::apis::linux_dpm_apis(),
        &AnalysisOptions::default(),
    );
    let sharded = rid_core::analyze_processes(
        &corpus.sources,
        &rid_core::apis::linux_dpm_apis(),
        &AnalysisOptions::default(),
        &FaultPlan::none(),
        2,
        None,
    )
    .expect("sharded analysis runs");
    assert!(
        sharded.reports == reference.reports,
        "--processes 2 reports diverged from sequential"
    );
    println!("determinism: --processes 2 reports identical to sequential");

    if host_cpus < 2 {
        println!(
            "host has {host_cpus} cpu(s): 2-worker comparison not asserted (nothing to prove \
             on a single core)"
        );
        return;
    }
    if two_min > bound {
        eprintln!(
            "FAIL: 2 workers ({two_min:.3}s) slower than 1 worker ({one_min:.3}s) beyond the \
             noise floor (bound {bound:.3}s = min x (1 + {:.1}% noise + {:.0}% margin))",
            noise * 100.0,
            margin * 100.0,
        );
        std::process::exit(1);
    }
    println!("PASS: 2 workers within bound {bound:.3}s");
}
