//! `profile` — where does the analysis spend its time?
//!
//! Runs the seeded kernel corpus once with rid-obs tracing enabled, then
//! aggregates the drained trace into three tables:
//!
//! 1. **hottest functions** — per-function `exec` span totals with solver
//!    and enumeration time attributed as children (the naming convention
//!    of [`rid_obs::self_times`]), ranked by self time;
//! 2. **path explosion** — the worst `enumerate` offenders by structural
//!    path count (the payload of the enumerate span);
//! 3. the full **metrics registry** built from the run's
//!    [`rid_core::AnalysisStats`] plus per-kind trace durations.
//!
//! ```text
//! cargo run -p rid-bench --release --bin profile -- \
//!     [--seed N] [--threads N] [--scale F] [--top N] [--trace-file path.jsonl]
//! ```
//!
//! With `--trace-file <path.jsonl>` the binary profiles a *daemon*
//! trace instead of running its own corpus: the JSONL flushed by
//! `rid analyze --trace` (the `.jsonl` sidecar) or a shard worker's
//! flush file is parsed back into events and aggregated over the serve
//! span kinds — per-request `serve` spans plus the durability kinds
//! (`snapshot`, `restore`, `journal-replay`).
//!
//! Unlike `perf` this binary makes no timing claims and writes no
//! baseline — it is the interactive "why is this slow?" entry point
//! (see README, "Profiling a run"). For machine-readable artifacts use
//! `rid analyze --trace/--metrics`.

use rid_bench::format_table;
use rid_core::AnalysisOptions;
use rid_corpus::kernel::{generate_kernel, KernelConfig};
use rid_obs::SpanKind;

#[path = "../args.rs"]
mod args;

fn ms(ns: u64) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

/// `--trace-file` mode: aggregate a flushed trace over the serve span
/// kinds. Requests (`serve` spans, named `<op>:<project>`) rank by
/// total time; the durability kinds get one per-kind summary row each.
fn profile_trace_file(path: &str, top: usize) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--trace-file: {path}: {e}"));
    let trace = rid_obs::Trace { events: rid_core::parse_trace_jsonl(&text), dropped: 0 };
    assert!(!trace.events.is_empty(), "--trace-file: {path}: no recognizable trace events");
    println!("profile of {path}: {} trace event(s)", trace.events.len());
    println!();

    let requests = rid_obs::self_times(&trace, SpanKind::Serve, &[]);
    if !requests.is_empty() {
        let shown = requests.len().min(top);
        println!("daemon requests by total time ({shown} of {}):", requests.len());
        let rows: Vec<Vec<String>> = requests
            .iter()
            .take(top)
            .map(|p| {
                vec![
                    p.name.clone(),
                    p.count.to_string(),
                    ms(p.total_ns),
                    ms(p.total_ns / p.count.max(1)),
                ]
            })
            .collect();
        println!("{}", format_table(&["request", "count", "total", "mean"], &rows));
        println!();
    }

    // Durability kinds: snapshot/restore carry bytes in the value
    // payload, journal replay carries the replayed-entry count.
    let durability = [SpanKind::Snapshot, SpanKind::Restore, SpanKind::JournalReplay];
    let rows: Vec<Vec<String>> = durability
        .into_iter()
        .filter_map(|kind| {
            let spans: Vec<_> =
                trace.events.iter().filter(|e| e.kind == kind && !e.instant).collect();
            if spans.is_empty() {
                return None;
            }
            let total: u64 = spans.iter().map(|e| e.dur_ns).sum();
            let max = spans.iter().map(|e| e.dur_ns).max().unwrap_or(0);
            let value: u64 = spans.iter().map(|e| e.value).sum();
            Some(vec![
                kind.label().to_owned(),
                spans.len().to_string(),
                ms(total),
                ms(max),
                value.to_string(),
            ])
        })
        .collect();
    if !rows.is_empty() {
        println!("durability phases:");
        println!(
            "{}",
            format_table(&["phase", "count", "total", "max", "bytes/entries"], &rows)
        );
        println!();
    }

    let mut registry = rid_obs::Registry::new();
    rid_core::record_trace(&mut registry, &trace);
    println!("metrics:");
    println!("{}", registry.render_table());
}

fn main() {
    let seed: u64 = args::flag("seed").unwrap_or(2016);
    let threads: usize = args::flag("threads").unwrap_or(1);
    let scale: f64 = args::flag("scale").unwrap_or(0.25);
    let top: usize = args::flag("top").unwrap_or(15);
    if let Some(path) = args::flag::<String>("trace-file") {
        return profile_trace_file(&path, top);
    }

    let config = KernelConfig::evaluation(seed).scaled(scale);
    eprintln!("scale {scale}: generating...");
    let corpus = generate_kernel(&config);

    // Enable before parsing so the frontend's `lower` spans are captured.
    rid_obs::trace::enable(rid_obs::trace::DEFAULT_CAPACITY);
    let program = rid_frontend::parse_program(corpus.sources.iter().map(String::as_str))
        .expect("corpus must parse");
    let options = AnalysisOptions { threads, ..Default::default() };
    let result =
        rid_core::analyze_program(&program, &rid_core::apis::linux_dpm_apis(), &options);
    rid_obs::trace::disable();
    let trace = rid_obs::drain();

    println!(
        "profile: {} function(s), {} analyzed, {} report(s); {} trace event(s) ({} dropped)",
        program.function_count(),
        result.stats.functions_analyzed,
        result.reports.len(),
        trace.events.len(),
        trace.dropped
    );
    println!();

    // 1. Hottest functions by self time. Solver and enumeration spans
    //    carry the enclosing function's name, so per-name subtraction
    //    yields the executor's own share.
    let profiles =
        rid_obs::self_times(&trace, SpanKind::Exec, &[SpanKind::Solve, SpanKind::Enumerate]);
    let shown = profiles.len().min(top);
    println!("hottest functions by self time ({} of {}):", shown, profiles.len());
    let rows: Vec<Vec<String>> = profiles
        .iter()
        .take(top)
        .map(|p| {
            vec![
                p.name.clone(),
                p.count.to_string(),
                ms(p.total_ns),
                ms(p.child_ns),
                ms(p.self_ns),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["function", "execs", "total", "solve+enum", "self"], &rows)
    );
    println!();

    // 2. Path explosion: largest structural path count per function.
    let explosions = rid_obs::max_value_by_name(&trace, SpanKind::Enumerate);
    let shown = explosions.len().min(top);
    println!("worst path explosion ({} of {}):", shown, explosions.len());
    let rows: Vec<Vec<String>> = explosions
        .iter()
        .take(top)
        .map(|(name, paths)| vec![name.clone(), paths.to_string()])
        .collect();
    println!("{}", format_table(&["function", "paths"], &rows));
    println!();

    // 3. Scheduler balance: what each worker did and what it cost to
    //    keep it fed (empty on 1-thread runs — the sequential fast path
    //    never spins workers up).
    if !result.stats.worker_profiles.is_empty() {
        println!("scheduler workers ({} thread(s)):", threads);
        let rows: Vec<Vec<String>> = result
            .stats
            .worker_profiles
            .iter()
            .map(|p| {
                let mean_batch = if p.steals > 0 {
                    format!("{:.1}", p.steal_batch.sum as f64 / p.steals as f64)
                } else {
                    "-".to_owned()
                };
                vec![
                    format!("w{}", p.worker),
                    p.comps.to_string(),
                    p.steals.to_string(),
                    mean_batch,
                    p.scan_misses.to_string(),
                    ms(p.idle_wait_ns.sum),
                    ms(p.idle_wait_ns.max),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                &["worker", "comps", "steals", "mean batch", "scan misses", "idle", "idle max"],
                &rows
            )
        );
        println!();
    }

    // 4. The full registry, stats + per-kind trace histograms.
    let mut registry = rid_core::registry_from_result(&result);
    rid_core::record_trace(&mut registry, &trace);
    println!("metrics:");
    println!("{}", registry.render_table());
}
