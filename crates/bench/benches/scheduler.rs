//! Criterion benchmark for the dependency-driven work-stealing
//! scheduler on its worst case: a **wide, flat** call graph — thousands
//! of independent leaf functions, each a trivial get/put pair. Per-task
//! work is tiny, so the measurement is dominated by scheduler overhead
//! (seeding, deque traffic, stealing, counter decrements), which is
//! exactly what this bench pins down: 1-thread dispatch cost vs the
//! 8-thread work-stealing path on the same graph.

use std::fmt::Write as _;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rid_core::apis::linux_dpm_apis;
use rid_core::{analyze_program, AnalysisOptions};
use rid_ir::Program;

/// `leaves` independent functions plus one root per 100 leaves (the
/// roots keep the dependency counters honest without adding depth).
fn wide_flat_program(leaves: usize) -> Program {
    let mut src = String::from(
        "module sched;\nextern fn pm_runtime_get_sync;\nextern fn pm_runtime_put;\n\n",
    );
    for i in 0..leaves {
        let _ = write!(
            src,
            "fn leaf{i}(dev) {{\n    pm_runtime_get_sync(dev);\n    \
             pm_runtime_put(dev);\n    return 0;\n}}\n\n"
        );
    }
    for (r, chunk) in (0..leaves).collect::<Vec<_>>().chunks(100).enumerate() {
        let _ = writeln!(src, "fn root{r}(dev) {{");
        for i in chunk {
            let _ = writeln!(src, "    leaf{i}(dev);");
        }
        src.push_str("    return 0;\n}\n\n");
    }
    rid_frontend::parse_program([src.as_str()]).expect("synthetic corpus parses")
}

fn bench_scheduler(c: &mut Criterion) {
    let program = wide_flat_program(10_000);
    let apis = linux_dpm_apis();

    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);

    for threads in [1usize, 8] {
        let options = AnalysisOptions { threads, ..Default::default() };
        group.bench_function(&format!("wide_flat_10k_{threads}t"), |b| {
            b.iter(|| analyze_program(black_box(&program), &apis, &options))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
