//! Criterion micro-benchmarks for the constraint engine (the Z3
//! substitute): satisfiability checks, disequality splitting, projection.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rid_ir::Pred;
use rid_solver::{project, Conj, Lit, Term, Var};

fn chain_conj(n: usize) -> Conj {
    // v0 < v1 < ... < vn, v0 >= 0, vn <= 10n — a satisfiable chain.
    let mut lits = Vec::new();
    for i in 0..n {
        lits.push(Lit::new(
            Pred::Lt,
            Term::var(Var::local(i as u32)),
            Term::var(Var::local(i as u32 + 1)),
        ));
    }
    lits.push(Lit::new(Pred::Ge, Term::var(Var::local(0)), Term::int(0)));
    lits.push(Lit::new(
        Pred::Le,
        Term::var(Var::local(n as u32)),
        Term::int(10 * n as i64),
    ));
    Conj::from_lits(lits)
}

fn unsat_chain(n: usize) -> Conj {
    let mut c = chain_conj(n);
    c.push(Lit::new(
        Pred::Lt,
        Term::var(Var::local(n as u32)),
        Term::var(Var::local(0)),
    ));
    c
}

fn diseq_conj(n: usize) -> Conj {
    // 0 <= v <= n with all interior values excluded — forces splitting.
    let v = Term::var(Var::local(0));
    let mut lits = vec![
        Lit::new(Pred::Ge, v.clone(), Term::int(0)),
        Lit::new(Pred::Le, v.clone(), Term::int(n as i64)),
    ];
    for k in 1..n as i64 {
        lits.push(Lit::new(Pred::Ne, v.clone(), Term::int(k)));
    }
    Conj::from_lits(lits)
}

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/sat");
    for n in [4usize, 16, 32] {
        let sat = chain_conj(n);
        let unsat = unsat_chain(n);
        group.bench_function(&format!("chain_sat_{n}"), |b| {
            b.iter(|| black_box(&sat).is_sat())
        });
        group.bench_function(&format!("chain_unsat_{n}"), |b| {
            b.iter(|| black_box(&unsat).is_sat())
        });
    }
    let diseqs = diseq_conj(8);
    group.bench_function("diseq_split_8", |b| b.iter(|| black_box(&diseqs).is_sat()));
    group.finish();
}

fn bench_project(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/project");
    for n in [8usize, 32] {
        // Chain through locals ending at the return slot; projection must
        // carry the transitive bound onto [0].
        let mut lits = Vec::new();
        for i in 0..n {
            lits.push(Lit::new(
                Pred::Le,
                Term::var(Var::local(i as u32)),
                Term::var(Var::local(i as u32 + 1)),
            ));
        }
        lits.push(Lit::new(Pred::Ge, Term::var(Var::local(0)), Term::int(1)));
        lits.push(Lit::new(
            Pred::Eq,
            Term::var(Var::ret()),
            Term::var(Var::local(n as u32)),
        ));
        let conj = Conj::from_lits(lits);
        group.bench_function(&format!("eliminate_{n}_locals"), |b| {
            b.iter(|| project(black_box(&conj), Term::is_external))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sat, bench_project);
criterion_main!(benches);
