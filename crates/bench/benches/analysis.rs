//! Criterion benchmarks for the per-function analysis stages: path
//! enumeration, symbolic execution + summary calculation, and IPP
//! checking (the three steps of Figure 4).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rid_core::apis::linux_dpm_apis;
use rid_core::{check_ipps, enumerate_paths, summarize_paths, PathLimits};
use rid_solver::SatOptions;

const FIGURE9_WRAPPER: &str = r#"module usb;
fn usb_autopm_get_interface(intf) {
    let status = pm_runtime_get_sync(intf.dev);
    if (status < 0) {
        pm_runtime_put_sync(intf.dev);
    }
    if (status > 0) {
        status = 0;
    }
    return status;
}"#;

/// A branchy driver function (2^6 structural paths).
fn branchy_source() -> String {
    let mut body = String::from("module bench;\nfn branchy(dev) {\n");
    body.push_str("    pm_runtime_get_sync(dev);\n");
    for i in 0..6 {
        body.push_str(&format!(
            "    let c{i} = probe{i}(dev);\n    if (c{i} < 0) {{ log{i}(dev); }}\n"
        ));
    }
    body.push_str("    pm_runtime_put(dev);\n    return 0;\n}\n");
    body
}

fn bench_enumeration(c: &mut Criterion) {
    let source = branchy_source();
    let module = rid_frontend::parse_module(&source).unwrap();
    let func = module.function("branchy").unwrap().clone();
    let limits = PathLimits::default();
    c.bench_function("analysis/enumerate_paths_2^6", |b| {
        b.iter(|| enumerate_paths(black_box(&func), &limits))
    });
}

fn bench_summarize(c: &mut Criterion) {
    let apis = linux_dpm_apis();
    let limits = PathLimits::default();
    let sat = SatOptions::default();

    let module = rid_frontend::parse_module(FIGURE9_WRAPPER).unwrap();
    let wrapper = module.function("usb_autopm_get_interface").unwrap().clone();
    c.bench_function("analysis/summarize_fig9_wrapper", |b| {
        b.iter(|| summarize_paths(black_box(&wrapper), &apis, &limits, sat))
    });

    let source = branchy_source();
    let module = rid_frontend::parse_module(&source).unwrap();
    let branchy = module.function("branchy").unwrap().clone();
    c.bench_function("analysis/summarize_branchy", |b| {
        b.iter(|| summarize_paths(black_box(&branchy), &apis, &limits, sat))
    });
}

fn bench_ipp_check(c: &mut Criterion) {
    let apis = linux_dpm_apis();
    let limits = PathLimits::default();
    let sat = SatOptions::default();
    let source = branchy_source();
    let module = rid_frontend::parse_module(&source).unwrap();
    let branchy = module.function("branchy").unwrap().clone();
    let outcome = summarize_paths(&branchy, &apis, &limits, sat);
    c.bench_function("analysis/check_ipps_branchy", |b| {
        b.iter(|| check_ipps("branchy", black_box(&outcome.path_entries), sat))
    });
}

criterion_group!(benches, bench_enumeration, bench_summarize, bench_ipp_check);
criterion_main!(benches);
