//! Criterion benchmark for the execution-tree optimization: the same
//! function summarized in per-path reference mode vs shared-prefix tree
//! mode (incremental solver + memo cache). The branchy shape (k sequential
//! two-way branches ⇒ 2^k structural paths over ~k distinct blocks) is the
//! best case for prefix sharing and the shape kernel drivers actually
//! have (a chain of `if (err) goto out;` checks).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rid_core::apis::linux_dpm_apis;
use rid_core::budget::BudgetMeter;
use rid_core::{summarize_paths_mode, ExecMode, PathLimits};
use rid_solver::SatOptions;

/// A driver-shaped function with `k` sequential error checks.
fn branchy_source(k: usize) -> String {
    let mut body = String::from("module bench;\nfn branchy(dev) {\n");
    body.push_str("    assume dev != null;\n    pm_runtime_get_sync(dev);\n");
    for i in 0..k {
        body.push_str(&format!(
            "    let c{i} = probe{i}(dev);\n    if (c{i} < 0) {{ log{i}(dev); }}\n"
        ));
    }
    body.push_str("    pm_runtime_put(dev);\n    return 0;\n}\n");
    body
}

fn bench_modes(c: &mut Criterion) {
    let source = branchy_source(6);
    let module = rid_frontend::parse_module(&source).unwrap();
    let func = module.function("branchy").unwrap().clone();
    let db = linux_dpm_apis();
    let limits = PathLimits::default();
    let meter = BudgetMeter::unlimited();

    let mut group = c.benchmark_group("exec_tree");
    group.bench_function("summarize_2^6_per_path", |b| {
        b.iter(|| {
            black_box(summarize_paths_mode(
                black_box(&func),
                &db,
                &limits,
                SatOptions::default(),
                &meter,
                None,
                ExecMode::PerPath,
            ))
        });
    });
    group.bench_function("summarize_2^6_tree", |b| {
        b.iter(|| {
            black_box(summarize_paths_mode(
                black_box(&func),
                &db,
                &limits,
                SatOptions::default(),
                &meter,
                None,
                ExecMode::Tree,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
