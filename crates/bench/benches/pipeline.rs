//! Criterion benchmarks for the end-to-end pipeline on seeded corpora:
//! parse → classify → analyze, sequential vs parallel, selective on/off.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rid_core::apis::linux_dpm_apis;
use rid_core::{analyze_program, AnalysisOptions, CallGraph};
use rid_corpus::kernel::{generate_kernel, KernelConfig};

fn bench_pipeline(c: &mut Criterion) {
    let corpus = generate_kernel(&KernelConfig::tiny(2016));
    let sources: Vec<&str> = corpus.sources.iter().map(String::as_str).collect();
    let program = rid_frontend::parse_program(sources.iter().copied()).unwrap();
    let apis = linux_dpm_apis();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);

    group.bench_function("parse_tiny_kernel", |b| {
        b.iter(|| rid_frontend::parse_program(black_box(sources.iter().copied())).unwrap())
    });

    group.bench_function("classify_tiny_kernel", |b| {
        b.iter(|| {
            let graph = CallGraph::build(black_box(&program));
            rid_core::classify::classify(&program, &graph, &apis)
        })
    });

    let selective = AnalysisOptions::default();
    group.bench_function("analyze_tiny_kernel_selective", |b| {
        b.iter(|| analyze_program(black_box(&program), &apis, &selective))
    });

    let exhaustive = AnalysisOptions { selective: false, ..Default::default() };
    group.bench_function("analyze_tiny_kernel_exhaustive", |b| {
        b.iter(|| analyze_program(black_box(&program), &apis, &exhaustive))
    });

    let parallel = AnalysisOptions { threads: 4, ..Default::default() };
    group.bench_function("analyze_tiny_kernel_4threads", |b| {
        b.iter(|| analyze_program(black_box(&program), &apis, &parallel))
    });

    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let corpus = generate_kernel(&KernelConfig::tiny(2016));
    let sources: Vec<&str> = corpus.sources.iter().map(String::as_str).collect();
    let program = rid_frontend::parse_program(sources.iter().copied()).unwrap();
    let apis = linux_dpm_apis();

    let mut group = c.benchmark_group("extensions");
    group.sample_size(20);

    // §3.1 mining over the corpus name space.
    group.bench_function("mine_api_pairs", |b| {
        b.iter(|| {
            let names = rid_core::mining::all_function_names(black_box(&program));
            rid_core::mining::discover_api_pairs(names.iter().map(String::as_str))
        })
    });

    // Incremental recheck of one function vs a full re-analysis.
    let options = AnalysisOptions::default();
    let previous = analyze_program(&program, &apis, &options);
    let changed = corpus
        .detectable_bug_functions()
        .next()
        .expect("corpus seeds at least one bug")
        .to_owned();
    group.bench_function("incremental_recheck_one_fn", |b| {
        b.iter(|| {
            rid_core::incremental::reanalyze(
                black_box(&program),
                &apis,
                &previous,
                &[changed.as_str()],
                &options,
            )
        })
    });
    group.bench_function("full_reanalysis_for_comparison", |b| {
        b.iter(|| analyze_program(black_box(&program), &apis, &options))
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_extensions);
criterion_main!(benches);
