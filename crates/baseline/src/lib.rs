//! # rid-baseline — a Cpychecker-style escape-rule checker
//!
//! The RID paper compares against Cpychecker (§6.6, Table 2), a rule-based
//! checker for Python/C code built on the *stronger* property of §2.1:
//!
//! > in any function, the change of a refcount must equal the number of
//! > references escaping the function (via the return value or
//! > reference-stealing APIs).
//!
//! This crate reimplements that rule on top of RID's own substrate (the
//! same IR, path engine and predefined summaries), preserving the two
//! behavioural traits the paper's comparison hinges on:
//!
//! 1. **No SSA.** Cpychecker predates per-path SSA reasoning; functions
//!    that assign the same variable more than once make it lose track.
//!    The baseline *bails out* on such functions — which is exactly why
//!    RID finds more bugs in Table 2 ("mainly because of the adoption of
//!    SSA form", §6.6).
//! 2. **The strict rule false-alarms on wrappers.** A function that
//!    intentionally changes a count for its caller (a `Py_INCREF` wrapper,
//!    common in kernel-style layering) violates the escape rule by
//!    design; Cpychecker needs manual GCC attributes to silence each one
//!    (§2.1). The baseline reports them all; callers can compare against
//!    RID, which reports none.
//!
//! Unlike RID, the rule needs **no path pair**: a consistent single-path
//! leak still violates it. That is the small Cpychecker-only column of
//! Table 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};

use rid_ir::{Function, Program};
use rid_core::paths::PathLimits;
use rid_core::summary::SummaryDb;
use rid_core::summarize_paths;
use rid_solver::{SatOptions, Term, VarKind};
use serde::{Deserialize, Serialize};

/// One escape-rule violation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineReport {
    /// Function violating the rule.
    pub function: String,
    /// The refcount with the unbalanced change.
    pub refcount: Term,
    /// Net change observed on some path.
    pub delta: i64,
    /// Change the escape rule expected (1 if the object escapes via the
    /// return value, 0 otherwise).
    pub expected: i64,
}

/// Result of running the baseline checker on a program.
#[derive(Clone, Debug, Default)]
pub struct BaselineResult {
    /// Violations, sorted by function then refcount.
    pub reports: Vec<BaselineReport>,
    /// Functions skipped because a variable is assigned more than once
    /// (the non-SSA bail-out).
    pub bailed_functions: Vec<String>,
    /// Functions actually checked.
    pub functions_checked: usize,
}

/// Whether the baseline can analyze `func` (single static assignment per
/// variable, the Cpychecker-era limitation).
#[must_use]
pub fn is_single_assignment(func: &Function) -> bool {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for (_, inst) in func.insts() {
        if let Some(dst) = inst.def() {
            let c = counts.entry(dst).or_insert(0);
            *c += 1;
            if *c > 1 {
                return false;
            }
        }
    }
    true
}

/// Checks one function against the escape rule.
///
/// Every feasible path subcase must change each refcount by exactly the
/// number of references escaping through the return value: `+1` for a
/// count keyed on `[0]` (the object is handed to the caller), `0` for
/// everything else (arguments and non-escaping locals).
#[must_use]
pub fn check_function(
    func: &Function,
    predefined: &SummaryDb,
    limits: &PathLimits,
    sat: SatOptions,
) -> Vec<BaselineReport> {
    let outcome = summarize_paths(func, predefined, limits, sat);
    let mut seen: BTreeMap<(String, Term), BaselineReport> = BTreeMap::new();
    for pe in &outcome.path_entries {
        for (rc, &delta) in &pe.entry.changes {
            let escapes =
                rc.root_var().is_some_and(|root| root.kind == VarKind::Ret);
            let expected = i64::from(escapes);
            if delta != expected {
                let key = (func.name().to_owned(), rc.clone());
                seen.entry(key).or_insert_with(|| BaselineReport {
                    function: func.name().to_owned(),
                    refcount: rc.clone(),
                    delta,
                    expected,
                });
            }
        }
    }
    seen.into_values().collect()
}

/// Runs the baseline checker over a whole program.
///
/// Functions with predefined summaries are skipped (they are the API
/// specification); multi-assignment functions are bailed on (trait 1 in
/// the crate docs).
#[must_use]
pub fn check_program(
    program: &Program,
    predefined: &SummaryDb,
    limits: &PathLimits,
    sat: SatOptions,
) -> BaselineResult {
    let mut result = BaselineResult::default();
    for func in program.functions() {
        if predefined.contains(func.name()) {
            continue;
        }
        if !is_single_assignment(func) {
            result.bailed_functions.push(func.name().to_owned());
            continue;
        }
        result.functions_checked += 1;
        result.reports.extend(check_function(func, predefined, limits, sat));
    }
    result.reports.sort_by(|a, b| {
        (&a.function, &a.refcount).cmp(&(&b.function, &b.refcount))
    });
    result
}

/// Convenience: parse RIL sources and run the baseline.
///
/// # Errors
///
/// Returns the frontend error when a source fails to parse or link.
pub fn check_sources<'a>(
    sources: impl IntoIterator<Item = &'a str>,
    predefined: &SummaryDb,
) -> Result<BaselineResult, rid_frontend::FrontendError> {
    let program = rid_frontend::parse_program(sources)?;
    Ok(check_program(&program, predefined, &PathLimits::default(), SatOptions::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rid_core::apis::python_c_apis;

    fn run(src: &str) -> BaselineResult {
        check_sources([src], &python_c_apis()).unwrap()
    }

    #[test]
    fn single_path_leak_is_reported() {
        // RID is silent here (no path pair); the escape rule is not.
        let result = run(r#"module m;
            fn cache(obj, table) {
                Py_INCREF(obj);
                store(table, obj);
                return 0;
            }"#);
        assert_eq!(result.reports.len(), 1);
        assert_eq!(result.reports[0].delta, 1);
        assert_eq!(result.reports[0].expected, 0);
    }

    #[test]
    fn error_path_leak_is_reported() {
        let result = run(r#"module m;
            fn make(arg) {
                let obj = PyList_New(0);
                if (obj == null) { return null; }
                let rc = setup(obj, arg);
                if (rc < 0) { return null; }
                return obj;
            }"#);
        assert!(!result.reports.is_empty());
        assert!(result.reports.iter().any(|r| r.expected == 0 && r.delta == 1));
    }

    #[test]
    fn balanced_function_is_clean() {
        let result = run(r#"module m;
            fn ok(arg) {
                let obj = PyList_New(0);
                if (obj == null) { return null; }
                let rc = setup(obj, arg);
                if (rc < 0) {
                    Py_DECREF(obj);
                    return null;
                }
                return obj;
            }"#);
        assert!(result.reports.is_empty(), "{:?}", result.reports);
        assert_eq!(result.functions_checked, 1);
    }

    #[test]
    fn reassignment_bails_out() {
        // The RidOnly class of Table 2: a real bug the baseline skips.
        let result = run(r#"module m;
            fn build(arg) {
                let st = 0;
                let obj = PyDict_New();
                if (obj == null) { return -1; }
                st = fill(obj, arg);
                if (st < 0) { return -1; }
                Py_DECREF(obj);
                return 0;
            }"#);
        assert!(result.reports.is_empty());
        assert_eq!(result.bailed_functions, vec!["build".to_owned()]);
    }

    #[test]
    fn wrapper_draws_false_alarm() {
        // §2.1: intentional wrappers violate the strict rule by design.
        let result = run(r#"module m;
            fn my_incref(obj) {
                Py_INCREF(obj);
                return;
            }"#);
        assert_eq!(result.reports.len(), 1);
    }

    #[test]
    fn returned_new_reference_is_expected() {
        // A function that allocates and returns the object satisfies the
        // rule: the +1 escapes with the return value.
        let result = run(r#"module m;
            fn fresh() {
                let obj = PyList_New(0);
                return obj;
            }"#);
        assert!(result.reports.is_empty(), "{:?}", result.reports);
    }

    #[test]
    fn ssa_detector() {
        let program = rid_frontend::parse_program([
            "module m; fn single(x) { let a = x; return a; } fn multi(x) { let a = x; a = x; return a; }",
        ])
        .unwrap();
        assert!(is_single_assignment(program.function("single").unwrap()));
        assert!(!is_single_assignment(program.function("multi").unwrap()));
    }
}
