//! Property-based round-trip coverage of the binary module codec over
//! the interned IR: randomly generated valid modules must survive
//! `encode → decode` exactly, the trusted fast path must agree with the
//! validated decoder, every truncation must fail loudly, and any buffer
//! the decoder accepts must re-encode byte-identically (the format is
//! canonical — one byte string per module list).

use proptest::prelude::*;
use rid_ir::{
    decode_modules, decode_modules_trusted, encode_modules, BasicBlock, BlockId, CodecError,
    Function, Inst, Module, Operand, Pred, Rvalue, Terminator,
};

/// Interned names of assorted lengths, including multi-byte UTF-8 —
/// the codec length-prefixes *bytes*, so a char-counting bug would
/// surface here as a truncation or BadUtf8 on valid input.
fn name() -> impl Strategy<Value = String> {
    prop_oneof![
        (0usize..32).prop_map(|i| format!("n{i}")),
        (0usize..8).prop_map(|i| format!("very_long_identifier_name_{i}_{}", "pad".repeat(i))),
        (0usize..6).prop_map(|i| format!("üñïçødé_名前_{i}")),
    ]
}

fn pred() -> impl Strategy<Value = Pred> {
    prop_oneof![
        Just(Pred::Eq),
        Just(Pred::Ne),
        Just(Pred::Lt),
        Just(Pred::Le),
        Just(Pred::Gt),
        Just(Pred::Ge),
    ]
}

fn operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        name().prop_map(Operand::var),
        any::<i64>().prop_map(Operand::Int),
        any::<bool>().prop_map(Operand::Bool),
        Just(Operand::Null),
        name().prop_map(|n| Operand::FuncRef(n.into())),
    ]
}

fn rvalue() -> impl Strategy<Value = Rvalue> {
    prop_oneof![
        operand().prop_map(Rvalue::Use),
        (name(), name()).prop_map(|(base, field)| Rvalue::field(base, field)),
        Just(Rvalue::Random),
        (pred(), operand(), operand()).prop_map(|(p, lhs, rhs)| Rvalue::Cmp { pred: p, lhs, rhs }),
        (name(), prop::collection::vec(operand(), 0..4))
            .prop_map(|(callee, args)| Rvalue::call(callee, args)),
    ]
}

fn inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (name(), rvalue()).prop_map(|(dst, rvalue)| Inst::Assign { dst: dst.into(), rvalue }),
        (name(), prop::collection::vec(operand(), 0..4))
            .prop_map(|(callee, args)| Inst::Call { callee: callee.into(), args }),
        (pred(), operand(), operand())
            .prop_map(|(p, lhs, rhs)| Inst::Assume { pred: p, lhs, rhs }),
        (name(), name(), operand()).prop_map(|(base, field, value)| Inst::FieldStore {
            base: base.into(),
            field: field.into(),
            value,
        }),
    ]
}

/// Raw material for one block: instructions plus a terminator seed whose
/// targets are reduced modulo the block count during assembly, so every
/// generated function passes structural validation.
type BlockSeed = (Vec<Inst>, u8, u32, u32, String, Operand);

fn block_seed() -> impl Strategy<Value = BlockSeed> {
    (
        prop::collection::vec(inst(), 0..5),
        0u8..5,
        any::<u32>(),
        any::<u32>(),
        name(),
        operand(),
    )
}

fn assemble_term(seed: &BlockSeed, nblocks: u32) -> Terminator {
    let (_, kind, a, b, cond, op) = seed;
    match kind {
        0 => Terminator::Jump(BlockId(a % nblocks)),
        1 => Terminator::Branch {
            cond: cond.as_str().into(),
            then_bb: BlockId(a % nblocks),
            else_bb: BlockId(b % nblocks),
        },
        2 => Terminator::Return(Some(*op)),
        3 => Terminator::Return(None),
        _ => Terminator::Unreachable,
    }
}

fn function() -> impl Strategy<Value = Function> {
    (
        name(),
        prop::collection::vec(name(), 0..4),
        prop::collection::vec(block_seed(), 1..5),
        any::<bool>(),
    )
        .prop_map(|(fname, params, seeds, weak)| {
            // Parameters must be unique and non-empty; keep first
            // occurrences in order.
            let mut seen = std::collections::HashSet::new();
            let params: Vec<String> =
                params.into_iter().filter(|p| seen.insert(p.clone())).collect();
            let nblocks = seeds.len() as u32;
            let blocks: Vec<BasicBlock> = seeds
                .iter()
                .map(|seed| BasicBlock {
                    insts: seed.0.clone(),
                    term: assemble_term(seed, nblocks),
                })
                .collect();
            let mut func = Function::from_raw_parts(fname, params, blocks);
            func.weak = weak;
            func
        })
}

fn module() -> impl Strategy<Value = Module> {
    (
        name(),
        prop::collection::vec(name(), 0..3),
        prop::collection::vec(function(), 0..4),
    )
        .prop_map(|(mname, externs, functions)| {
            let mut module = Module::new(mname);
            for ext in externs {
                module.push_extern(ext);
            }
            for func in functions {
                module.push_function(func);
            }
            module
        })
}

fn modules() -> impl Strategy<Value = Vec<Module>> {
    prop::collection::vec(module(), 0..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// encode → decode is the identity on valid modules, and re-encoding
    /// the decoded modules reproduces the original bytes exactly (the
    /// interner round-trips text, not handles, so this also pins the
    /// byte-identity contract for snapshot diffing).
    fn roundtrip_is_identity(ms in modules()) {
        let refs: Vec<&Module> = ms.iter().collect();
        let bytes = encode_modules(&refs);
        let back = decode_modules(&bytes).expect("encoded modules decode");
        prop_assert_eq!(&back, &ms);
        let rerefs: Vec<&Module> = back.iter().collect();
        prop_assert_eq!(encode_modules(&rerefs), bytes);
    }

    /// The trusted fast path (validation skipped) agrees with the
    /// validated decoder on everything the validated decoder accepts.
    fn trusted_decode_agrees(ms in modules()) {
        let refs: Vec<&Module> = ms.iter().collect();
        let bytes = encode_modules(&refs);
        let validated = decode_modules(&bytes).expect("encoded modules decode");
        let trusted = decode_modules_trusted(&bytes).expect("trusted decode succeeds");
        prop_assert_eq!(trusted, validated);
    }

    /// Every proper prefix of an encoding fails loudly — on both decode
    /// paths — instead of mis-decoding (torn writes, crashed snapshots).
    fn truncations_fail(ms in modules(), cut in any::<usize>()) {
        let refs: Vec<&Module> = ms.iter().collect();
        let bytes = encode_modules(&refs);
        let cut = cut % bytes.len();
        prop_assert!(decode_modules(&bytes[..cut]).is_err());
        prop_assert!(decode_modules_trusted(&bytes[..cut]).is_err());
    }

    /// Single-byte corruption never panics either decoder, and anything
    /// a decoder does accept re-encodes to exactly the bytes it read
    /// (canonicality: the byte string and the value are 1:1).
    fn corruption_never_panics(ms in modules(), at in any::<usize>(), mask in 1u8..=255) {
        let refs: Vec<&Module> = ms.iter().collect();
        let mut bytes = encode_modules(&refs);
        let at = at % bytes.len();
        bytes[at] ^= mask;
        for back in [decode_modules(&bytes), decode_modules_trusted(&bytes)]
            .into_iter()
            .flatten()
        {
            let rerefs: Vec<&Module> = back.iter().collect();
            prop_assert_eq!(encode_modules(&rerefs), bytes.clone());
        }
    }

    /// Trailing garbage after a valid encoding is always rejected.
    fn trailing_bytes_fail(ms in modules(), extra in 1usize..4) {
        let refs: Vec<&Module> = ms.iter().collect();
        let mut bytes = encode_modules(&refs);
        bytes.extend(vec![0u8; extra]);
        prop_assert_eq!(decode_modules(&bytes), Err(CodecError::TrailingBytes));
        prop_assert_eq!(decode_modules_trusted(&bytes), Err(CodecError::TrailingBytes));
    }
}
