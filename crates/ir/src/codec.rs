//! Compact binary encoding of [`Module`]s for snapshot files.
//!
//! `rid serve --state-dir` snapshots each resident project so a
//! restarted daemon can rebuild its in-memory state without re-running
//! the driver — and without re-parsing sources, which at corpus scale
//! costs more than the whole warm patch path. This codec is the fast
//! lane: a length-prefixed, tag-per-variant byte format that decodes a
//! module one allocation per string, with no tokenizing, no escaping,
//! and no intermediate tree.
//!
//! The format is *not* an interchange format: it carries a version
//! header and readers reject anything else, so the only compatibility
//! promise is "a snapshot written by this build restores under this
//! build". Structural validity of decoded functions is re-checked with
//! [`validate_function`] — a snapshot is a trust boundary, and a
//! corrupted or truncated file must fail loudly instead of smuggling an
//! out-of-range block id into the analysis.

use std::fmt;

use crate::{
    validate_function, BasicBlock, BlockId, Function, Inst, Module, Operand, Pred, Rvalue, Sym,
    Terminator,
};

/// Version header; bump on any change to the byte layout.
pub const MAGIC: &[u8; 8] = b"RIDIRB1\n";

/// A malformed, truncated, or foreign-version byte stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The stream ended before the announced data did.
    Truncated,
    /// An enum tag byte has no corresponding variant.
    BadTag(u8),
    /// A string payload is not UTF-8.
    BadUtf8,
    /// The stream decoded, but a function failed structural validation.
    Invalid(String),
    /// Trailing bytes after the announced data.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => f.write_str("bad magic (not a rid-ir binary module)"),
            CodecError::Truncated => f.write_str("truncated stream"),
            CodecError::BadTag(tag) => write!(f, "unknown tag byte {tag:#04x}"),
            CodecError::BadUtf8 => f.write_str("string payload is not UTF-8"),
            CodecError::Invalid(e) => write!(f, "decoded function fails validation: {e}"),
            CodecError::TrailingBytes => f.write_str("trailing bytes after module data"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes a sequence of modules (preserving order — link order decides
/// weak-symbol resolution) into one byte buffer.
#[must_use]
pub fn encode_modules(modules: &[&Module]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(MAGIC);
    write_u32(&mut out, modules.len() as u32);
    for module in modules {
        encode_module(module, &mut out);
    }
    out
}

/// Decodes a buffer produced by [`encode_modules`]. The whole buffer
/// must be consumed — trailing garbage is an error, not ignored.
///
/// # Errors
///
/// Returns a [`CodecError`] on any malformed input; decoded functions
/// are structurally validated before being returned.
pub fn decode_modules(bytes: &[u8]) -> Result<Vec<Module>, CodecError> {
    decode_modules_impl(bytes, true)
}

/// Like [`decode_modules`], but skips the per-function structural
/// validation pass.
///
/// For callers that already verified the buffer end-to-end before
/// handing it over — a snapshot container whose trailing checksum
/// matched can only contain bytes this process (or an equally trusted
/// writer) encoded from validated functions. The codec's own bounds,
/// tag, and UTF-8 checks still apply; only the semantic re-validation
/// of each decoded function is skipped, which at corpus scale is a
/// measurable slice of restore latency.
///
/// # Errors
///
/// Returns a [`CodecError`] on any malformed input.
pub fn decode_modules_trusted(bytes: &[u8]) -> Result<Vec<Module>, CodecError> {
    decode_modules_impl(bytes, false)
}

fn decode_modules_impl(bytes: &[u8], validate: bool) -> Result<Vec<Module>, CodecError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(MAGIC.len())? != MAGIC.as_slice() {
        return Err(CodecError::BadMagic);
    }
    let count = r.u32()? as usize;
    // An adversarial count must not pre-allocate unbounded memory.
    let mut modules = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        modules.push(decode_module(&mut r, validate)?);
    }
    if r.pos != bytes.len() {
        return Err(CodecError::TrailingBytes);
    }
    Ok(modules)
}

fn encode_module(module: &Module, out: &mut Vec<u8>) {
    write_str(out, &module.name);
    write_u32(out, module.externs().len() as u32);
    for ext in module.externs() {
        write_str(out, ext);
    }
    write_u32(out, module.functions().len() as u32);
    for func in module.functions() {
        encode_function(func, out);
    }
}

fn decode_module(r: &mut Reader<'_>, validate: bool) -> Result<Module, CodecError> {
    let mut module = Module::new(r.sym()?);
    for _ in 0..r.u32()? {
        module.push_extern(r.sym()?);
    }
    for _ in 0..r.u32()? {
        module.push_function(decode_function(r, validate)?);
    }
    Ok(module)
}

fn encode_function(func: &Function, out: &mut Vec<u8>) {
    write_str(out, func.name());
    write_u32(out, func.params().len() as u32);
    for param in func.params() {
        write_str(out, param);
    }
    out.push(u8::from(func.weak));
    write_u32(out, func.blocks().len() as u32);
    for block in func.blocks() {
        write_u32(out, block.insts.len() as u32);
        for inst in block.insts {
            encode_inst(inst, out);
        }
        encode_term(block.term, out);
    }
}

fn decode_function(r: &mut Reader<'_>, validate: bool) -> Result<Function, CodecError> {
    let name = r.sym()?;
    let mut params: Vec<Sym> = Vec::new();
    for _ in 0..r.u32()? {
        params.push(r.sym()?);
    }
    let weak = r.u8()? != 0;
    let block_count = r.u32()? as usize;
    let mut blocks = Vec::with_capacity(block_count.min(65536));
    for _ in 0..block_count {
        let inst_count = r.u32()? as usize;
        let mut insts = Vec::with_capacity(inst_count.min(65536));
        for _ in 0..inst_count {
            insts.push(decode_inst(r)?);
        }
        let term = decode_term(r)?;
        blocks.push(BasicBlock { insts, term });
    }
    let mut func = Function::from_raw_parts(name, params, blocks);
    func.weak = weak;
    if validate {
        validate_function(&func).map_err(|e| CodecError::Invalid(e.to_string()))?;
    }
    Ok(func)
}

fn encode_operand(op: &Operand, out: &mut Vec<u8>) {
    match op {
        Operand::Var(name) => {
            out.push(0);
            write_str(out, name);
        }
        Operand::Int(value) => {
            out.push(1);
            out.extend_from_slice(&value.to_le_bytes());
        }
        Operand::Bool(value) => {
            out.push(2);
            out.push(u8::from(*value));
        }
        Operand::Null => out.push(3),
        Operand::FuncRef(name) => {
            out.push(4);
            write_str(out, name);
        }
    }
}

fn decode_operand(r: &mut Reader<'_>) -> Result<Operand, CodecError> {
    Ok(match r.u8()? {
        0 => Operand::Var(r.sym()?),
        1 => Operand::Int(i64::from_le_bytes(
            r.take(8)?.try_into().expect("take returned 8 bytes"),
        )),
        2 => Operand::Bool(r.u8()? != 0),
        3 => Operand::Null,
        4 => Operand::FuncRef(r.sym()?),
        tag => return Err(CodecError::BadTag(tag)),
    })
}

fn pred_tag(pred: Pred) -> u8 {
    match pred {
        Pred::Eq => 0,
        Pred::Ne => 1,
        Pred::Lt => 2,
        Pred::Le => 3,
        Pred::Gt => 4,
        Pred::Ge => 5,
    }
}

fn decode_pred(r: &mut Reader<'_>) -> Result<Pred, CodecError> {
    Ok(match r.u8()? {
        0 => Pred::Eq,
        1 => Pred::Ne,
        2 => Pred::Lt,
        3 => Pred::Le,
        4 => Pred::Gt,
        5 => Pred::Ge,
        tag => return Err(CodecError::BadTag(tag)),
    })
}

fn encode_rvalue(rvalue: &Rvalue, out: &mut Vec<u8>) {
    match rvalue {
        Rvalue::Use(op) => {
            out.push(0);
            encode_operand(op, out);
        }
        Rvalue::FieldLoad { base, field } => {
            out.push(1);
            write_str(out, base);
            write_str(out, field);
        }
        Rvalue::Random => out.push(2),
        Rvalue::Cmp { pred, lhs, rhs } => {
            out.push(3);
            out.push(pred_tag(*pred));
            encode_operand(lhs, out);
            encode_operand(rhs, out);
        }
        Rvalue::Call { callee, args } => {
            out.push(4);
            write_str(out, callee);
            write_u32(out, args.len() as u32);
            for arg in args {
                encode_operand(arg, out);
            }
        }
    }
}

fn decode_rvalue(r: &mut Reader<'_>) -> Result<Rvalue, CodecError> {
    Ok(match r.u8()? {
        0 => Rvalue::Use(decode_operand(r)?),
        1 => Rvalue::FieldLoad { base: r.sym()?, field: r.sym()? },
        2 => Rvalue::Random,
        3 => Rvalue::Cmp {
            pred: decode_pred(r)?,
            lhs: decode_operand(r)?,
            rhs: decode_operand(r)?,
        },
        4 => {
            let callee = r.sym()?;
            let count = r.u32()? as usize;
            let mut args = Vec::with_capacity(count.min(256));
            for _ in 0..count {
                args.push(decode_operand(r)?);
            }
            Rvalue::Call { callee, args }
        }
        tag => return Err(CodecError::BadTag(tag)),
    })
}

fn encode_inst(inst: &Inst, out: &mut Vec<u8>) {
    match inst {
        Inst::Assign { dst, rvalue } => {
            out.push(0);
            write_str(out, dst);
            encode_rvalue(rvalue, out);
        }
        Inst::Call { callee, args } => {
            out.push(1);
            write_str(out, callee);
            write_u32(out, args.len() as u32);
            for arg in args {
                encode_operand(arg, out);
            }
        }
        Inst::Assume { pred, lhs, rhs } => {
            out.push(2);
            out.push(pred_tag(*pred));
            encode_operand(lhs, out);
            encode_operand(rhs, out);
        }
        Inst::FieldStore { base, field, value } => {
            out.push(3);
            write_str(out, base);
            write_str(out, field);
            encode_operand(value, out);
        }
    }
}

fn decode_inst(r: &mut Reader<'_>) -> Result<Inst, CodecError> {
    Ok(match r.u8()? {
        0 => Inst::Assign { dst: r.sym()?, rvalue: decode_rvalue(r)? },
        1 => {
            let callee = r.sym()?;
            let count = r.u32()? as usize;
            let mut args = Vec::with_capacity(count.min(256));
            for _ in 0..count {
                args.push(decode_operand(r)?);
            }
            Inst::Call { callee, args }
        }
        2 => Inst::Assume {
            pred: decode_pred(r)?,
            lhs: decode_operand(r)?,
            rhs: decode_operand(r)?,
        },
        3 => Inst::FieldStore {
            base: r.sym()?,
            field: r.sym()?,
            value: decode_operand(r)?,
        },
        tag => return Err(CodecError::BadTag(tag)),
    })
}

fn encode_term(term: &Terminator, out: &mut Vec<u8>) {
    match term {
        Terminator::Jump(target) => {
            out.push(0);
            write_u32(out, target.0);
        }
        Terminator::Branch { cond, then_bb, else_bb } => {
            out.push(1);
            write_str(out, cond);
            write_u32(out, then_bb.0);
            write_u32(out, else_bb.0);
        }
        Terminator::Return(Some(op)) => {
            out.push(2);
            encode_operand(op, out);
        }
        Terminator::Return(None) => out.push(3),
        Terminator::Unreachable => out.push(4),
    }
}

fn decode_term(r: &mut Reader<'_>) -> Result<Terminator, CodecError> {
    Ok(match r.u8()? {
        0 => Terminator::Jump(BlockId(r.u32()?)),
        1 => Terminator::Branch {
            cond: r.sym()?,
            then_bb: BlockId(r.u32()?),
            else_bb: BlockId(r.u32()?),
        },
        2 => Terminator::Return(Some(decode_operand(r)?)),
        3 => Terminator::Return(None),
        4 => Terminator::Unreachable,
        tag => return Err(CodecError::BadTag(tag)),
    })
}

fn write_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("take returned 4 bytes")))
    }

    /// Reads a length-prefixed string and interns it straight from the
    /// input slice — a warm decode (names already interned by a prior
    /// load or by the live program) allocates nothing per name.
    fn sym(&mut self) -> Result<Sym, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        let text = std::str::from_utf8(bytes).map_err(|_| CodecError::BadUtf8)?;
        Ok(Sym::new(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionBuilder;

    fn sample_module() -> Module {
        let mut module = Module::new("m.ril");
        module.push_extern("pm_runtime_get_sync");

        let mut b = FunctionBuilder::new("probe", ["dev", "flags"]);
        let err = b.new_block();
        let done = b.new_block();
        b.assign("ret", Rvalue::call("pm_runtime_get_sync", [Operand::var("dev")]));
        b.assign("c", Rvalue::cmp(Pred::Lt, Operand::var("ret"), Operand::Int(0)));
        b.branch("c", err, done);
        b.switch_to(err);
        b.assume(Pred::Ne, Operand::var("dev"), Operand::Null);
        b.ret(Operand::var("ret"));
        b.switch_to(done);
        b.assign("x", Rvalue::field("dev", "pm"));
        b.field_store("dev", "pm", Operand::var("x"));
        b.assign("r", Rvalue::Random);
        b.call("helper", [Operand::FuncRef("cb".into()), Operand::Bool(true)]);
        b.ret(Operand::Int(0));
        module.push_function(b.finish().unwrap());

        let mut weak = FunctionBuilder::new("weak_helper", Vec::<String>::new());
        weak.set_weak(true);
        weak.ret_void();
        module.push_function(weak.finish().unwrap());
        module
    }

    #[test]
    fn roundtrip_preserves_every_construct() {
        let module = sample_module();
        let bytes = encode_modules(&[&module]);
        let back = decode_modules(&bytes).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].name, module.name);
        assert_eq!(back[0].externs(), module.externs());
        assert_eq!(back[0].functions(), module.functions());
    }

    #[test]
    fn roundtrip_preserves_module_order() {
        let mut a = Module::new("a.ril");
        let mut f = FunctionBuilder::new("f", Vec::<String>::new());
        f.ret_void();
        a.push_function(f.finish().unwrap());
        let b = Module::new("b.ril");
        let bytes = encode_modules(&[&a, &b]);
        let back = decode_modules(&bytes).unwrap();
        assert_eq!(
            back.iter().map(|m| m.name.as_str()).collect::<Vec<_>>(),
            vec!["a.ril", "b.ril"]
        );
    }

    #[test]
    fn bad_magic_and_truncation_are_rejected() {
        let module = sample_module();
        let bytes = encode_modules(&[&module]);
        assert_eq!(decode_modules(b"NOTMAGIC"), Err(CodecError::BadMagic));
        // Every proper prefix must fail loudly, never mis-decode: a
        // snapshot truncated by a crash or a torn write is detected at
        // this layer even before the container checksum.
        for end in MAGIC.len()..bytes.len() {
            assert!(
                decode_modules(&bytes[..end]).is_err(),
                "prefix of {end} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn trusted_decode_matches_validated_decode() {
        let module = sample_module();
        let bytes = encode_modules(&[&module]);
        assert_eq!(decode_modules_trusted(&bytes).unwrap(), decode_modules(&bytes).unwrap());
        // The trusted path keeps every structural codec check — only the
        // semantic function re-validation is skipped.
        for end in MAGIC.len()..bytes.len() {
            assert!(
                decode_modules_trusted(&bytes[..end]).is_err(),
                "trusted decode accepted a prefix of {end} bytes"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let module = sample_module();
        let mut bytes = encode_modules(&[&module]);
        bytes.push(0);
        assert_eq!(decode_modules(&bytes), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn corrupted_block_target_fails_validation() {
        let module = sample_module();
        let bytes = encode_modules(&[&module]);
        // Flip every byte one at a time; decoding must never panic and
        // never produce a module that differs silently while claiming
        // success on a corrupted interior (success with equal content is
        // fine — e.g. a flipped bit inside an unused length's high byte
        // cannot happen here since all lengths are exact).
        let mut silent = 0usize;
        for i in MAGIC.len()..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            if let Ok(back) = decode_modules(&corrupt) {
                if back.len() == 1 && back[0].functions() == module.functions() {
                    silent += 1; // corruption in a don't-care position
                } else {
                    // Decoded to *different* valid content: acceptable
                    // only because the snapshot container checksums the
                    // payload; this layer just must not panic.
                }
            }
        }
        assert!(silent <= bytes.len(), "sanity");
    }
}
