//! Comparison predicates of the abstract program (Figure 3 of the paper).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A binary comparison predicate over integers.
///
/// These are the only predicates allowed in branch conditions and
/// constraints (`=`, `≠`, `>`, `≥`, `<`, `≤` in Figure 3 / Figure 5 of the
/// paper).
///
/// # Examples
///
/// ```
/// use rid_ir::Pred;
///
/// assert!(Pred::Lt.eval(1, 2));
/// assert_eq!(Pred::Lt.negated(), Pred::Ge);
/// assert_eq!(Pred::Lt.swapped(), Pred::Gt);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Pred {
    /// `lhs == rhs`
    Eq,
    /// `lhs != rhs`
    Ne,
    /// `lhs < rhs`
    Lt,
    /// `lhs <= rhs`
    Le,
    /// `lhs > rhs`
    Gt,
    /// `lhs >= rhs`
    Ge,
}

impl Pred {
    /// All six predicates, in declaration order.
    pub const ALL: [Pred; 6] = [Pred::Eq, Pred::Ne, Pred::Lt, Pred::Le, Pred::Gt, Pred::Ge];

    /// Evaluates the predicate on two concrete integers.
    #[must_use]
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            Pred::Eq => lhs == rhs,
            Pred::Ne => lhs != rhs,
            Pred::Lt => lhs < rhs,
            Pred::Le => lhs <= rhs,
            Pred::Gt => lhs > rhs,
            Pred::Ge => lhs >= rhs,
        }
    }

    /// Returns the logical negation: `¬(a p b)` equals `a p.negated() b`.
    #[must_use]
    pub fn negated(self) -> Pred {
        match self {
            Pred::Eq => Pred::Ne,
            Pred::Ne => Pred::Eq,
            Pred::Lt => Pred::Ge,
            Pred::Le => Pred::Gt,
            Pred::Gt => Pred::Le,
            Pred::Ge => Pred::Lt,
        }
    }

    /// Returns the predicate with operands swapped: `a p b` iff
    /// `b p.swapped() a`.
    #[must_use]
    pub fn swapped(self) -> Pred {
        match self {
            Pred::Eq => Pred::Eq,
            Pred::Ne => Pred::Ne,
            Pred::Lt => Pred::Gt,
            Pred::Le => Pred::Ge,
            Pred::Gt => Pred::Lt,
            Pred::Ge => Pred::Le,
        }
    }

    /// Whether the predicate is symmetric (`=` and `≠`).
    #[must_use]
    pub fn is_symmetric(self) -> bool {
        matches!(self, Pred::Eq | Pred::Ne)
    }

    /// The source-level symbol for the predicate.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            Pred::Eq => "==",
            Pred::Ne => "!=",
            Pred::Lt => "<",
            Pred::Le => "<=",
            Pred::Gt => ">",
            Pred::Ge => ">=",
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negation_is_involutive() {
        for p in Pred::ALL {
            assert_eq!(p.negated().negated(), p);
        }
    }

    #[test]
    fn swap_is_involutive() {
        for p in Pred::ALL {
            assert_eq!(p.swapped().swapped(), p);
        }
    }

    #[test]
    fn eval_agrees_with_negation() {
        for p in Pred::ALL {
            for a in -3..=3 {
                for b in -3..=3 {
                    assert_eq!(p.eval(a, b), !p.negated().eval(a, b), "{p:?} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn eval_agrees_with_swap() {
        for p in Pred::ALL {
            for a in -3..=3 {
                for b in -3..=3 {
                    assert_eq!(p.eval(a, b), p.swapped().eval(b, a), "{p:?} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn symmetry_classification() {
        assert!(Pred::Eq.is_symmetric());
        assert!(Pred::Ne.is_symmetric());
        assert!(!Pred::Lt.is_symmetric());
        assert!(!Pred::Ge.is_symmetric());
    }

    #[test]
    fn display_uses_source_symbols() {
        assert_eq!(Pred::Le.to_string(), "<=");
        assert_eq!(Pred::Ne.to_string(), "!=");
    }
}
