//! Dominators, post-dominators and control dependence.
//!
//! The §5.2 backward slice of the paper cites classic program slicing
//! (Weiser), which needs *control dependence*: statement `s` is
//! control-dependent on branch `p` when `p` decides whether `s` executes.
//! This module provides the standard construction: immediate dominators
//! via the Cooper–Harvey–Kennedy iterative algorithm, post-dominators on
//! the reversed CFG (with a virtual exit joining all `return`s), and the
//! Ferrante–Ottenstein–Warren control-dependence relation derived from
//! the post-dominator tree.

use crate::{BlockId, Function, Terminator};

/// The immediate-dominator tree of a function's CFG.
///
/// `idom(entry)` is the entry itself; unreachable blocks have no
/// dominator information.
#[derive(Clone, Debug)]
pub struct Dominators {
    idom: Vec<Option<u32>>, // by block index; entry maps to itself
}

impl Dominators {
    /// The immediate dominator of `block` (`None` for unreachable blocks;
    /// the entry dominates itself).
    #[must_use]
    pub fn idom(&self, block: BlockId) -> Option<BlockId> {
        self.idom[block.index()].map(BlockId)
    }

    /// Whether `a` dominates `b` (reflexive).
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(parent) if parent != cur => cur = parent,
                _ => return false,
            }
        }
    }
}

/// Generic CHK iterative dominator computation over an abstract graph
/// given by `preds` and a reverse postorder.
fn compute_idoms(
    n: usize,
    entry: usize,
    preds: &[Vec<usize>],
    rpo: &[usize],
) -> Vec<Option<u32>> {
    let mut order = vec![usize::MAX; n]; // rpo position per node
    for (pos, &b) in rpo.iter().enumerate() {
        order[b] = pos;
    }
    let mut idom: Vec<Option<u32>> = vec![None; n];
    idom[entry] = Some(entry as u32);

    let intersect = |idom: &[Option<u32>], order: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while order[a] > order[b] {
                a = idom[a].expect("processed") as usize;
            }
            while order[b] > order[a] {
                b = idom[b].expect("processed") as usize;
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo {
            if b == entry {
                continue;
            }
            let mut new_idom: Option<usize> = None;
            for &p in &preds[b] {
                if idom[p].is_none() {
                    continue; // not processed / unreachable
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &order, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b] != Some(ni as u32) {
                    idom[b] = Some(ni as u32);
                    changed = true;
                }
            }
        }
    }
    idom
}

fn reverse_postorder(n: usize, entry: usize, succs: &[Vec<usize>]) -> Vec<usize> {
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS.
    let mut stack: Vec<(usize, usize)> = vec![(entry, 0)];
    visited[entry] = true;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        if *next < succs[b].len() {
            let s = succs[b][*next];
            *next += 1;
            if !visited[s] {
                visited[s] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Computes the dominator tree of `func`.
#[must_use]
pub fn dominators(func: &Function) -> Dominators {
    let n = func.blocks().len();
    let mut succs = vec![Vec::new(); n];
    let mut preds = vec![Vec::new(); n];
    for (i, block) in func.blocks().iter().enumerate() {
        for s in block.term.successors() {
            succs[i].push(s.index());
            preds[s.index()].push(i);
        }
    }
    let rpo = reverse_postorder(n, 0, &succs);
    Dominators { idom: compute_idoms(n, 0, &preds, &rpo) }
}

/// The post-dominator tree, computed on the reversed CFG with a virtual
/// exit node joining every `return`/`unreachable` block.
#[derive(Clone, Debug)]
pub struct PostDominators {
    /// Indices 0..n are blocks; n is the virtual exit.
    ipdom: Vec<Option<u32>>,
    virtual_exit: usize,
}

impl PostDominators {
    /// The immediate post-dominator of `block` (`None` when the block
    /// cannot reach an exit, or when it is post-dominated only by the
    /// virtual exit).
    #[must_use]
    pub fn ipdom(&self, block: BlockId) -> Option<BlockId> {
        match self.ipdom[block.index()] {
            Some(p) if (p as usize) != self.virtual_exit => Some(BlockId(p)),
            _ => None,
        }
    }

    /// Whether `a` post-dominates `b` (reflexive).
    #[must_use]
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b.index();
        loop {
            if cur == a.index() {
                return true;
            }
            match self.ipdom[cur] {
                Some(p) if (p as usize) != cur && (p as usize) != self.virtual_exit => {
                    cur = p as usize;
                }
                _ => return false,
            }
        }
    }
}

/// Computes the post-dominator tree of `func`.
#[must_use]
pub fn post_dominators(func: &Function) -> PostDominators {
    let n = func.blocks().len();
    let exit = n; // virtual exit node
    let total = n + 1;
    let mut succs = vec![Vec::new(); total]; // edges of the REVERSED graph
    let mut preds = vec![Vec::new(); total];
    for (i, block) in func.blocks().iter().enumerate() {
        // Reversed: original edge i→s becomes s→i.
        for s in block.term.successors() {
            succs[s.index()].push(i);
            preds[i].push(s.index());
        }
        if matches!(block.term, Terminator::Return(_) | Terminator::Unreachable) {
            // Virtual edge i→exit, reversed: exit→i.
            succs[exit].push(i);
            preds[i].push(exit);
        }
    }
    let rpo = reverse_postorder(total, exit, &succs);
    PostDominators { ipdom: compute_idoms(total, exit, &preds, &rpo), virtual_exit: exit }
}

/// The control-dependence relation: `result[b]` lists the branch blocks
/// that decide whether `b` executes (Ferrante–Ottenstein–Warren: for each
/// CFG edge `p → s` where `p` has several successors, every node on the
/// post-dominator-tree path from `s` up to, but excluding, `ipdom(p)` is
/// control-dependent on `p`).
#[must_use]
pub fn control_dependencies(func: &Function) -> Vec<Vec<BlockId>> {
    let n = func.blocks().len();
    let pdom = post_dominators(func);
    let mut deps: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for (i, block) in func.blocks().iter().enumerate() {
        let succs = block.term.successors();
        if succs.len() < 2 {
            continue;
        }
        let p = BlockId(i as u32);
        let stop = pdom.ipdom[i]; // may be the virtual exit (None-like)
        for s in succs {
            let mut cur = s.index();
            loop {
                if Some(cur as u32) == stop {
                    break;
                }
                deps[cur].push(p);
                match pdom.ipdom[cur] {
                    Some(up) if (up as usize) != pdom.virtual_exit && Some(up) != stop => {
                        cur = up as usize;
                    }
                    Some(up) if Some(up) == stop => break,
                    _ => break,
                }
            }
        }
    }
    for d in &mut deps {
        d.sort_unstable();
        d.dedup();
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, Operand, Pred, Rvalue};

    /// entry(0) → branch → then(1) / else(2) → join(3) → return
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("f", ["x"]);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.assign("c", Rvalue::cmp(Pred::Gt, Operand::var("x"), Operand::Int(0)));
        b.branch("c", t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(0);
        b.finish().unwrap()
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let dom = dominators(&f);
        assert_eq!(dom.idom(BlockId(0)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
    }

    #[test]
    fn diamond_post_dominators() {
        let f = diamond();
        let pdom = post_dominators(&f);
        assert_eq!(pdom.ipdom(BlockId(0)), Some(BlockId(3)));
        assert_eq!(pdom.ipdom(BlockId(1)), Some(BlockId(3)));
        assert_eq!(pdom.ipdom(BlockId(2)), Some(BlockId(3)));
        assert!(pdom.post_dominates(BlockId(3), BlockId(0)));
        assert!(!pdom.post_dominates(BlockId(1), BlockId(0)));
    }

    #[test]
    fn diamond_control_dependence() {
        let f = diamond();
        let deps = control_dependencies(&f);
        // Both arms depend on the branch; entry and join do not.
        assert_eq!(deps[1], vec![BlockId(0)]);
        assert_eq!(deps[2], vec![BlockId(0)]);
        assert!(deps[0].is_empty());
        assert!(deps[3].is_empty());
    }

    /// Early return: branch(0) → ret(1) | rest(2) → ret. The tail block
    /// is control-dependent on the branch (no join post-dominates it).
    #[test]
    fn early_return_control_dependence() {
        let mut b = FunctionBuilder::new("f", ["x"]);
        let early = b.new_block();
        let rest = b.new_block();
        b.assign("c", Rvalue::cmp(Pred::Lt, Operand::var("x"), Operand::Int(0)));
        b.branch("c", early, rest);
        b.switch_to(early);
        b.ret(Operand::Int(-1));
        b.switch_to(rest);
        b.ret(Operand::Int(0));
        let f = b.finish().unwrap();
        let deps = control_dependencies(&f);
        assert_eq!(deps[1], vec![BlockId(0)]);
        assert_eq!(deps[2], vec![BlockId(0)]);
    }

    /// Loop: head(1) branches to body(2) and exit(3); body jumps back.
    /// The body — and the head itself — are control-dependent on the head.
    #[test]
    fn loop_control_dependence() {
        let mut b = FunctionBuilder::new("f", ["n"]);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(head);
        b.switch_to(head);
        b.assign("c", Rvalue::cmp(Pred::Gt, Operand::var("n"), Operand::Int(0)));
        b.branch("c", body, exit);
        b.switch_to(body);
        b.call("work", []);
        b.jump(head);
        b.switch_to(exit);
        b.ret(0);
        let f = b.finish().unwrap();
        let deps = control_dependencies(&f);
        assert!(deps[body.index()].contains(&head));
        assert!(deps[head.index()].contains(&head), "loop heads self-depend");
        assert!(deps[exit.index()].is_empty(), "the exit always runs");
    }

    #[test]
    fn straight_line_has_no_dependence() {
        let mut b = FunctionBuilder::new("f", Vec::<String>::new());
        b.call("g", []);
        b.ret_void();
        let f = b.finish().unwrap();
        let deps = control_dependencies(&f);
        assert!(deps.iter().all(Vec::is_empty));
        let dom = dominators(&f);
        assert_eq!(dom.idom(BlockId(0)), Some(BlockId(0)));
    }

    #[test]
    fn nested_branches() {
        // if (a) { if (b) { x } }  — x depends on both branches.
        let mut b = FunctionBuilder::new("f", ["a", "b"]);
        let outer_then = b.new_block();
        let join = b.new_block();
        let inner_then = b.new_block();
        b.assign("c1", Rvalue::cmp(Pred::Ne, Operand::var("a"), Operand::Int(0)));
        b.branch("c1", outer_then, join);
        b.switch_to(outer_then);
        b.assign("c2", Rvalue::cmp(Pred::Ne, Operand::var("b"), Operand::Int(0)));
        b.branch("c2", inner_then, join);
        b.switch_to(inner_then);
        b.call("x", []);
        b.jump(join);
        b.switch_to(join);
        b.ret(0);
        let f = b.finish().unwrap();
        let deps = control_dependencies(&f);
        // Direct dependence only (Ferrante et al.): the inner block hangs
        // off the inner branch; the outer branch is reached transitively
        // through the dependence chain.
        assert_eq!(deps[inner_then.index()], vec![outer_then]);
        assert_eq!(deps[outer_then.index()], vec![BlockId(0)]);
    }
}
