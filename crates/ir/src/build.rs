//! A builder for constructing valid [`Function`]s incrementally.

use crate::validate::{validate_function, ValidateError};
use crate::{BasicBlock, BlockId, Function, Inst, Operand, Pred, Rvalue, Sym, Terminator};

/// Incremental builder for a [`Function`].
///
/// The builder maintains a *current block*; instruction-emitting methods
/// append to it, and terminator-emitting methods seal it. Sealing twice, or
/// finishing with an unsealed reachable block, is reported by
/// [`FunctionBuilder::finish`].
///
/// # Examples
///
/// ```
/// use rid_ir::{FunctionBuilder, Operand, Rvalue};
///
/// let mut b = FunctionBuilder::new("idempotent", ["x"]);
/// b.assign("y", Rvalue::Use(Operand::var("x")));
/// b.ret(Operand::var("y"));
/// let f = b.finish()?;
/// assert_eq!(f.inst_count(), 1);
/// # Ok::<(), rid_ir::ValidateError>(())
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: Sym,
    params: Vec<Sym>,
    blocks: Vec<(Vec<Inst>, Option<Terminator>)>,
    current: BlockId,
    weak: bool,
}

impl FunctionBuilder {
    /// Starts building a function with the given name and parameters.
    /// The entry block (block 0) is created and made current.
    pub fn new<P: Into<Sym>>(
        name: impl Into<Sym>,
        params: impl IntoIterator<Item = P>,
    ) -> FunctionBuilder {
        FunctionBuilder {
            name: name.into(),
            params: params.into_iter().map(Into::into).collect(),
            blocks: vec![(Vec::new(), None)],
            current: BlockId::ENTRY,
        weak: false,
        }
    }

    /// Marks the function as weak linkage (see [`Function::weak`]).
    pub fn set_weak(&mut self, weak: bool) -> &mut Self {
        self.weak = weak;
        self
    }

    /// Creates a new (empty, unsealed) block and returns its id without
    /// switching to it.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push((Vec::new(), None));
        id
    }

    /// Makes `block` the current block.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not created by this builder.
    pub fn switch_to(&mut self, block: BlockId) -> &mut Self {
        assert!(block.index() < self.blocks.len(), "unknown block {block}");
        self.current = block;
        self
    }

    /// The current block id.
    #[must_use]
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Whether the current block has already been sealed with a terminator.
    #[must_use]
    pub fn current_is_sealed(&self) -> bool {
        self.blocks[self.current.index()].1.is_some()
    }

    fn push(&mut self, inst: Inst) -> &mut Self {
        let (insts, term) = &mut self.blocks[self.current.index()];
        assert!(term.is_none(), "appending to sealed block {}", self.current);
        insts.push(inst);
        self
    }

    fn seal(&mut self, term: Terminator) -> &mut Self {
        let slot = &mut self.blocks[self.current.index()].1;
        assert!(slot.is_none(), "block {} already sealed", self.current);
        *slot = Some(term);
        self
    }

    /// Appends `dst = rvalue` to the current block.
    pub fn assign(&mut self, dst: impl Into<Sym>, rvalue: Rvalue) -> &mut Self {
        self.push(Inst::Assign { dst: dst.into(), rvalue })
    }

    /// Appends a result-discarding call to the current block.
    pub fn call(
        &mut self,
        callee: impl Into<Sym>,
        args: impl IntoIterator<Item = Operand>,
    ) -> &mut Self {
        self.push(Inst::Call { callee: callee.into(), args: args.into_iter().collect() })
    }

    /// Appends `assume lhs pred rhs` to the current block.
    pub fn assume(&mut self, pred: Pred, lhs: Operand, rhs: Operand) -> &mut Self {
        self.push(Inst::Assume { pred, lhs, rhs })
    }

    /// Appends `base.field = value` to the current block.
    pub fn field_store(
        &mut self,
        base: impl Into<Sym>,
        field: impl Into<Sym>,
        value: Operand,
    ) -> &mut Self {
        self.push(Inst::FieldStore { base: base.into(), field: field.into(), value })
    }

    /// Seals the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) -> &mut Self {
        self.seal(Terminator::Jump(target))
    }

    /// Seals the current block with a two-way branch on `cond`.
    pub fn branch(
        &mut self,
        cond: impl Into<Sym>,
        then_bb: BlockId,
        else_bb: BlockId,
    ) -> &mut Self {
        self.seal(Terminator::Branch { cond: cond.into(), then_bb, else_bb })
    }

    /// Seals the current block with `return value`.
    pub fn ret(&mut self, value: impl Into<Operand>) -> &mut Self {
        self.seal(Terminator::Return(Some(value.into())))
    }

    /// Seals the current block with a void `return`.
    pub fn ret_void(&mut self) -> &mut Self {
        self.seal(Terminator::Return(None))
    }

    /// Seals the current block as unreachable.
    pub fn unreachable(&mut self) -> &mut Self {
        self.seal(Terminator::Unreachable)
    }

    /// Finishes the function and validates it.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if a block is missing a terminator, a
    /// branch target is out of range, or parameter names collide.
    pub fn finish(self) -> Result<Function, ValidateError> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, (insts, term)) in self.blocks.into_iter().enumerate() {
            let term = term.ok_or(ValidateError::UnsealedBlock(BlockId(i as u32)))?;
            blocks.push(BasicBlock { insts, term });
        }
        let mut func = Function::from_raw_parts(self.name, self.params, blocks);
        func.weak = self.weak;
        validate_function(&func)?;
        Ok(func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_function() {
        let mut b = FunctionBuilder::new("f", ["x"]);
        b.assign("y", Rvalue::Use(Operand::var("x")));
        b.ret(Operand::var("y"));
        let f = b.finish().unwrap();
        assert_eq!(f.blocks().len(), 1);
        assert_eq!(f.inst_count(), 1);
    }

    #[test]
    fn unsealed_block_is_an_error() {
        let mut b = FunctionBuilder::new("f", Vec::<String>::new());
        let dangling = b.new_block();
        b.ret_void();
        let err = b.finish().unwrap_err();
        assert_eq!(err, ValidateError::UnsealedBlock(dangling));
    }

    #[test]
    #[should_panic(expected = "already sealed")]
    fn double_seal_panics() {
        let mut b = FunctionBuilder::new("f", Vec::<String>::new());
        b.ret_void();
        b.ret_void();
    }

    #[test]
    #[should_panic(expected = "appending to sealed block")]
    fn append_after_seal_panics() {
        let mut b = FunctionBuilder::new("f", Vec::<String>::new());
        b.ret_void();
        b.assign("x", Rvalue::Random);
    }

    #[test]
    fn diamond_cfg() {
        let mut b = FunctionBuilder::new("f", ["p"]);
        let t = b.new_block();
        let e = b.new_block();
        let join = b.new_block();
        b.assign("c", Rvalue::cmp(Pred::Eq, Operand::var("p"), Operand::Null));
        b.branch("c", t, e);
        b.switch_to(t);
        b.jump(join);
        b.switch_to(e);
        b.jump(join);
        b.switch_to(join);
        b.ret(0);
        let f = b.finish().unwrap();
        assert_eq!(f.blocks().len(), 4);
        assert_eq!(f.conditional_branch_count(), 1);
    }

    #[test]
    fn weak_flag() {
        let mut b = FunctionBuilder::new("f", Vec::<String>::new());
        b.set_weak(true);
        b.ret_void();
        assert!(b.finish().unwrap().weak);
    }
}
