//! Memory-footprint accounting for the interned struct-of-arrays IR.
//!
//! [`measure_program`] walks a linked [`Program`] and produces two
//! numbers side by side:
//!
//! * **`resident_bytes`** — the heap bytes the *current* layout actually
//!   holds: the per-function instruction/terminator/start arenas
//!   ([`Function::arena_bytes`]), call-argument vectors, module and
//!   index tables, and the process-global intern table (counted once —
//!   that is the point of interning).
//! * **`string_layout_bytes`** — the same IR priced under the
//!   *pre-interning* layout this crate used to have: one owned `String`
//!   per name occurrence and one heap `Vec` per basic block. The old
//!   container shapes are reconstructed as private shadow types below,
//!   so the inline widths are computed by the compiler
//!   (`size_of::<OldInst>()`), not hand-derived constants; only the
//!   heap model (capacity == length, no allocator slack) is an
//!   assumption, and it is an assumption that *favors* the old layout.
//!
//! The ratio between the two is the benchmark's bytes-per-function
//! reduction claim; keeping both sides mechanical keeps the claim
//! honest across future IR changes.

use crate::{Function, Inst, Operand, Program, Rvalue, Sym, Terminator};

/// Shadow copies of the pre-interning IR containers, used only as
/// `size_of` witnesses for [`MemoryFootprint::string_layout_bytes`].
/// Field names and variant shapes mirror the old definitions exactly;
/// `String` stands where [`Sym`] now is, and blocks own their
/// instruction vectors (the old array-of-structs layout).
mod old_layout {
    #![allow(dead_code)] // size_of witnesses; never constructed.

    use crate::{BlockId, Pred};

    pub(super) enum OldOperand {
        Var(String),
        Int(i64),
        Bool(bool),
        Null,
        FuncRef(String),
    }

    pub(super) enum OldRvalue {
        Use(OldOperand),
        FieldLoad { base: String, field: String },
        Random,
        Cmp { pred: Pred, lhs: OldOperand, rhs: OldOperand },
        Call { callee: String, args: Vec<OldOperand> },
    }

    pub(super) enum OldInst {
        Assign { dst: String, rvalue: OldRvalue },
        Call { callee: String, args: Vec<OldOperand> },
        Assume { pred: Pred, lhs: OldOperand, rhs: OldOperand },
        FieldStore { base: String, field: String, value: OldOperand },
    }

    pub(super) enum OldTerminator {
        Jump(BlockId),
        Branch { cond: String, then_bb: BlockId, else_bb: BlockId },
        Return(Option<OldOperand>),
        Unreachable,
    }

    pub(super) struct OldBasicBlock {
        pub insts: Vec<OldInst>,
        pub term: OldTerminator,
    }

    pub(super) struct OldFunction {
        pub name: String,
        pub params: Vec<String>,
        pub blocks: Vec<OldBasicBlock>,
        pub weak: bool,
    }

    pub(super) struct OldModule {
        pub name: String,
        pub functions: Vec<OldFunction>,
        pub externs: Vec<String>,
    }
}

use old_layout::{OldBasicBlock, OldFunction, OldInst, OldModule, OldOperand};

/// Modeled per-entry bookkeeping of a `std::collections::HashMap` slot
/// beyond the key/value pair itself (control byte plus load-factor
/// slack, rounded to one word). Used symmetrically on both sides of the
/// comparison, so its exact value does not move the ratio.
const MAP_SLOT_OVERHEAD: usize = 8;

/// Heap-byte accounting of one [`Program`] under the current and the
/// pre-interning layout. All fields are exact walks of the same IR; see
/// the module docs for the one modeling assumption.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Canonical function definitions walked (the denominator of
    /// bytes-per-function figures).
    pub functions: usize,
    /// Measured heap bytes of the current interned struct-of-arrays
    /// layout, including the intern table (counted once).
    pub resident_bytes: usize,
    /// Of `resident_bytes`: the process-global intern table (string
    /// text plus per-entry table words).
    pub interner_bytes: usize,
    /// Name occurrences in the walked IR — each of these was an owned
    /// `String` in the old layout and is a 4-byte [`Sym`] now.
    pub sym_occurrences: usize,
    /// Total text bytes across those occurrences (with duplicates —
    /// the old layout stored every copy).
    pub sym_text_bytes: usize,
    /// The same IR priced under the old `String` + array-of-structs
    /// layout (shadow-type inline widths, capacity == length heap
    /// model).
    pub string_layout_bytes: usize,
}

impl MemoryFootprint {
    /// `resident_bytes / functions` (0 for an empty program).
    #[must_use]
    pub fn bytes_per_function(&self) -> f64 {
        if self.functions == 0 {
            0.0
        } else {
            self.resident_bytes as f64 / self.functions as f64
        }
    }

    /// `string_layout_bytes / resident_bytes` — how many times larger
    /// the pre-interning layout is (0 for an empty program).
    #[must_use]
    pub fn reduction_ratio(&self) -> f64 {
        if self.resident_bytes == 0 {
            0.0
        } else {
            self.string_layout_bytes as f64 / self.resident_bytes as f64
        }
    }
}

/// Running totals of one walk; both layouts are accumulated in a single
/// pass so they cannot drift out of sync.
#[derive(Default)]
struct Walk {
    occurrences: usize,
    text_bytes: usize,
    /// Heap bytes specific to the current layout (arenas, arg vectors).
    new_heap: usize,
    /// Heap bytes specific to the old layout (strings, block vectors).
    old_heap: usize,
}

impl Walk {
    /// One name occurrence: free in the new layout (the 4-byte handle is
    /// inline, the text is shared in the intern table), one 24-byte
    /// `String` header's *heap block* in the old (the header itself is
    /// inline in the containing enum and priced by its shadow width).
    fn sym(&mut self, sym: Sym) {
        self.occurrences += 1;
        let len = sym.as_str().len();
        self.text_bytes += len;
        self.old_heap += len;
    }

    fn operand(&mut self, op: &Operand) {
        match op {
            Operand::Var(name) | Operand::FuncRef(name) => self.sym(*name),
            Operand::Int(_) | Operand::Bool(_) | Operand::Null => {}
        }
    }

    fn args(&mut self, args: &[Operand]) {
        self.new_heap += std::mem::size_of_val(args);
        self.old_heap += args.len() * std::mem::size_of::<OldOperand>();
        for arg in args {
            self.operand(arg);
        }
    }

    fn inst(&mut self, inst: &Inst) {
        match inst {
            Inst::Assign { dst, rvalue } => {
                self.sym(*dst);
                match rvalue {
                    Rvalue::Use(op) => self.operand(op),
                    Rvalue::FieldLoad { base, field } => {
                        self.sym(*base);
                        self.sym(*field);
                    }
                    Rvalue::Random => {}
                    Rvalue::Cmp { lhs, rhs, .. } => {
                        self.operand(lhs);
                        self.operand(rhs);
                    }
                    Rvalue::Call { callee, args } => {
                        self.sym(*callee);
                        self.args(args);
                    }
                }
            }
            Inst::Call { callee, args } => {
                self.sym(*callee);
                self.args(args);
            }
            Inst::Assume { lhs, rhs, .. } => {
                self.operand(lhs);
                self.operand(rhs);
            }
            Inst::FieldStore { base, field, value } => {
                self.sym(*base);
                self.sym(*field);
                self.operand(value);
            }
        }
    }

    fn function(&mut self, func: &Function) {
        self.sym(func.name_sym());
        for &param in func.params() {
            self.sym(param);
        }
        // New: three flat arenas plus the param table, measured.
        self.new_heap += func.arena_bytes();
        // Old: a Vec<OldBasicBlock> spine, one Vec<OldInst> heap block
        // per basic block, and a Vec<String> of params.
        self.old_heap += func.block_count() * std::mem::size_of::<OldBasicBlock>();
        self.old_heap += func.params().len() * std::mem::size_of::<String>();
        for block in func.blocks() {
            self.old_heap += block.insts.len() * std::mem::size_of::<OldInst>();
            for inst in block.insts {
                self.inst(inst);
            }
            if let Terminator::Branch { cond, .. } = block.term {
                self.sym(*cond);
            }
            if let Terminator::Return(Some(op)) = block.term {
                self.operand(op);
            }
        }
    }
}

/// Walks `program` and prices it under both layouts. See the module
/// docs; the walk covers every linked module (including weak-shadowed
/// duplicate definitions — both layouts hold those in memory too).
#[must_use]
pub fn measure_program(program: &Program) -> MemoryFootprint {
    let mut walk = Walk::default();
    for module in program.modules() {
        walk.sym(module.name);
        walk.new_heap += std::mem::size_of_val(module.functions());
        walk.new_heap += std::mem::size_of_val(module.externs());
        walk.old_heap += module.functions().len() * std::mem::size_of::<OldFunction>();
        walk.old_heap += module.externs().len() * std::mem::size_of::<String>();
        for &ext in module.externs() {
            walk.sym(ext);
        }
        for func in module.functions() {
            walk.function(func);
        }
    }
    // The module spine and the name → definition index. Key width is
    // the only difference between the layouts here.
    let modules = program.modules().len();
    let index = program.function_count();
    let slot = std::mem::size_of::<(usize, usize)>() + MAP_SLOT_OVERHEAD;
    walk.new_heap += std::mem::size_of_val(program.modules());
    walk.new_heap += index * (std::mem::size_of::<Sym>() + slot);
    walk.old_heap += modules * std::mem::size_of::<OldModule>();
    walk.old_heap += index * (std::mem::size_of::<String>() + slot);
    for func in program.functions() {
        // Index keys duplicate the name text in the old layout.
        walk.old_heap += func.name().len();
    }

    // The intern table: text bytes plus one `&'static str` table word
    // pair per entry, counted once per process. Charging the *whole*
    // table to this program over-counts when other IR is live, which
    // again only understates the reduction.
    let interner_bytes =
        Sym::interned_bytes() + Sym::interned_count() * std::mem::size_of::<&str>();

    MemoryFootprint {
        functions: program.function_count(),
        resident_bytes: walk.new_heap + interner_bytes,
        interner_bytes,
        sym_occurrences: walk.occurrences,
        sym_text_bytes: walk.text_bytes,
        string_layout_bytes: walk.old_heap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, Module, Pred};

    fn sample_program_sized(functions: usize) -> Program {
        let mut module = Module::new("mem_test.ril");
        for i in 0..functions {
            let mut b = FunctionBuilder::new(
                format!("mem_test_fn_{i}"),
                ["device_argument_name"],
            );
            let exit = b.new_block();
            let body = b.new_block();
            b.assign(
                "status_value",
                Rvalue::call("mem_test_helper", [Operand::var("device_argument_name")]),
            );
            b.assign(
                "flag",
                Rvalue::cmp(Pred::Le, Operand::var("status_value"), Operand::Int(0)),
            );
            b.branch("flag", exit, body);
            b.switch_to(body);
            b.call("mem_test_put", [Operand::var("device_argument_name")]);
            b.jump(exit);
            b.switch_to(exit);
            b.ret(Operand::var("status_value"));
            module.push_function(b.finish().unwrap());
        }
        Program::from_module(module).unwrap()
    }

    #[test]
    fn counts_every_name_occurrence() {
        let program = sample_program_sized(4);
        let fp = measure_program(&program);
        assert_eq!(fp.functions, 4);
        // Per function: name + param + dst/callee/arg + dst/cmp-lhs +
        // branch cond + callee/arg + return operand = 11, plus the
        // module name.
        assert_eq!(fp.sym_occurrences, 4 * 11 + 1);
        assert!(fp.sym_text_bytes > fp.sym_occurrences); // multi-byte names
    }

    #[test]
    fn interned_layout_is_smaller_on_shared_names() {
        // Large enough that this program's own footprint dominates the
        // process-global intern table, which other tests in this binary
        // also grow (resident_bytes charges the whole table).
        let program = sample_program_sized(128);
        let fp = measure_program(&program);
        assert!(fp.resident_bytes > 0);
        assert!(
            fp.string_layout_bytes > fp.resident_bytes,
            "old layout {} must exceed interned layout {}",
            fp.string_layout_bytes,
            fp.resident_bytes
        );
        assert!(fp.reduction_ratio() > 1.0);
        assert!(fp.bytes_per_function() > 0.0);
    }

    #[test]
    fn empty_program_is_all_zero_except_interner() {
        let fp = measure_program(&Program::new());
        assert_eq!(fp.functions, 0);
        assert_eq!(fp.sym_occurrences, 0);
        assert_eq!(fp.string_layout_bytes, 0);
        assert_eq!(fp.bytes_per_function(), 0.0);
        // The process-global intern table is still charged.
        assert_eq!(fp.resident_bytes, fp.interner_bytes);
    }

    #[test]
    fn old_inline_widths_exceed_new() {
        // The shadow types must be wider than the interned originals —
        // if this ever fails the old-layout model has rotted.
        use super::old_layout::*;
        assert!(std::mem::size_of::<OldOperand>() > std::mem::size_of::<Operand>());
        assert!(std::mem::size_of::<OldInst>() > std::mem::size_of::<Inst>());
        assert!(
            std::mem::size_of::<OldTerminator>() > std::mem::size_of::<Terminator>()
        );
    }
}
