//! Structural validation of functions.

use std::collections::HashSet;
use std::fmt;

use crate::{BlockId, Function, Terminator};

/// A structural validity error in a [`Function`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// A block has no terminator (only produced by the builder).
    UnsealedBlock(BlockId),
    /// A terminator targets a block that does not exist.
    BadTarget {
        /// The block whose terminator is invalid.
        from: BlockId,
        /// The missing target.
        to: BlockId,
    },
    /// The function has no blocks at all.
    NoBlocks,
    /// Two formal parameters share a name.
    DuplicateParam(String),
    /// A parameter or the function itself has an empty name.
    EmptyName,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UnsealedBlock(b) => write!(f, "block {b} has no terminator"),
            ValidateError::BadTarget { from, to } => {
                write!(f, "terminator of {from} targets nonexistent block {to}")
            }
            ValidateError::NoBlocks => f.write_str("function has no blocks"),
            ValidateError::DuplicateParam(p) => write!(f, "duplicate parameter name `{p}`"),
            ValidateError::EmptyName => f.write_str("empty function or parameter name"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Checks the structural validity of a function.
///
/// # Errors
///
/// Returns the first [`ValidateError`] found: missing blocks, out-of-range
/// branch targets, duplicate or empty parameter names.
pub fn validate_function(func: &Function) -> Result<(), ValidateError> {
    if func.name().is_empty() {
        return Err(ValidateError::EmptyName);
    }
    if func.blocks().is_empty() {
        return Err(ValidateError::NoBlocks);
    }
    let mut seen = HashSet::new();
    for param in func.params() {
        if param.is_empty() {
            return Err(ValidateError::EmptyName);
        }
        if !seen.insert(*param) {
            return Err(ValidateError::DuplicateParam(param.as_str().to_owned()));
        }
    }
    let n = func.blocks().len();
    for (i, block) in func.blocks().iter().enumerate() {
        let from = BlockId(i as u32);
        for target in block.term.successors() {
            if target.index() >= n {
                return Err(ValidateError::BadTarget { from, to: target });
            }
        }
        // A branch on a variable never defined by a comparison is legal (the
        // analysis treats it as opaque), so nothing further to check here.
        let _ = matches!(block.term, Terminator::Branch { .. });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BasicBlock, Operand};

    #[test]
    fn rejects_no_blocks() {
        let f = Function::from_raw_parts("f", Vec::<&str>::new(), vec![]);
        assert_eq!(validate_function(&f), Err(ValidateError::NoBlocks));
    }

    #[test]
    fn rejects_bad_target() {
        let f = Function::from_raw_parts(
            "f",
            Vec::<&str>::new(),
            vec![BasicBlock::new(Terminator::Jump(BlockId(7)))],
        );
        assert_eq!(
            validate_function(&f),
            Err(ValidateError::BadTarget { from: BlockId(0), to: BlockId(7) })
        );
    }

    #[test]
    fn rejects_duplicate_params() {
        let f = Function::from_raw_parts(
            "f",
            vec!["a", "a"],
            vec![BasicBlock::new(Terminator::Return(None))],
        );
        assert_eq!(validate_function(&f), Err(ValidateError::DuplicateParam("a".into())));
    }

    #[test]
    fn rejects_empty_names() {
        let f = Function::from_raw_parts(
            "",
            Vec::<&str>::new(),
            vec![BasicBlock::new(Terminator::Return(None))],
        );
        assert_eq!(validate_function(&f), Err(ValidateError::EmptyName));
    }

    #[test]
    fn accepts_valid_function() {
        let f = Function::from_raw_parts(
            "f",
            vec!["x"],
            vec![BasicBlock::new(Terminator::Return(Some(Operand::Int(0))))],
        );
        assert!(validate_function(&f).is_ok());
    }

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            ValidateError::UnsealedBlock(BlockId(1)),
            ValidateError::BadTarget { from: BlockId(0), to: BlockId(9) },
            ValidateError::NoBlocks,
            ValidateError::DuplicateParam("x".into()),
            ValidateError::EmptyName,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
