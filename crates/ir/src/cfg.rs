//! Control-flow-graph utilities: predecessors, reachability, orders.

use std::collections::HashSet;

use crate::{BlockId, Function};

/// Precomputed control-flow information for one [`Function`].
///
/// # Examples
///
/// ```
/// use rid_ir::{Cfg, FunctionBuilder, Operand, Pred, Rvalue};
///
/// let mut b = FunctionBuilder::new("f", ["x"]);
/// let t = b.new_block();
/// let e = b.new_block();
/// b.assign("c", Rvalue::cmp(Pred::Gt, Operand::var("x"), Operand::Int(0)));
/// b.branch("c", t, e);
/// b.switch_to(t);
/// b.ret(Operand::Int(1));
/// b.switch_to(e);
/// b.ret(Operand::Int(0));
/// let f = b.finish()?;
/// let cfg = Cfg::new(&f);
/// assert_eq!(cfg.preds(rid_ir::BlockId(1)), &[rid_ir::BlockId(0)]);
/// assert!(cfg.is_reachable(rid_ir::BlockId(2)));
/// # Ok::<(), rid_ir::ValidateError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    reachable: Vec<bool>,
    back_edges: HashSet<(BlockId, BlockId)>,
}

impl Cfg {
    /// Computes CFG information for `func`.
    #[must_use]
    pub fn new(func: &Function) -> Cfg {
        let n = func.blocks().len();
        let mut preds = vec![Vec::new(); n];
        for (i, block) in func.blocks().iter().enumerate() {
            for succ in block.term.successors() {
                preds[succ.index()].push(BlockId(i as u32));
            }
        }

        // DFS from entry: reachability and back-edge detection.
        let mut reachable = vec![false; n];
        let mut on_stack = vec![false; n];
        let mut back_edges = HashSet::new();
        // Iterative DFS with an explicit stack of (block, next-successor).
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId::ENTRY, 0)];
        if n > 0 {
            reachable[0] = true;
            on_stack[0] = true;
        }
        while let Some((block, idx)) = stack.pop() {
            let succs = func.block(block).term.successors();
            if idx < succs.len() {
                stack.push((block, idx + 1));
                let succ = succs[idx];
                if on_stack[succ.index()] {
                    back_edges.insert((block, succ));
                } else if !reachable[succ.index()] {
                    reachable[succ.index()] = true;
                    on_stack[succ.index()] = true;
                    stack.push((succ, 0));
                }
            } else {
                on_stack[block.index()] = false;
            }
        }

        Cfg { preds, reachable, back_edges }
    }

    /// Predecessor blocks of `block`.
    #[must_use]
    pub fn preds(&self, block: BlockId) -> &[BlockId] {
        &self.preds[block.index()]
    }

    /// Whether `block` is reachable from the entry.
    #[must_use]
    pub fn is_reachable(&self, block: BlockId) -> bool {
        self.reachable[block.index()]
    }

    /// Whether the edge `from → to` is a back edge of some loop (w.r.t. the
    /// depth-first search from the entry).
    #[must_use]
    pub fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.back_edges.contains(&(from, to))
    }

    /// Whether the function contains any loop.
    #[must_use]
    pub fn has_loops(&self) -> bool {
        !self.back_edges.is_empty()
    }

    /// Number of blocks in the function.
    #[must_use]
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the function has no blocks (never true for valid functions).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, Operand, Pred, Rvalue};

    fn looped() -> Function {
        // entry -> head; head -> body | exit; body -> head
        let mut b = FunctionBuilder::new("f", ["n"]);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(head);
        b.switch_to(head);
        b.assign("c", Rvalue::cmp(Pred::Gt, Operand::var("n"), Operand::Int(0)));
        b.branch("c", body, exit);
        b.switch_to(body);
        b.call("work", []);
        b.jump(head);
        b.switch_to(exit);
        b.ret(0);
        b.finish().unwrap()
    }

    #[test]
    fn detects_back_edge() {
        let f = looped();
        let cfg = Cfg::new(&f);
        assert!(cfg.has_loops());
        assert!(cfg.is_back_edge(BlockId(2), BlockId(1)));
        assert!(!cfg.is_back_edge(BlockId(0), BlockId(1)));
    }

    #[test]
    fn predecessors() {
        let f = looped();
        let cfg = Cfg::new(&f);
        let mut head_preds = cfg.preds(BlockId(1)).to_vec();
        head_preds.sort();
        assert_eq!(head_preds, vec![BlockId(0), BlockId(2)]);
        assert!(cfg.preds(BlockId(0)).is_empty());
    }

    #[test]
    fn unreachable_blocks_detected() {
        let mut b = FunctionBuilder::new("f", Vec::<String>::new());
        let dead = b.new_block();
        b.ret_void();
        b.switch_to(dead);
        b.ret_void();
        let f = b.finish().unwrap();
        let cfg = Cfg::new(&f);
        assert!(cfg.is_reachable(BlockId(0)));
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.len(), 2);
        assert!(!cfg.is_empty());
    }

    #[test]
    fn acyclic_function_has_no_loops() {
        let mut b = FunctionBuilder::new("f", Vec::<String>::new());
        b.ret_void();
        let f = b.finish().unwrap();
        assert!(!Cfg::new(&f).has_loops());
    }
}
