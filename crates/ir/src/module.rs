//! Modules (compilation units) and whole programs.

use std::collections::HashMap;
use std::fmt;

use crate::Function;

/// A compilation unit: a named collection of function definitions plus the
/// names of external functions it references (functions defined elsewhere
/// or known only through predefined summaries, §5.1).
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// The module name (e.g. a source file path).
    pub name: String,
    functions: Vec<Function>,
    externs: Vec<String>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module { name: name.into(), functions: Vec::new(), externs: Vec::new() }
    }

    /// Adds a function definition.
    pub fn push_function(&mut self, func: Function) {
        self.functions.push(func);
    }

    /// Declares an external function referenced by this module.
    pub fn push_extern(&mut self, name: impl Into<String>) {
        self.externs.push(name.into());
    }

    /// The function definitions in this module.
    #[must_use]
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// The declared external function names.
    #[must_use]
    pub fn externs(&self) -> &[String] {
        &self.externs
    }

    /// Looks up a function definition by name.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name() == name)
    }

    /// Names of symbols this module *uses* but does not define — the edges
    /// of the module dependency graph of §5.3.
    pub fn undefined_references(&self) -> Vec<&str> {
        let defined: std::collections::HashSet<&str> =
            self.functions.iter().map(Function::name).collect();
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for func in &self.functions {
            for callee in func.callees() {
                if !defined.contains(callee) && seen.insert(callee) {
                    out.push(callee);
                }
            }
        }
        out
    }
}

/// An error combining modules into a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// Two strong (non-weak) definitions of the same function.
    DuplicateFunction(String),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::DuplicateFunction(name) => {
                write!(f, "duplicate strong definition of function `{name}`")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A whole program: one or more linked modules with a global function
/// namespace.
///
/// Duplicate *weak* definitions (functions defined in headers, marked weak
/// per §5.3 of the paper) are merged: the first strong definition wins; if
/// all copies are weak, the first weak copy is kept.
#[derive(Clone, Debug, Default)]
pub struct Program {
    modules: Vec<Module>,
    /// function name → (module index, function index)
    index: HashMap<String, (usize, usize)>,
}

impl Program {
    /// Creates an empty program.
    #[must_use]
    pub fn new() -> Program {
        Program::default()
    }

    /// Creates a program from a single module.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::DuplicateFunction`] on duplicate strong
    /// definitions within the module.
    pub fn from_module(module: Module) -> Result<Program, ProgramError> {
        let mut p = Program::new();
        p.link(module)?;
        Ok(p)
    }

    /// Links a module into the program (the §5.3 weak-symbol merge).
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::DuplicateFunction`] when two strong
    /// definitions of the same name collide.
    pub fn link(&mut self, module: Module) -> Result<(), ProgramError> {
        let mod_idx = self.modules.len();
        for (fn_idx, func) in module.functions().iter().enumerate() {
            match self.index.get(func.name()) {
                None => {
                    self.index.insert(func.name().to_owned(), (mod_idx, fn_idx));
                }
                Some(&(mi, fi)) => {
                    let existing = &self.modules[mi].functions[fi];
                    match (existing.weak, func.weak) {
                        // Existing weak, new strong: the strong one wins.
                        (true, false) => {
                            self.index.insert(func.name().to_owned(), (mod_idx, fn_idx));
                        }
                        // New weak (existing anything): keep existing.
                        (_, true) => {}
                        (false, false) => {
                            return Err(ProgramError::DuplicateFunction(
                                func.name().to_owned(),
                            ));
                        }
                    }
                }
            }
        }
        self.modules.push(module);
        Ok(())
    }

    /// The linked modules, in link order.
    #[must_use]
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Looks up the canonical definition of `name` (after weak-symbol
    /// resolution).
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.index.get(name).map(|&(mi, fi)| &self.modules[mi].functions[fi])
    }

    /// Iterates over the canonical function definitions in a deterministic
    /// order (sorted by name).
    pub fn functions(&self) -> Vec<&Function> {
        let mut names: Vec<&String> = self.index.keys().collect();
        names.sort();
        names.into_iter().map(|n| self.function(n).expect("indexed")).collect()
    }

    /// Number of canonical function definitions.
    #[must_use]
    pub fn function_count(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionBuilder;

    fn func(name: &str, weak: bool) -> Function {
        let mut b = FunctionBuilder::new(name, Vec::<String>::new());
        b.set_weak(weak);
        b.ret_void();
        b.finish().unwrap()
    }

    fn caller(name: &str, callee: &str) -> Function {
        let mut b = FunctionBuilder::new(name, Vec::<String>::new());
        b.call(callee, []);
        b.ret_void();
        b.finish().unwrap()
    }

    #[test]
    fn strong_duplicate_is_error() {
        let mut m1 = Module::new("a.ril");
        m1.push_function(func("f", false));
        let mut m2 = Module::new("b.ril");
        m2.push_function(func("f", false));
        let mut p = Program::new();
        p.link(m1).unwrap();
        assert_eq!(p.link(m2), Err(ProgramError::DuplicateFunction("f".into())));
    }

    #[test]
    fn weak_symbols_merge() {
        let mut m1 = Module::new("a.ril");
        m1.push_function(func("f", true));
        let mut m2 = Module::new("b.ril");
        m2.push_function(func("f", true));
        let mut p = Program::new();
        p.link(m1).unwrap();
        p.link(m2).unwrap();
        assert_eq!(p.function_count(), 1);
        assert!(p.function("f").unwrap().weak);
    }

    #[test]
    fn strong_definition_overrides_weak() {
        let mut m1 = Module::new("a.ril");
        m1.push_function(func("f", true));
        let mut m2 = Module::new("b.ril");
        m2.push_function(func("f", false));
        let mut p = Program::new();
        p.link(m1).unwrap();
        p.link(m2).unwrap();
        assert!(!p.function("f").unwrap().weak);
    }

    #[test]
    fn undefined_references() {
        let mut m = Module::new("a.ril");
        m.push_function(caller("f", "g"));
        m.push_function(caller("g", "pm_runtime_get"));
        assert_eq!(m.undefined_references(), vec!["pm_runtime_get"]);
    }

    #[test]
    fn functions_listed_deterministically() {
        let mut m = Module::new("a.ril");
        m.push_function(func("zeta", false));
        m.push_function(func("alpha", false));
        let p = Program::from_module(m).unwrap();
        let names: Vec<&str> = p.functions().iter().map(|f| f.name()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn module_lookup_and_externs() {
        let mut m = Module::new("a.ril");
        m.push_function(func("f", false));
        m.push_extern("pm_runtime_get");
        assert!(m.function("f").is_some());
        assert!(m.function("g").is_none());
        assert_eq!(m.externs(), &["pm_runtime_get".to_owned()]);
    }
}
