//! Modules (compilation units) and whole programs.

use std::collections::HashMap;
use std::fmt;

use crate::{Function, Sym};

/// A compilation unit: a named collection of function definitions plus the
/// names of external functions it references (functions defined elsewhere
/// or known only through predefined summaries, §5.1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Module {
    /// The module name (e.g. a source file path).
    pub name: Sym,
    functions: Vec<Function>,
    externs: Vec<Sym>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<Sym>) -> Module {
        Module { name: name.into(), functions: Vec::new(), externs: Vec::new() }
    }

    /// Adds a function definition.
    pub fn push_function(&mut self, func: Function) {
        self.functions.push(func);
    }

    /// Declares an external function referenced by this module.
    pub fn push_extern(&mut self, name: impl Into<Sym>) {
        self.externs.push(name.into());
    }

    /// The function definitions in this module.
    #[must_use]
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// The declared external function names.
    #[must_use]
    pub fn externs(&self) -> &[Sym] {
        &self.externs
    }

    /// Looks up a function definition by name.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&Function> {
        let sym = Sym::lookup(name)?;
        self.functions.iter().find(|f| f.name_sym() == sym)
    }

    /// Names of symbols this module *uses* but does not define — the edges
    /// of the module dependency graph of §5.3.
    pub fn undefined_references(&self) -> Vec<&'static str> {
        let defined: std::collections::HashSet<Sym> =
            self.functions.iter().map(Function::name_sym).collect();
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for func in &self.functions {
            for callee in func.callee_syms() {
                if !defined.contains(&callee) && seen.insert(callee) {
                    out.push(callee.as_str());
                }
            }
        }
        out
    }
}

/// An error combining modules into a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// Two strong (non-weak) definitions of the same function.
    DuplicateFunction(String),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::DuplicateFunction(name) => {
                write!(f, "duplicate strong definition of function `{name}`")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A whole program: one or more linked modules with a global function
/// namespace.
///
/// Duplicate *weak* definitions (functions defined in headers, marked weak
/// per §5.3 of the paper) are merged: the first strong definition wins; if
/// all copies are weak, the first weak copy is kept.
#[derive(Clone, Debug, Default)]
pub struct Program {
    modules: Vec<Module>,
    /// function name → (module index, function index). Keyed by interned
    /// handle: inserts and lookups hash 4 bytes, and lookups by text go
    /// through the non-inserting [`Sym::lookup`] so probing for unknown
    /// names never grows the intern table.
    index: HashMap<Sym, (usize, usize)>,
}

impl Program {
    /// Creates an empty program.
    #[must_use]
    pub fn new() -> Program {
        Program::default()
    }

    /// Creates a program from a single module.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::DuplicateFunction`] on duplicate strong
    /// definitions within the module.
    pub fn from_module(module: Module) -> Result<Program, ProgramError> {
        let mut p = Program::new();
        p.link(module)?;
        Ok(p)
    }

    /// Pre-sizes the program for a known load: `modules` more modules
    /// holding `functions` more functions in total. Bulk callers that
    /// link a whole snapshot or corpus at once avoid the incremental
    /// rehash/regrow cost of the symbol index this way; purely an
    /// allocation hint, never required for correctness.
    pub fn reserve(&mut self, modules: usize, functions: usize) {
        self.modules.reserve(modules);
        self.index.reserve(functions);
    }

    /// Links a module into the program (the §5.3 weak-symbol merge).
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::DuplicateFunction`] when two strong
    /// definitions of the same name collide.
    pub fn link(&mut self, module: Module) -> Result<(), ProgramError> {
        let mod_idx = self.modules.len();
        for (fn_idx, func) in module.functions().iter().enumerate() {
            match self.index.get(&func.name_sym()) {
                None => {
                    self.index.insert(func.name_sym(), (mod_idx, fn_idx));
                }
                Some(&(mi, fi)) => {
                    let existing = &self.modules[mi].functions[fi];
                    match (existing.weak, func.weak) {
                        // Existing weak, new strong: the strong one wins.
                        (true, false) => {
                            self.index.insert(func.name_sym(), (mod_idx, fn_idx));
                        }
                        // New weak (existing anything): keep existing.
                        (_, true) => {}
                        (false, false) => {
                            return Err(ProgramError::DuplicateFunction(
                                func.name().to_owned(),
                            ));
                        }
                    }
                }
            }
        }
        self.modules.push(module);
        Ok(())
    }

    /// Replaces the already-linked module with the same [`Module::name`]
    /// (or links `module` fresh when no module of that name exists) and
    /// rebuilds the symbol index. This is the incremental-relink
    /// operation `rid serve` uses for `patch` requests: it touches only
    /// the index — no other module is cloned or re-linked, so its cost
    /// is O(total functions) hash inserts, not a deep copy of the
    /// program.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::DuplicateFunction`] when the replacement
    /// introduces a second strong definition of some name. The program
    /// is left unchanged in that case.
    pub fn replace_module(&mut self, module: Module) -> Result<(), ProgramError> {
        let position = self.modules.iter().position(|m| m.name == module.name);

        // Fast path for the overwhelmingly common edit — same functions,
        // new bodies. When the replacement defines exactly the same
        // (name, weakness) signature as the module it replaces, no
        // winner of the weak-symbol resolution can change anywhere in
        // the program; only this module's intra-module positions can.
        // Patch those index entries directly instead of rebuilding the
        // whole index.
        if let Some(i) = position {
            fn signature(m: &Module) -> Option<HashMap<Sym, bool>> {
                let sig: HashMap<Sym, bool> =
                    m.functions().iter().map(|f| (f.name_sym(), f.weak)).collect();
                // A module with an internal duplicate name takes the
                // slow path: index resolution within it is positional.
                (sig.len() == m.functions().len()).then_some(sig)
            }
            if signature(&self.modules[i]).is_some_and(|old| Some(old) == signature(&module)) {
                let positions: HashMap<Sym, usize> = module
                    .functions()
                    .iter()
                    .enumerate()
                    .map(|(fi, f)| (f.name_sym(), fi))
                    .collect();
                for (name, (mi, fi)) in self.index.iter_mut() {
                    if *mi == i {
                        *fi = positions[name];
                    }
                }
                self.modules[i] = module;
                return Ok(());
            }
        }

        let rollback = match position {
            Some(i) => Some((i, std::mem::replace(&mut self.modules[i], module))),
            None => {
                self.modules.push(module);
                None
            }
        };
        match self.reindex() {
            Ok(()) => Ok(()),
            Err(e) => {
                match rollback {
                    Some((i, previous)) => self.modules[i] = previous,
                    None => {
                        self.modules.pop();
                    }
                }
                self.reindex().expect("previous state was consistent");
                Err(e)
            }
        }
    }

    /// Unlinks the module named `name`, if present, and rebuilds the
    /// symbol index; weak definitions shadowed by the removed module
    /// become canonical again. Returns whether a module was removed.
    pub fn remove_module(&mut self, name: &str) -> bool {
        match self.modules.iter().position(|m| m.name == name) {
            Some(i) => {
                self.modules.remove(i);
                self.reindex().expect("removing a module cannot introduce duplicates");
                true
            }
            None => false,
        }
    }

    /// Rebuilds `index` from `modules` in link order, applying the same
    /// weak-symbol resolution as [`Program::link`].
    fn reindex(&mut self) -> Result<(), ProgramError> {
        let mut index: HashMap<Sym, (usize, usize)> = HashMap::new();
        for (mod_idx, module) in self.modules.iter().enumerate() {
            for (fn_idx, func) in module.functions().iter().enumerate() {
                match index.get(&func.name_sym()) {
                    None => {
                        index.insert(func.name_sym(), (mod_idx, fn_idx));
                    }
                    Some(&(mi, fi)) => {
                        let existing = &self.modules[mi].functions[fi];
                        match (existing.weak, func.weak) {
                            (true, false) => {
                                index.insert(func.name_sym(), (mod_idx, fn_idx));
                            }
                            (_, true) => {}
                            (false, false) => {
                                return Err(ProgramError::DuplicateFunction(
                                    func.name().to_owned(),
                                ));
                            }
                        }
                    }
                }
            }
        }
        self.index = index;
        Ok(())
    }

    /// The linked modules, in link order.
    #[must_use]
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Looks up the canonical definition of `name` (after weak-symbol
    /// resolution). Never grows the intern table for unknown names.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.function_sym(Sym::lookup(name)?)
    }

    /// Looks up the canonical definition by interned handle (the
    /// allocation- and hash-free flavor of [`Program::function`]).
    #[must_use]
    pub fn function_sym(&self, name: Sym) -> Option<&Function> {
        self.index.get(&name).map(|&(mi, fi)| &self.modules[mi].functions[fi])
    }

    /// Iterates over the canonical function definitions in a deterministic
    /// order (sorted by name).
    pub fn functions(&self) -> Vec<&Function> {
        let mut names: Vec<Sym> = self.index.keys().copied().collect();
        names.sort_unstable();
        names.into_iter().map(|n| self.function_sym(n).expect("indexed")).collect()
    }

    /// Number of canonical function definitions.
    #[must_use]
    pub fn function_count(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionBuilder;

    fn func(name: &str, weak: bool) -> Function {
        let mut b = FunctionBuilder::new(name, Vec::<String>::new());
        b.set_weak(weak);
        b.ret_void();
        b.finish().unwrap()
    }

    fn caller(name: &str, callee: &str) -> Function {
        let mut b = FunctionBuilder::new(name, Vec::<String>::new());
        b.call(callee, []);
        b.ret_void();
        b.finish().unwrap()
    }

    #[test]
    fn strong_duplicate_is_error() {
        let mut m1 = Module::new("a.ril");
        m1.push_function(func("f", false));
        let mut m2 = Module::new("b.ril");
        m2.push_function(func("f", false));
        let mut p = Program::new();
        p.link(m1).unwrap();
        assert_eq!(p.link(m2), Err(ProgramError::DuplicateFunction("f".into())));
    }

    #[test]
    fn weak_symbols_merge() {
        let mut m1 = Module::new("a.ril");
        m1.push_function(func("f", true));
        let mut m2 = Module::new("b.ril");
        m2.push_function(func("f", true));
        let mut p = Program::new();
        p.link(m1).unwrap();
        p.link(m2).unwrap();
        assert_eq!(p.function_count(), 1);
        assert!(p.function("f").unwrap().weak);
    }

    #[test]
    fn strong_definition_overrides_weak() {
        let mut m1 = Module::new("a.ril");
        m1.push_function(func("f", true));
        let mut m2 = Module::new("b.ril");
        m2.push_function(func("f", false));
        let mut p = Program::new();
        p.link(m1).unwrap();
        p.link(m2).unwrap();
        assert!(!p.function("f").unwrap().weak);
    }

    #[test]
    fn undefined_references() {
        let mut m = Module::new("a.ril");
        m.push_function(caller("f", "g"));
        m.push_function(caller("g", "pm_runtime_get"));
        assert_eq!(m.undefined_references(), vec!["pm_runtime_get"]);
    }

    #[test]
    fn functions_listed_deterministically() {
        let mut m = Module::new("a.ril");
        m.push_function(func("zeta", false));
        m.push_function(func("alpha", false));
        let p = Program::from_module(m).unwrap();
        let names: Vec<&str> = p.functions().iter().map(|f| f.name()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn lookup_of_unknown_name_does_not_intern() {
        let mut m = Module::new("a.ril");
        m.push_function(func("known_fn_lookup_probe", false));
        let p = Program::from_module(m).unwrap();
        let before = Sym::interned_count();
        assert!(p.function("never-defined-name-93ab7c").is_none());
        assert_eq!(Sym::interned_count(), before);
        assert!(p.function("known_fn_lookup_probe").is_some());
    }

    #[test]
    fn replace_module_swaps_definitions_in_place() {
        let mut m1 = Module::new("a.ril");
        m1.push_function(func("f", false));
        let mut m2 = Module::new("b.ril");
        m2.push_function(func("g", false));
        let mut p = Program::new();
        p.link(m1).unwrap();
        p.link(m2).unwrap();

        // Same module name: the new definitions replace the old ones.
        let mut m1b = Module::new("a.ril");
        m1b.push_function(func("f2", false));
        p.replace_module(m1b).unwrap();
        assert!(p.function("f").is_none());
        assert!(p.function("f2").is_some());
        assert!(p.function("g").is_some());
        assert_eq!(p.modules().len(), 2);

        // Unknown module name: linked fresh.
        let mut m3 = Module::new("c.ril");
        m3.push_function(func("h", false));
        p.replace_module(m3).unwrap();
        assert_eq!(p.modules().len(), 3);
        assert_eq!(p.function_count(), 3);

        // And removal unlinks exactly that module's definitions.
        assert!(p.remove_module("c.ril"));
        assert!(!p.remove_module("c.ril"));
        assert!(p.function("h").is_none());
        assert_eq!(p.function_count(), 2);
    }

    #[test]
    fn replace_module_same_signature_fixes_up_positions() {
        // Same (name, weakness) signature but reordered functions: the
        // fast path must repair the intra-module index positions.
        let mut m1 = Module::new("a.ril");
        m1.push_function(caller("f", "x"));
        m1.push_function(caller("g", "x"));
        let mut p = Program::from_module(m1).unwrap();

        let mut m1b = Module::new("a.ril");
        m1b.push_function(caller("g", "y"));
        m1b.push_function(caller("f", "z"));
        p.replace_module(m1b).unwrap();
        assert_eq!(p.function_count(), 2);
        let callees = |n: &str| p.function(n).unwrap().callees().collect::<Vec<_>>();
        assert_eq!(callees("f"), vec!["z"]);
        assert_eq!(callees("g"), vec!["y"]);
    }

    #[test]
    fn replace_module_rolls_back_on_duplicate() {
        let mut m1 = Module::new("a.ril");
        m1.push_function(func("f", false));
        let mut m2 = Module::new("b.ril");
        m2.push_function(func("g", false));
        let mut p = Program::new();
        p.link(m1).unwrap();
        p.link(m2).unwrap();

        // Replacement would redefine `g` strongly — rejected, untouched.
        let mut bad = Module::new("a.ril");
        bad.push_function(func("g", false));
        assert_eq!(
            p.replace_module(bad),
            Err(ProgramError::DuplicateFunction("g".into()))
        );
        assert!(p.function("f").is_some());
        assert_eq!(p.function_count(), 2);
    }

    #[test]
    fn module_lookup_and_externs() {
        let mut m = Module::new("a.ril");
        m.push_function(func("f", false));
        m.push_extern("pm_runtime_get");
        assert!(m.function("f").is_some());
        assert!(m.function("g").is_none());
        assert_eq!(m.externs(), &["pm_runtime_get".to_owned()]);
    }
}
