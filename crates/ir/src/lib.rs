//! # rid-ir — the abstract program representation analyzed by RID
//!
//! This crate implements the abstract program of Figure 3 in the RID paper
//! (*RID: Finding Reference Count Bugs with Inconsistent Path Pair Checking*,
//! ASPLOS 2016): straight-line instructions (assignments, field loads, a
//! `random` generator modelling non-deterministic reads such as device
//! registers, and function calls) organised into basic blocks terminated by
//! jumps, two-way branches on comparison-defined variables, or returns.
//!
//! The IR deliberately matches the paper's abstraction:
//!
//! * values are integers; pointers are integers with `null == 0`;
//! * there is **no arithmetic** — reference counts are only changed through
//!   refcount APIs, so `x = v1 + v2` never needs to be represented;
//! * branch conditions are variables defined by an (in)equality
//!   ([`Rvalue::Cmp`]);
//! * a [`Rvalue::Random`] models any operation whose result the analysis
//!   cannot predict (I/O, hardware registers, unmodelled intrinsics);
//! * field *stores* ([`Inst::FieldStore`]) exist syntactically but are
//!   outside the abstraction — the symbolic executor ignores them, which is
//!   one of the false-positive sources §6.4 of the paper discusses.
//!
//! ## Example
//!
//! Build the `foo()` function of Figure 1 programmatically:
//!
//! ```
//! use rid_ir::{FunctionBuilder, Operand, Pred, Rvalue};
//!
//! let mut b = FunctionBuilder::new("foo", ["dev"]);
//! let exit = b.new_block();
//! let body = b.new_block();
//! b.assume(Pred::Ne, Operand::var("dev"), Operand::Null);
//! b.assign("v", Rvalue::call("reg_read", [Operand::var("dev"), Operand::Int(0x54)]));
//! b.assign("t", Rvalue::cmp(Pred::Le, Operand::var("v"), Operand::Int(0)));
//! b.branch("t", exit, body);
//! b.switch_to(body);
//! b.call("inc_pmcount", [Operand::var("dev")]);
//! b.jump(exit);
//! b.switch_to(exit);
//! b.ret(Operand::Int(0));
//! let func = b.finish().expect("valid function");
//! assert_eq!(func.name(), "foo");
//! assert_eq!(func.blocks().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod cfg;
pub mod codec;
mod display;
mod dom;
mod func;
mod inst;
mod intern;
pub mod mem;
mod module;
mod pred;
mod validate;

pub use build::FunctionBuilder;
pub use codec::{decode_modules, decode_modules_trusted, encode_modules, CodecError};
pub use cfg::Cfg;
pub use dom::{control_dependencies, dominators, post_dominators, Dominators, PostDominators};
pub use func::{BasicBlock, BlockId, BlockRef, Blocks, BlocksIter, Function, InstId, Terminator};
pub use inst::{Inst, Operand, Rvalue};
pub use intern::Sym;
pub use mem::{measure_program, MemoryFootprint};
pub use module::{Module, Program, ProgramError};
pub use pred::Pred;
pub use validate::{validate_function, ValidateError};
