//! Textual rendering of functions and modules.
//!
//! The output resembles the instruction syntax of Figure 3 in the paper and
//! is meant for diagnostics and golden tests; it is not re-parsed.

use std::fmt;

use crate::{Function, Module};

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name())?;
        for (i, p) in self.params().iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(p)?;
        }
        writeln!(f, ") {{")?;
        for (i, block) in self.blocks().iter().enumerate() {
            writeln!(f, "bb{i}:")?;
            for inst in block.insts {
                writeln!(f, "    {inst}")?;
            }
            writeln!(f, "    {}", block.term)?;
        }
        f.write_str("}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module {} {{", self.name)?;
        for ext in self.externs() {
            writeln!(f, "extern fn {ext};")?;
        }
        for (i, func) in self.functions().iter().enumerate() {
            if i > 0 || !self.externs().is_empty() {
                writeln!(f)?;
            }
            writeln!(f, "{func}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use crate::{FunctionBuilder, Module, Operand, Pred, Rvalue};

    #[test]
    fn function_rendering() {
        let mut b = FunctionBuilder::new("foo", ["dev"]);
        let exit = b.new_block();
        let body = b.new_block();
        b.assume(Pred::Ne, Operand::var("dev"), Operand::Null);
        b.assign("v", Rvalue::call("reg_read", [Operand::var("dev"), Operand::Int(84)]));
        b.assign("t", Rvalue::cmp(Pred::Le, Operand::var("v"), Operand::Int(0)));
        b.branch("t", exit, body);
        b.switch_to(body);
        b.call("inc_pmcount", [Operand::var("dev")]);
        b.jump(exit);
        b.switch_to(exit);
        b.ret(0);
        let f = b.finish().unwrap();
        let text = f.to_string();
        assert!(text.starts_with("fn foo(dev) {"));
        assert!(text.contains("v = reg_read(dev, 84)"));
        assert!(text.contains("branch t, bb1, bb2"));
        assert!(text.contains("return 0"));
        assert!(text.ends_with('}'));
    }

    #[test]
    fn module_rendering() {
        let mut m = Module::new("demo");
        m.push_extern("pm_runtime_get");
        let mut b = FunctionBuilder::new("f", Vec::<String>::new());
        b.ret_void();
        m.push_function(b.finish().unwrap());
        let text = m.to_string();
        assert!(text.starts_with("module demo {"));
        assert!(text.contains("extern fn pm_runtime_get;"));
        assert!(text.contains("fn f() {"));
    }
}
