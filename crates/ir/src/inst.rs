//! Instructions and operands of the abstract program (Figure 3).
//!
//! All names (variables, fields, callees) are interned [`Sym`] handles:
//! an [`Operand`] is 16 bytes and `Clone` is a bitwise copy, where the
//! pre-interning representation carried a 24-byte `String` header plus a
//! heap block per name occurrence.

use std::fmt;

use crate::{Pred, Sym};

/// An operand of an instruction: a variable or a constant.
///
/// Pointers are modelled as integers, with [`Operand::Null`] standing for
/// the null pointer (integer 0 in the analysis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operand {
    /// A local variable or formal parameter, by interned name.
    Var(Sym),
    /// An integer constant.
    Int(i64),
    /// A boolean constant.
    Bool(bool),
    /// The null pointer constant.
    Null,
    /// A reference to a function (`@name` in RIL), used to pass callbacks
    /// to registration APIs. Opaque to the core abstraction; consumed by
    /// the callback-contract extension (see `rid-core`'s `callbacks`).
    FuncRef(Sym),
}

impl Operand {
    /// Convenience constructor for a variable operand.
    ///
    /// ```
    /// use rid_ir::{Operand, Sym};
    /// assert_eq!(Operand::var("x"), Operand::Var(Sym::new("x")));
    /// ```
    pub fn var(name: impl Into<Sym>) -> Operand {
        Operand::Var(name.into())
    }

    /// Returns the variable name if this operand is a variable.
    #[must_use]
    pub fn as_var(&self) -> Option<&'static str> {
        match self {
            Operand::Var(name) => Some(name.as_str()),
            _ => None,
        }
    }

    /// Returns the interned variable handle if this operand is a variable
    /// (the allocation-free flavor of [`Operand::as_var`]).
    #[must_use]
    pub fn as_var_sym(&self) -> Option<Sym> {
        match self {
            Operand::Var(name) => Some(*name),
            _ => None,
        }
    }

    /// Whether the operand is a constant (not a variable).
    #[must_use]
    pub fn is_const(&self) -> bool {
        !matches!(self, Operand::Var(_))
    }

    /// The referenced function name, if this operand is a function
    /// reference.
    #[must_use]
    pub fn as_func_ref(&self) -> Option<&'static str> {
        match self {
            Operand::FuncRef(name) => Some(name.as_str()),
            _ => None,
        }
    }
}

impl From<i64> for Operand {
    fn from(value: i64) -> Self {
        Operand::Int(value)
    }
}

impl From<bool> for Operand {
    fn from(value: bool) -> Self {
        Operand::Bool(value)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(name) => f.write_str(name.as_str()),
            Operand::Int(value) => write!(f, "{value}"),
            Operand::Bool(value) => write!(f, "{value}"),
            Operand::Null => f.write_str("null"),
            Operand::FuncRef(name) => write!(f, "@{name}"),
        }
    }
}

/// The right-hand side of an assignment.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Rvalue {
    /// `x = v` — copy an operand.
    Use(Operand),
    /// `x = y.field` — load a structure field.
    FieldLoad {
        /// The base variable holding the structure.
        base: Sym,
        /// The field name.
        field: Sym,
    },
    /// `x = random` — a non-deterministic value (e.g. a device register
    /// read). Each occurrence yields an independent unknown.
    Random,
    /// `x = v1 p v2` — a comparison; the only way to define a branch
    /// condition.
    Cmp {
        /// The comparison predicate.
        pred: Pred,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `x = fn(v1, ..., vn)` — a call whose result is used.
    Call {
        /// Name of the called function.
        callee: Sym,
        /// Actual arguments.
        args: Vec<Operand>,
    },
}

impl Rvalue {
    /// Convenience constructor for a comparison rvalue.
    pub fn cmp(pred: Pred, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Rvalue {
        Rvalue::Cmp { pred, lhs: lhs.into(), rhs: rhs.into() }
    }

    /// Convenience constructor for a call rvalue.
    pub fn call(callee: impl Into<Sym>, args: impl IntoIterator<Item = Operand>) -> Rvalue {
        Rvalue::Call { callee: callee.into(), args: args.into_iter().collect() }
    }

    /// Convenience constructor for a field load.
    pub fn field(base: impl Into<Sym>, field: impl Into<Sym>) -> Rvalue {
        Rvalue::FieldLoad { base: base.into(), field: field.into() }
    }

    /// The callee name, if this rvalue is a call.
    #[must_use]
    pub fn callee(&self) -> Option<&'static str> {
        match self {
            Rvalue::Call { callee, .. } => Some(callee.as_str()),
            _ => None,
        }
    }

    /// The interned callee handle, if this rvalue is a call.
    #[must_use]
    pub fn callee_sym(&self) -> Option<Sym> {
        match self {
            Rvalue::Call { callee, .. } => Some(*callee),
            _ => None,
        }
    }
}

impl fmt::Display for Rvalue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rvalue::Use(op) => write!(f, "{op}"),
            Rvalue::FieldLoad { base, field } => write!(f, "{base}.{field}"),
            Rvalue::Random => f.write_str("random"),
            Rvalue::Cmp { pred, lhs, rhs } => write!(f, "{lhs} {pred} {rhs}"),
            Rvalue::Call { callee, args } => {
                write!(f, "{callee}(")?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// A non-terminator instruction.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `dst = rvalue`.
    Assign {
        /// Destination variable.
        dst: Sym,
        /// Value computed.
        rvalue: Rvalue,
    },
    /// `fn(v1, ..., vn)` — a call whose result (if any) is discarded.
    Call {
        /// Name of the called function.
        callee: Sym,
        /// Actual arguments.
        args: Vec<Operand>,
    },
    /// `assume lhs p rhs` — a path-pruning assumption, used to model
    /// assertions (`assert(dev != NULL)` in Figure 1). Paths violating the
    /// assumption are infeasible.
    Assume {
        /// The comparison predicate.
        pred: Pred,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `base.field = value` — a field store.
    ///
    /// Field stores are *outside* the paper's abstraction (§5.4): the
    /// symbolic executor ignores them, which can make two genuinely
    /// distinguishable paths look identical and thus produce false
    /// positives. They are kept in the IR so realistic programs can be
    /// represented faithfully.
    FieldStore {
        /// The base variable holding the structure.
        base: Sym,
        /// The field name.
        field: Sym,
        /// The value stored.
        value: Operand,
    },
}

impl Inst {
    /// The callee name, if this instruction performs a call.
    #[must_use]
    pub fn callee(&self) -> Option<&'static str> {
        self.callee_sym().map(Sym::as_str)
    }

    /// The interned callee handle, if this instruction performs a call.
    #[must_use]
    pub fn callee_sym(&self) -> Option<Sym> {
        match self {
            Inst::Call { callee, .. } => Some(*callee),
            Inst::Assign { rvalue, .. } => rvalue.callee_sym(),
            _ => None,
        }
    }

    /// The destination variable, if this instruction defines one.
    #[must_use]
    pub fn def(&self) -> Option<&'static str> {
        match self {
            Inst::Assign { dst, .. } => Some(dst.as_str()),
            _ => None,
        }
    }

    /// The interned destination handle, if this instruction defines one.
    #[must_use]
    pub fn def_sym(&self) -> Option<Sym> {
        match self {
            Inst::Assign { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Iterates over the operands used (read) by this instruction.
    pub fn uses(&self) -> Vec<&Operand> {
        match self {
            Inst::Assign { rvalue, .. } => match rvalue {
                Rvalue::Use(op) => vec![op],
                Rvalue::FieldLoad { .. } | Rvalue::Random => vec![],
                Rvalue::Cmp { lhs, rhs, .. } => vec![lhs, rhs],
                Rvalue::Call { args, .. } => args.iter().collect(),
            },
            Inst::Call { args, .. } => args.iter().collect(),
            Inst::Assume { lhs, rhs, .. } => vec![lhs, rhs],
            Inst::FieldStore { value, .. } => vec![value],
        }
    }

    /// Variable names read by this instruction, including field-load and
    /// field-store bases.
    pub fn used_vars(&self) -> Vec<&'static str> {
        self.used_var_syms().into_iter().map(Sym::as_str).collect()
    }

    /// Interned handles of the variables read by this instruction,
    /// including field-load and field-store bases.
    pub fn used_var_syms(&self) -> Vec<Sym> {
        let mut vars: Vec<Sym> =
            self.uses().into_iter().filter_map(Operand::as_var_sym).collect();
        match self {
            Inst::Assign { rvalue: Rvalue::FieldLoad { base, .. }, .. } => vars.push(*base),
            Inst::FieldStore { base, .. } => vars.push(*base),
            _ => {}
        }
        vars
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Assign { dst, rvalue } => write!(f, "{dst} = {rvalue}"),
            Inst::Call { callee, args } => {
                write!(f, "{callee}(")?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                f.write_str(")")
            }
            Inst::Assume { pred, lhs, rhs } => write!(f, "assume {lhs} {pred} {rhs}"),
            Inst::FieldStore { base, field, value } => write!(f, "{base}.{field} = {value}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn func_ref_operand() {
        let op = Operand::FuncRef("handler".into());
        assert_eq!(op.as_func_ref(), Some("handler"));
        assert!(op.is_const());
        assert_eq!(op.to_string(), "@handler");
        assert_eq!(Operand::var("x").as_func_ref(), None);
    }

    #[test]
    fn operand_constructors() {
        assert_eq!(Operand::from(3), Operand::Int(3));
        assert_eq!(Operand::from(true), Operand::Bool(true));
        assert_eq!(Operand::var("a").as_var(), Some("a"));
        assert_eq!(Operand::var("a").as_var_sym(), Some(Sym::new("a")));
        assert_eq!(Operand::Null.as_var(), None);
        assert!(Operand::Int(0).is_const());
        assert!(!Operand::var("x").is_const());
    }

    #[test]
    fn operands_are_compact() {
        // The whole point of interning: an operand is two words, and
        // copying one never allocates.
        assert!(std::mem::size_of::<Operand>() <= 16);
    }

    #[test]
    fn inst_def_and_callee() {
        let inst = Inst::Assign {
            dst: "x".into(),
            rvalue: Rvalue::call("f", [Operand::Int(1)]),
        };
        assert_eq!(inst.def(), Some("x"));
        assert_eq!(inst.def_sym(), Some(Sym::new("x")));
        assert_eq!(inst.callee(), Some("f"));
        assert_eq!(inst.callee_sym(), Some(Sym::new("f")));

        let call = Inst::Call { callee: "g".into(), args: vec![] };
        assert_eq!(call.def(), None);
        assert_eq!(call.callee(), Some("g"));
    }

    #[test]
    fn used_vars_includes_field_base() {
        let load = Inst::Assign { dst: "x".into(), rvalue: Rvalue::field("s", "pm") };
        assert_eq!(load.used_vars(), vec!["s"]);

        let store = Inst::FieldStore {
            base: "s".into(),
            field: "pm".into(),
            value: Operand::var("v"),
        };
        let mut vars = store.used_vars();
        vars.sort_unstable();
        assert_eq!(vars, vec!["s", "v"]);
    }

    #[test]
    fn display_round_trips_shape() {
        let inst = Inst::Assign {
            dst: "t".into(),
            rvalue: Rvalue::cmp(Pred::Le, Operand::var("v"), Operand::Int(0)),
        };
        assert_eq!(inst.to_string(), "t = v <= 0");
        let assume = Inst::Assume { pred: Pred::Ne, lhs: Operand::var("d"), rhs: Operand::Null };
        assert_eq!(assume.to_string(), "assume d != null");
    }
}
