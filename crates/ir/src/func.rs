//! Functions, basic blocks, and terminators.

use std::fmt;

use crate::{Inst, Operand};

/// Identifier of a basic block within a [`Function`].
///
/// Block 0 is always the entry block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

// Serialized transparently as the block index (persisted bug reports
// carry block traces).
impl serde::Serialize for BlockId {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.0.serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for BlockId {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        u32::deserialize(deserializer).map(BlockId)
    }
}

impl BlockId {
    /// The entry block of every function.
    pub const ENTRY: BlockId = BlockId(0);

    /// The index of this block in [`Function::blocks`].
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Identifier of an instruction within a function: block + index.
///
/// Used by the symbolic executor to give stable names to call results and
/// `random` values, so that two paths sharing a prefix name the same event
/// identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId {
    /// The block containing the instruction.
    pub block: BlockId,
    /// The index of the instruction within the block.
    pub index: u32,
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block, self.index)
    }
}

/// How control leaves a basic block.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a variable (Figure 3's `branch x, l1, l2`).
    ///
    /// The condition variable should be defined by a comparison
    /// ([`crate::Rvalue::Cmp`]); branches on opaque variables are treated by
    /// the analysis as non-deterministic.
    Branch {
        /// The condition variable.
        cond: String,
        /// Successor when the condition holds.
        then_bb: BlockId,
        /// Successor when the condition does not hold.
        else_bb: BlockId,
    },
    /// Return from the function, optionally with a value.
    Return(Option<Operand>),
    /// A block that never completes (e.g. after a `panic`-like call).
    Unreachable,
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(target) => vec![*target],
            Terminator::Branch { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Terminator::Return(_) | Terminator::Unreachable => vec![],
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(target) => write!(f, "jump {target}"),
            Terminator::Branch { cond, then_bb, else_bb } => {
                write!(f, "branch {cond}, {then_bb}, {else_bb}")
            }
            Terminator::Return(Some(op)) => write!(f, "return {op}"),
            Terminator::Return(None) => f.write_str("return"),
            Terminator::Unreachable => f.write_str("unreachable"),
        }
    }
}

/// A basic block: a sequence of instructions plus a terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// The instructions of the block, in execution order.
    pub insts: Vec<Inst>,
    /// The terminator of the block.
    pub term: Terminator,
}

impl BasicBlock {
    /// Creates an empty block with the given terminator.
    #[must_use]
    pub fn new(term: Terminator) -> BasicBlock {
        BasicBlock { insts: Vec::new(), term }
    }
}

/// A function of the abstract program.
///
/// Use [`crate::FunctionBuilder`] to construct functions; the builder
/// guarantees structural validity (every block terminated, targets in
/// range).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    name: String,
    params: Vec<String>,
    blocks: Vec<BasicBlock>,
    /// Weak linkage (§5.3): duplicate weak definitions across modules are
    /// merged into one instead of rejected.
    pub weak: bool,
}

impl Function {
    /// Creates a function from raw parts.
    ///
    /// Most callers should prefer [`crate::FunctionBuilder`]. This
    /// constructor performs no validation; call
    /// [`crate::validate_function`] afterwards if the parts come from an
    /// untrusted source.
    #[must_use]
    pub fn from_raw_parts(
        name: impl Into<String>,
        params: Vec<String>,
        blocks: Vec<BasicBlock>,
    ) -> Function {
        Function { name: name.into(), params, blocks, weak: false }
    }

    /// The function name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The formal parameter names, in order.
    #[must_use]
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Index of a formal parameter by name.
    #[must_use]
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p == name)
    }

    /// All basic blocks; index `i` is block `BlockId(i)`.
    #[must_use]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// A single block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// The entry block id (always block 0).
    #[must_use]
    pub fn entry(&self) -> BlockId {
        BlockId::ENTRY
    }

    /// Total number of instructions (excluding terminators).
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Number of conditional branches, used by the selective-analysis
    /// policy of §5.2 (category-2 functions with more than three
    /// conditional branches get the default summary).
    #[must_use]
    pub fn conditional_branch_count(&self) -> usize {
        self.blocks.iter().filter(|b| matches!(b.term, Terminator::Branch { .. })).count()
    }

    /// Iterates over the names of all functions called (directly) by this
    /// function, with duplicates.
    pub fn callees(&self) -> impl Iterator<Item = &str> {
        self.blocks.iter().flat_map(|b| b.insts.iter()).filter_map(Inst::callee)
    }

    /// Function names referenced as `@name` operands (callback targets),
    /// with duplicates.
    pub fn referenced_functions(&self) -> impl Iterator<Item = &str> {
        self.blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .flat_map(|i| i.uses())
            .filter_map(Operand::as_func_ref)
    }

    /// Iterates over `(InstId, &Inst)` pairs in block order.
    pub fn insts(&self) -> impl Iterator<Item = (InstId, &Inst)> {
        self.blocks.iter().enumerate().flat_map(|(bi, b)| {
            b.insts.iter().enumerate().map(move |(ii, inst)| {
                (InstId { block: BlockId(bi as u32), index: ii as u32 }, inst)
            })
        })
    }

    /// Whether any terminator returns a value.
    #[must_use]
    pub fn has_return_value(&self) -> bool {
        self.blocks.iter().any(|b| matches!(b.term, Terminator::Return(Some(_))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, Pred, Rvalue};

    fn sample() -> Function {
        let mut b = FunctionBuilder::new("f", ["a", "b"]);
        let t = b.new_block();
        let e = b.new_block();
        b.assign("c", Rvalue::cmp(Pred::Lt, Operand::var("a"), Operand::var("b")));
        b.branch("c", t, e);
        b.switch_to(t);
        b.call("g", [Operand::var("a")]);
        b.ret(Operand::Int(1));
        b.switch_to(e);
        b.ret(Operand::Int(0));
        b.finish().unwrap()
    }

    #[test]
    fn accessors() {
        let f = sample();
        assert_eq!(f.name(), "f");
        assert_eq!(f.params(), &["a".to_owned(), "b".to_owned()]);
        assert_eq!(f.param_index("b"), Some(1));
        assert_eq!(f.param_index("z"), None);
        assert_eq!(f.blocks().len(), 3);
        assert_eq!(f.entry(), BlockId::ENTRY);
        assert_eq!(f.inst_count(), 2);
        assert_eq!(f.conditional_branch_count(), 1);
        assert!(f.has_return_value());
    }

    #[test]
    fn callees_iteration() {
        let f = sample();
        let callees: Vec<&str> = f.callees().collect();
        assert_eq!(callees, vec!["g"]);
    }

    #[test]
    fn successors() {
        assert_eq!(Terminator::Jump(BlockId(3)).successors(), vec![BlockId(3)]);
        assert!(Terminator::Return(None).successors().is_empty());
        assert!(Terminator::Unreachable.successors().is_empty());
        let branch = Terminator::Branch {
            cond: "c".into(),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(branch.successors(), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn inst_ids_are_stable() {
        let f = sample();
        let ids: Vec<InstId> = f.insts().map(|(id, _)| id).collect();
        assert_eq!(ids[0], InstId { block: BlockId(0), index: 0 });
        assert_eq!(ids[1], InstId { block: BlockId(1), index: 0 });
        assert_eq!(ids[0].to_string(), "bb0:0");
    }
}
