//! Functions, basic blocks, and terminators.
//!
//! A [`Function`] stores its body in struct-of-arrays form: one flat
//! instruction arena for the whole function, a block-start offset table,
//! and a parallel terminator array. A "block" ([`BlockRef`]) is a
//! two-word view (slice + terminator reference) materialized on demand,
//! not an owned node — walking a function touches three contiguous
//! allocations instead of one heap block per basic block.

use std::fmt;

use crate::{Inst, Operand, Sym};

/// Identifier of a basic block within a [`Function`].
///
/// Block 0 is always the entry block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

// Serialized transparently as the block index (persisted bug reports
// carry block traces).
impl serde::Serialize for BlockId {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.0.serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for BlockId {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        u32::deserialize(deserializer).map(BlockId)
    }
}

impl BlockId {
    /// The entry block of every function.
    pub const ENTRY: BlockId = BlockId(0);

    /// The index of this block in [`Function::blocks`].
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Identifier of an instruction within a function: block + index.
///
/// Used by the symbolic executor to give stable names to call results and
/// `random` values, so that two paths sharing a prefix name the same event
/// identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId {
    /// The block containing the instruction.
    pub block: BlockId,
    /// The index of the instruction within the block.
    pub index: u32,
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block, self.index)
    }
}

/// How control leaves a basic block.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a variable (Figure 3's `branch x, l1, l2`).
    ///
    /// The condition variable should be defined by a comparison
    /// ([`crate::Rvalue::Cmp`]); branches on opaque variables are treated by
    /// the analysis as non-deterministic.
    Branch {
        /// The condition variable.
        cond: Sym,
        /// Successor when the condition holds.
        then_bb: BlockId,
        /// Successor when the condition does not hold.
        else_bb: BlockId,
    },
    /// Return from the function, optionally with a value.
    Return(Option<Operand>),
    /// A block that never completes (e.g. after a `panic`-like call).
    Unreachable,
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(target) => vec![*target],
            Terminator::Branch { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Terminator::Return(_) | Terminator::Unreachable => vec![],
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(target) => write!(f, "jump {target}"),
            Terminator::Branch { cond, then_bb, else_bb } => {
                write!(f, "branch {cond}, {then_bb}, {else_bb}")
            }
            Terminator::Return(Some(op)) => write!(f, "return {op}"),
            Terminator::Return(None) => f.write_str("return"),
            Terminator::Unreachable => f.write_str("unreachable"),
        }
    }
}

/// A basic block in *builder* form: an owned instruction list plus a
/// terminator.
///
/// `BasicBlock` exists on the construction side only
/// ([`crate::FunctionBuilder`], the frontend lowerer, the binary codec).
/// [`Function::from_raw_parts`] flattens a `Vec<BasicBlock>` into the
/// struct-of-arrays layout; analysis-side code sees [`BlockRef`] views.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// The instructions of the block, in execution order.
    pub insts: Vec<Inst>,
    /// The terminator of the block.
    pub term: Terminator,
}

impl BasicBlock {
    /// Creates an empty block with the given terminator.
    #[must_use]
    pub fn new(term: Terminator) -> BasicBlock {
        BasicBlock { insts: Vec::new(), term }
    }
}

/// A borrowed view of one basic block inside a [`Function`]'s flat
/// storage: the instruction sub-slice plus the terminator. Two words +
/// a pointer; `Copy`.
#[derive(Clone, Copy, Debug)]
pub struct BlockRef<'a> {
    /// The instructions of the block, in execution order.
    pub insts: &'a [Inst],
    /// The terminator of the block.
    pub term: &'a Terminator,
}

/// Indexed view of a function's blocks (what [`Function::blocks`]
/// returns). Supports `len`/`is_empty`/`get`, and iteration via
/// [`Blocks::iter`] or `IntoIterator` — each item is a [`BlockRef`].
#[derive(Clone, Copy)]
pub struct Blocks<'a> {
    func: &'a Function,
}

impl<'a> Blocks<'a> {
    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.func.terms.len()
    }

    /// Whether the function has no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.func.terms.is_empty()
    }

    /// The `i`-th block, or `None` if out of range.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<BlockRef<'a>> {
        (i < self.len()).then(|| self.func.block(BlockId(i as u32)))
    }

    /// Iterates over the blocks in id order.
    #[must_use]
    pub fn iter(&self) -> BlocksIter<'a> {
        BlocksIter { func: self.func, next: 0 }
    }
}

impl<'a> IntoIterator for Blocks<'a> {
    type Item = BlockRef<'a>;
    type IntoIter = BlocksIter<'a>;
    fn into_iter(self) -> BlocksIter<'a> {
        self.iter()
    }
}

impl<'a> IntoIterator for &Blocks<'a> {
    type Item = BlockRef<'a>;
    type IntoIter = BlocksIter<'a>;
    fn into_iter(self) -> BlocksIter<'a> {
        self.iter()
    }
}

/// Iterator over a function's [`BlockRef`]s in id order.
pub struct BlocksIter<'a> {
    func: &'a Function,
    next: u32,
}

impl<'a> Iterator for BlocksIter<'a> {
    type Item = BlockRef<'a>;

    fn next(&mut self) -> Option<BlockRef<'a>> {
        if (self.next as usize) < self.func.terms.len() {
            let block = self.func.block(BlockId(self.next));
            self.next += 1;
            Some(block)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.func.terms.len() - self.next as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for BlocksIter<'_> {}

/// A function of the abstract program, in struct-of-arrays storage.
///
/// Use [`crate::FunctionBuilder`] to construct functions; the builder
/// guarantees structural validity (every block terminated, targets in
/// range).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    name: Sym,
    params: Box<[Sym]>,
    /// All instructions of the function, flattened in block order.
    insts: Box<[Inst]>,
    /// Block boundaries: block `i` owns `insts[starts[i] .. starts[i+1]]`.
    /// Always `terms.len() + 1` entries; the last is `insts.len()`.
    starts: Box<[u32]>,
    /// Terminator of block `i`.
    terms: Box<[Terminator]>,
    /// Weak linkage (§5.3): duplicate weak definitions across modules are
    /// merged into one instead of rejected.
    pub weak: bool,
}

impl Function {
    /// Creates a function from builder-form blocks, flattening them into
    /// the struct-of-arrays layout.
    ///
    /// Most callers should prefer [`crate::FunctionBuilder`]. This
    /// constructor performs no validation; call
    /// [`crate::validate_function`] afterwards if the parts come from an
    /// untrusted source.
    #[must_use]
    pub fn from_raw_parts<P: Into<Sym>>(
        name: impl Into<Sym>,
        params: impl IntoIterator<Item = P>,
        blocks: Vec<BasicBlock>,
    ) -> Function {
        let total: usize = blocks.iter().map(|b| b.insts.len()).sum();
        let mut insts = Vec::with_capacity(total);
        let mut starts = Vec::with_capacity(blocks.len() + 1);
        let mut terms = Vec::with_capacity(blocks.len());
        starts.push(0u32);
        for block in blocks {
            insts.extend(block.insts);
            starts.push(u32::try_from(insts.len()).expect("function > 4G instructions"));
            terms.push(block.term);
        }
        Function {
            name: name.into(),
            params: params.into_iter().map(Into::into).collect(),
            insts: insts.into_boxed_slice(),
            starts: starts.into_boxed_slice(),
            terms: terms.into_boxed_slice(),
            weak: false,
        }
    }

    /// The function name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name.as_str()
    }

    /// The interned function name.
    #[must_use]
    pub fn name_sym(&self) -> Sym {
        self.name
    }

    /// The formal parameter names, in order.
    #[must_use]
    pub fn params(&self) -> &[Sym] {
        &self.params
    }

    /// Index of a formal parameter by name.
    #[must_use]
    pub fn param_index(&self, name: &str) -> Option<usize> {
        // Fast path: an un-interned name cannot be a parameter.
        let sym = Sym::lookup(name)?;
        self.params.iter().position(|p| *p == sym)
    }

    /// All basic blocks; index `i` is block `BlockId(i)`.
    #[must_use]
    pub fn blocks(&self) -> Blocks<'_> {
        Blocks { func: self }
    }

    /// Number of basic blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.terms.len()
    }

    /// A single block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn block(&self, id: BlockId) -> BlockRef<'_> {
        let i = id.index();
        let (lo, hi) = (self.starts[i] as usize, self.starts[i + 1] as usize);
        BlockRef { insts: &self.insts[lo..hi], term: &self.terms[i] }
    }

    /// The entry block id (always block 0).
    #[must_use]
    pub fn entry(&self) -> BlockId {
        BlockId::ENTRY
    }

    /// Total number of instructions (excluding terminators).
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.insts.len()
    }

    /// The flat instruction arena, in block order. Block `i` owns the
    /// sub-slice delimited by [`Function::block`]'s view.
    #[must_use]
    pub fn inst_arena(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of conditional branches, used by the selective-analysis
    /// policy of §5.2 (category-2 functions with more than three
    /// conditional branches get the default summary).
    #[must_use]
    pub fn conditional_branch_count(&self) -> usize {
        self.terms.iter().filter(|t| matches!(t, Terminator::Branch { .. })).count()
    }

    /// Iterates over the names of all functions called (directly) by this
    /// function, with duplicates.
    pub fn callees(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.insts.iter().filter_map(Inst::callee)
    }

    /// Interned names of all functions called (directly) by this
    /// function, with duplicates.
    pub fn callee_syms(&self) -> impl Iterator<Item = Sym> + '_ {
        self.insts.iter().filter_map(Inst::callee_sym)
    }

    /// Function names referenced as `@name` operands (callback targets),
    /// with duplicates.
    pub fn referenced_functions(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.insts.iter().flat_map(|i| i.uses()).filter_map(Operand::as_func_ref)
    }

    /// Iterates over `(InstId, &Inst)` pairs in block order.
    pub fn insts(&self) -> impl Iterator<Item = (InstId, &Inst)> {
        (0..self.terms.len()).flat_map(move |bi| {
            let block = self.block(BlockId(bi as u32));
            block.insts.iter().enumerate().map(move |(ii, inst)| {
                (InstId { block: BlockId(bi as u32), index: ii as u32 }, inst)
            })
        })
    }

    /// Whether any terminator returns a value.
    #[must_use]
    pub fn has_return_value(&self) -> bool {
        self.terms.iter().any(|t| matches!(t, Terminator::Return(Some(_))))
    }

    /// Resident heap bytes of this function's storage (arenas only, not
    /// per-`Inst` argument vectors), for memory accounting.
    #[must_use]
    pub fn arena_bytes(&self) -> usize {
        self.insts.len() * std::mem::size_of::<Inst>()
            + self.starts.len() * std::mem::size_of::<u32>()
            + self.terms.len() * std::mem::size_of::<Terminator>()
            + self.params.len() * std::mem::size_of::<Sym>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, Pred, Rvalue};

    fn sample() -> Function {
        let mut b = FunctionBuilder::new("f", ["a", "b"]);
        let t = b.new_block();
        let e = b.new_block();
        b.assign("c", Rvalue::cmp(Pred::Lt, Operand::var("a"), Operand::var("b")));
        b.branch("c", t, e);
        b.switch_to(t);
        b.call("g", [Operand::var("a")]);
        b.ret(Operand::Int(1));
        b.switch_to(e);
        b.ret(Operand::Int(0));
        b.finish().unwrap()
    }

    #[test]
    fn accessors() {
        let f = sample();
        assert_eq!(f.name(), "f");
        assert_eq!(f.params(), &[Sym::new("a"), Sym::new("b")]);
        assert_eq!(f.param_index("b"), Some(1));
        assert_eq!(f.param_index("z"), None);
        assert_eq!(f.blocks().len(), 3);
        assert_eq!(f.block_count(), 3);
        assert_eq!(f.entry(), BlockId::ENTRY);
        assert_eq!(f.inst_count(), 2);
        assert_eq!(f.conditional_branch_count(), 1);
        assert!(f.has_return_value());
    }

    #[test]
    fn block_views_partition_the_arena() {
        let f = sample();
        let total: usize = f.blocks().iter().map(|b| b.insts.len()).sum();
        assert_eq!(total, f.inst_count());
        assert_eq!(f.blocks().iter().len(), 3);
        // Entry block: one Cmp assign, then the branch terminator.
        let entry = f.block(BlockId::ENTRY);
        assert_eq!(entry.insts.len(), 1);
        assert!(matches!(entry.term, Terminator::Branch { .. }));
        assert!(f.blocks().get(2).is_some());
        assert!(f.blocks().get(3).is_none());
    }

    #[test]
    fn callees_iteration() {
        let f = sample();
        let callees: Vec<&str> = f.callees().collect();
        assert_eq!(callees, vec!["g"]);
        let syms: Vec<Sym> = f.callee_syms().collect();
        assert_eq!(syms, vec![Sym::new("g")]);
    }

    #[test]
    fn successors() {
        assert_eq!(Terminator::Jump(BlockId(3)).successors(), vec![BlockId(3)]);
        assert!(Terminator::Return(None).successors().is_empty());
        assert!(Terminator::Unreachable.successors().is_empty());
        let branch = Terminator::Branch {
            cond: "c".into(),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(branch.successors(), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn inst_ids_are_stable() {
        let f = sample();
        let ids: Vec<InstId> = f.insts().map(|(id, _)| id).collect();
        assert_eq!(ids[0], InstId { block: BlockId(0), index: 0 });
        assert_eq!(ids[1], InstId { block: BlockId(1), index: 0 });
        assert_eq!(ids[0].to_string(), "bb0:0");
    }
}
