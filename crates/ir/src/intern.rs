//! The global name interner behind every identifier in the IR.
//!
//! Variable, function, field, parameter, and module names form a small,
//! heavily repeated vocabulary at corpus scale (a 270k-function kernel
//! corpus has a few hundred thousand *unique* names but tens of millions
//! of *occurrences*). Storing a [`Sym`] — a 4-byte handle into a global,
//! append-only string table — instead of an owned `String` (24 bytes of
//! header plus a heap block per occurrence) removes both the allocator
//! traffic on every IR construction and the string hashing/compares on
//! every map operation keyed by a name.
//!
//! Design points:
//!
//! * **Append-only, deduplicated.** Interning the same text twice returns
//!   the same handle, so `Sym` equality is a `u32` compare. Strings are
//!   leaked into the table and live for the process lifetime — the right
//!   trade for an analyzer whose name vocabulary is bounded by its input
//!   corpus (and whose daemon form wants names immortal anyway, so
//!   resident summaries, caches, and reports can share them).
//! * **Ordering is *string* ordering.** `Ord` compares resolved text, not
//!   handle ids. Every deterministic order in the pipeline (sorted
//!   function lists, `BTreeMap`-backed summary databases, report
//!   ordering) predates interning and is part of the byte-identity
//!   contract, so it must not shift with intern order.
//! * **Hashing is *handle* hashing.** In-memory maps keyed by `Sym` hash
//!   4 bytes instead of the string. Anything *persisted* must therefore
//!   never hash a `Sym` through `std::hash` — the content-addressed cache
//!   keys resolve to text explicitly (see `rid-core`'s `cache` module).
//! * **Serde is *string* serde.** A `Sym` serializes as its text, so every
//!   JSON artifact (summaries, caches, reports) is byte-identical to the
//!   pre-interning formats, and deserialization re-interns.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// The interner: text → id map plus id → text table. One global instance
/// behind a [`RwLock`]; reads (the common case — resolve and lookup) take
/// the shared lock, first-time interning takes the exclusive lock.
struct Interner {
    map: HashMap<&'static str, u32>,
    table: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner { map: HashMap::with_capacity(1024), table: Vec::with_capacity(1024) })
    })
}

/// An interned string handle: 4 bytes, `Copy`, O(1) equality.
///
/// Obtain one with [`Sym::new`] (or the `From` impls), resolve it with
/// [`Sym::as_str`] (or via `Deref`, so `&Sym` coerces wherever `&str` is
/// expected through method calls).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Sym(u32);

impl Sym {
    /// Interns `text` and returns its handle. Idempotent: equal text maps
    /// to equal handles for the lifetime of the process.
    #[must_use]
    pub fn new(text: &str) -> Sym {
        {
            let guard = interner().read().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(&id) = guard.map.get(text) {
                return Sym(id);
            }
        }
        let mut guard = interner().write().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(&id) = guard.map.get(text) {
            return Sym(id);
        }
        let id = u32::try_from(guard.table.len()).expect("interner overflow (> 4G names)");
        let leaked: &'static str = Box::leak(text.to_owned().into_boxed_str());
        guard.table.push(leaked);
        guard.map.insert(leaked, id);
        Sym(id)
    }

    /// The handle for `text` **if it was already interned**; `None`
    /// otherwise. Lookup paths (e.g. "does the program define a function
    /// of this name?") use this so queries for unknown names never grow
    /// the table.
    #[must_use]
    pub fn lookup(text: &str) -> Option<Sym> {
        let guard = interner().read().unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.map.get(text).map(|&id| Sym(id))
    }

    /// Resolves the handle to its text. O(1): a shared-lock table read.
    /// The returned reference is `'static` — interned strings are never
    /// freed.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        let guard = interner().read().unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.table[self.0 as usize]
    }

    /// The raw handle id. Only meaningful within this process; never
    /// persist it.
    #[must_use]
    pub fn id(self) -> u32 {
        self.0
    }

    /// Whether the interned text is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.as_str().is_empty()
    }

    /// Number of distinct interned strings in the process-global table.
    #[must_use]
    pub fn interned_count() -> usize {
        interner().read().unwrap_or_else(std::sync::PoisonError::into_inner).table.len()
    }

    /// Total bytes of interned string text (excluding table overhead),
    /// for memory-footprint accounting.
    #[must_use]
    pub fn interned_bytes() -> usize {
        interner()
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .table
            .iter()
            .map(|s| s.len())
            .sum()
    }
}

impl Default for Sym {
    fn default() -> Sym {
        Sym::new("")
    }
}

// Handle hashing: 4 bytes instead of the text. See the module docs for
// why persisted hashes must not go through this impl.
impl std::hash::Hash for Sym {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

// String ordering, not id ordering: deterministic orders must not shift
// with intern order (ids depend on first-touch order, which differs
// between e.g. a cold parse and a snapshot restore).
impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl std::ops::Deref for Sym {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `String`-compatible: quoted content, no wrapper name, so debug
        // renderings (which feed some golden tests) do not shift.
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl From<&str> for Sym {
    fn from(text: &str) -> Sym {
        Sym::new(text)
    }
}

impl From<String> for Sym {
    fn from(text: String) -> Sym {
        Sym::new(&text)
    }
}

impl From<&String> for Sym {
    fn from(text: &String) -> Sym {
        Sym::new(text)
    }
}

impl From<&Sym> for Sym {
    fn from(sym: &Sym) -> Sym {
        *sym
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Sym {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Sym> for str {
    fn eq(&self, other: &Sym) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Sym> for String {
    fn eq(&self, other: &Sym) -> bool {
        self.as_str() == other.as_str()
    }
}

// Serialized as the resolved text: every persisted artifact keeps its
// pre-interning byte layout, and handles never leak across processes.
impl serde::Serialize for Sym {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_str().serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for Sym {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        String::deserialize(deserializer).map(|s| Sym::new(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let a = Sym::new("pm_runtime_get");
        let b = Sym::new("pm_runtime_get");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "pm_runtime_get");
    }

    #[test]
    fn lookup_never_inserts() {
        let before = Sym::interned_count();
        assert!(Sym::lookup("surely-never-interned-a8f3e1").is_none());
        assert_eq!(Sym::interned_count(), before);
        let s = Sym::new("lookup-roundtrip-x1");
        assert_eq!(Sym::lookup("lookup-roundtrip-x1"), Some(s));
    }

    #[test]
    fn ordering_is_string_ordering() {
        // Intern in reverse lexicographic order: ids ascend but string
        // order must win.
        let z = Sym::new("zzz-order-probe");
        let a = Sym::new("aaa-order-probe");
        assert!(a < z);
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn string_compatible_debug_and_eq() {
        let s = Sym::new("dev");
        assert_eq!(format!("{s:?}"), "\"dev\"");
        assert_eq!(format!("{s}"), "dev");
        assert!(s == "dev");
        let owned = String::from("dev");
        assert!(s == owned);
        assert!("dev" == s);
        assert_eq!(&*s, "dev");
    }

    #[test]
    fn serde_round_trips_as_text() {
        let s = Sym::new("rc_field");
        let v = serde::__private::to_value_err::<_, serde::SimpleError>(&s).unwrap();
        assert_eq!(v, serde::Value::Str("rc_field".to_owned()));
        let back: Sym =
            serde::__private::from_value_err::<Sym, serde::SimpleError>(v).unwrap();
        assert_eq!(back, s);
    }
}
