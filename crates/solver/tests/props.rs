//! Property-based tests for the solver: satisfiability agrees with brute
//! force over a bounded integer box, and projection is sound.

use proptest::prelude::*;
use rid_ir::Pred;
use rid_solver::{project, Conj, Lit, Term, Var};

const NVARS: usize = 3;
const CONST_RANGE: i64 = 3;
/// Difference constraints with |constants| ≤ 3 over 3 variables that are
/// satisfiable in ℤ always have a solution with |v| ≤ 12 (chain length ×
/// max constant), so brute force over [-12, 12]³ is a complete oracle.
const BOX: i64 = 12;

#[derive(Clone, Debug)]
enum Side {
    Var(usize),
    Const(i64),
}

fn side_strategy() -> impl Strategy<Value = Side> {
    prop_oneof![
        (0..NVARS).prop_map(Side::Var),
        (-CONST_RANGE..=CONST_RANGE).prop_map(Side::Const),
    ]
}

fn pred_strategy() -> impl Strategy<Value = Pred> {
    prop_oneof![
        Just(Pred::Eq),
        Just(Pred::Ne),
        Just(Pred::Lt),
        Just(Pred::Le),
        Just(Pred::Gt),
        Just(Pred::Ge),
    ]
}

fn lit_strategy() -> impl Strategy<Value = (Side, Pred, Side, i64)> {
    (side_strategy(), pred_strategy(), side_strategy(), -2i64..=2)
}

fn to_term(side: &Side) -> Term {
    match side {
        Side::Var(i) => Term::var(Var::local(*i as u32)),
        Side::Const(c) => Term::int(*c),
    }
}

fn to_lit(raw: &(Side, Pred, Side, i64)) -> Lit {
    Lit::with_offset(raw.1, to_term(&raw.0), to_term(&raw.2), raw.3)
}

fn eval_side(side: &Side, assignment: &[i64]) -> i64 {
    match side {
        Side::Var(i) => assignment[*i],
        Side::Const(c) => *c,
    }
}

fn brute_force_sat(lits: &[(Side, Pred, Side, i64)]) -> bool {
    let mut assignment = [0i64; NVARS];
    fn rec(lits: &[(Side, Pred, Side, i64)], assignment: &mut [i64; NVARS], i: usize) -> bool {
        if i == NVARS {
            return lits.iter().all(|(l, p, r, off)| {
                p.eval(eval_side(l, assignment), eval_side(r, assignment) + off)
            });
        }
        for v in -BOX..=BOX {
            assignment[i] = v;
            if rec(lits, assignment, i + 1) {
                return true;
            }
        }
        false
    }
    rec(lits, &mut assignment, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The difference-logic solver agrees with a brute-force oracle.
    #[test]
    fn sat_matches_brute_force(raw in prop::collection::vec(lit_strategy(), 0..6)) {
        let conj = Conj::from_lits(raw.iter().map(to_lit));
        let expected = brute_force_sat(&raw);
        prop_assert_eq!(conj.is_sat(), expected, "conj: {}", conj);
    }

    /// Projection is implied by the original constraint (soundness) and
    /// only mentions kept terms.
    #[test]
    fn projection_is_sound(raw in prop::collection::vec(lit_strategy(), 0..6)) {
        let conj = Conj::from_lits(raw.iter().map(to_lit));
        // Keep only variable 0; eliminate the others.
        let keep = |t: &Term| t.root_var() == Some(Var::local(0));
        let projected = project(&conj, keep);
        if conj.is_sat() {
            prop_assert!(conj.implies(&projected), "conj: {} proj: {}", conj, projected);
            for lit in projected.lits() {
                let mut vars = Vec::new();
                lit.collect_vars(&mut vars);
                prop_assert!(vars.iter().all(|v| *v == Var::local(0)));
            }
            // A satisfiable constraint projects to a satisfiable one.
            prop_assert!(projected.is_sat());
        }
    }

    /// Conjunction is monotone: adding literals never turns UNSAT to SAT.
    #[test]
    fn conjunction_is_monotone(raw in prop::collection::vec(lit_strategy(), 1..6)) {
        let full = Conj::from_lits(raw.iter().map(to_lit));
        let prefix = Conj::from_lits(raw[..raw.len() - 1].iter().map(to_lit));
        if !prefix.is_sat() {
            prop_assert!(!full.is_sat());
        }
    }

    /// `implies` is reflexive on satisfiable constraints.
    #[test]
    fn implies_is_reflexive(raw in prop::collection::vec(lit_strategy(), 0..5)) {
        let conj = Conj::from_lits(raw.iter().map(to_lit));
        prop_assert!(conj.implies(&conj.clone()));
    }

    /// `implies` agrees with the brute-force semantic definition: A ⊨ B
    /// iff every assignment (within the complete box) satisfying A also
    /// satisfies B.
    #[test]
    fn implies_matches_brute_force(
        a in prop::collection::vec(lit_strategy(), 0..4),
        b in prop::collection::vec(lit_strategy(), 0..3),
    ) {
        let ca = Conj::from_lits(a.iter().map(to_lit));
        let cb = Conj::from_lits(b.iter().map(to_lit));
        // Brute-force: find a counterexample assignment.
        let mut assignment = [0i64; NVARS];
        fn all_sat(lits: &[(Side, Pred, Side, i64)], asg: &[i64]) -> bool {
            lits.iter().all(|(l, p, r, off)| {
                p.eval(eval_side(l, asg), eval_side(r, asg) + off)
            })
        }
        fn find_counterexample(
            a: &[(Side, Pred, Side, i64)],
            b: &[(Side, Pred, Side, i64)],
            asg: &mut [i64; NVARS],
            i: usize,
        ) -> bool {
            if i == NVARS {
                return all_sat(a, asg) && !all_sat(b, asg);
            }
            for v in -BOX..=BOX {
                asg[i] = v;
                if find_counterexample(a, b, asg, i + 1) {
                    return true;
                }
            }
            false
        }
        let has_counterexample = find_counterexample(&a, &b, &mut assignment, 0);
        if ca.implies(&cb) {
            // Solver-claimed implication must have no counterexample.
            prop_assert!(!has_counterexample, "A: {} B: {}", ca, cb);
        } else if !has_counterexample && brute_force_sat(&a) {
            // Solver refuted the implication on a satisfiable premise,
            // so a counterexample must exist somewhere; with constants
            // bounded by the box it must be inside it for this fragment.
            prop_assert!(false, "solver refuted implication without counterexample: A: {} B: {}", ca, cb);
        }
    }

    /// Every satisfiable conjunction yields a model that actually
    /// satisfies all of its literals.
    #[test]
    fn models_satisfy_their_conjunction(raw in prop::collection::vec(lit_strategy(), 0..6)) {
        use rid_solver::SatOptions;
        let conj = Conj::from_lits(raw.iter().map(to_lit));
        match conj.find_model(SatOptions::default()) {
            None => prop_assert!(!conj.is_sat(), "model missing for sat conj: {}", conj),
            Some(model) => {
                let value = |t: &Term| -> i64 {
                    match t.as_int() {
                        Some(c) => c,
                        None => model.iter().find(|(mt, _)| mt == t).map_or(0, |(_, v)| *v),
                    }
                };
                for lit in conj.lits() {
                    let l = value(&lit.lhs);
                    let r = value(&lit.rhs) + lit.offset;
                    prop_assert!(
                        lit.pred.eval(l, r),
                        "model violates {} (lhs={}, rhs={}) in {}",
                        lit, l, r, conj
                    );
                }
            }
        }
    }

    /// Normalization preserves satisfiability.
    #[test]
    fn normalize_preserves_sat(raw in prop::collection::vec(lit_strategy(), 0..6)) {
        let conj = Conj::from_lits(raw.iter().map(to_lit));
        let mut normalized = conj.clone();
        normalized.normalize();
        prop_assert_eq!(conj.is_sat(), normalized.is_sat());
    }
}
