//! Satisfiability of conjunctions via difference-graph closure.

use std::collections::HashMap;

use rid_ir::Pred;

use crate::conj::Conj;
use crate::term::Term;

/// "Infinity" sentinel for the shortest-path matrix; large enough to never
/// be reached, small enough that sums never overflow.
pub(crate) const INF: i64 = i64::MAX / 4;

/// Options controlling the satisfiability check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SatOptions {
    /// Budget of DPLL-style case splits spent on ambiguous `≠` literals.
    /// When exhausted the solver answers "satisfiable", erring toward
    /// false positives exactly as the paper's prototype does for
    /// constructs outside its abstraction (§5.4).
    pub max_splits: u32,
}

impl Default for SatOptions {
    fn default() -> Self {
        SatOptions { max_splits: 64 }
    }
}

/// A difference-constraint system over the atoms of a conjunction.
///
/// Node 0 is the implicit constant zero; every other node is a distinct
/// non-constant term. `d[i][j]` is the tightest known upper bound on
/// `node_j − node_i` (`INF` when unconstrained). A negative diagonal entry
/// after closure signals unsatisfiability.
#[derive(Debug)]
pub(crate) struct DiffSystem {
    pub(crate) nodes: Vec<Term>,
    index: HashMap<Term, usize>,
    pub(crate) d: Vec<Vec<i64>>,
    /// `(a, b, k)` meaning `node_a − node_b ≠ k`.
    pub(crate) diseqs: Vec<(usize, usize, i64)>,
    /// Set when a literal is trivially false (e.g. constant `0 = 1`).
    pub(crate) contradiction: bool,
}

// Manual `Clone` so `clone_from` (the snapshot path of the scratch pool,
// see [`crate::incsolver`]) reuses the destination's allocations: `Vec`'s
// `clone_from` keeps the outer buffer *and* each matrix row, and
// `HashMap`'s keeps its table. A fork point on a recycled solver then
// copies bounds without touching the allocator.
impl Clone for DiffSystem {
    fn clone(&self) -> DiffSystem {
        DiffSystem {
            nodes: self.nodes.clone(),
            index: self.index.clone(),
            d: self.d.clone(),
            diseqs: self.diseqs.clone(),
            contradiction: self.contradiction,
        }
    }

    fn clone_from(&mut self, source: &DiffSystem) {
        self.nodes.clone_from(&source.nodes);
        self.index.clone_from(&source.index);
        self.d.clone_from(&source.d);
        self.diseqs.clone_from(&source.diseqs);
        self.contradiction = source.contradiction;
    }
}

impl DiffSystem {
    pub(crate) fn new() -> DiffSystem {
        DiffSystem {
            nodes: vec![Term::Int(0)],
            index: HashMap::new(),
            d: vec![vec![0]],
            diseqs: Vec::new(),
            contradiction: false,
        }
    }

    /// Returns the system to the freshly-constructed state (just the
    /// constant-zero node) while retaining allocations where `Vec` and
    /// `HashMap` allow it.
    pub(crate) fn reset(&mut self) {
        self.nodes.truncate(1);
        self.index.clear();
        self.d.truncate(1);
        self.d[0].truncate(1);
        self.d[0][0] = 0;
        self.diseqs.clear();
        self.contradiction = false;
    }

    /// Builds the (unclosed) system from a conjunction.
    pub(crate) fn from_conj(conj: &Conj) -> DiffSystem {
        let mut sys = DiffSystem::new();
        for lit in conj.lits() {
            sys.add_lit(lit.pred, &lit.lhs, &lit.rhs, lit.offset);
        }
        sys
    }

    fn node(&mut self, term: &Term) -> (usize, i64) {
        if let Some(c) = term.as_int() {
            return (0, c);
        }
        if let Some(&i) = self.index.get(term) {
            return (i, 0);
        }
        let i = self.nodes.len();
        self.nodes.push(term.clone());
        self.index.insert(term.clone(), i);
        for row in &mut self.d {
            row.push(INF);
        }
        let mut row = vec![INF; i + 1];
        row[i] = 0;
        self.d.push(row);
        (i, 0)
    }

    fn add_le(&mut self, a: usize, b: usize, w: i64) {
        // node_a − node_b ≤ w  →  d[b][a] = min(d[b][a], w)
        if a == b {
            if w < 0 {
                self.contradiction = true;
            }
            return;
        }
        if w < self.d[b][a] {
            self.d[b][a] = w;
        }
    }

    fn add_lit(&mut self, pred: Pred, lhs: &Term, rhs: &Term, offset: i64) {
        let (la, ca) = self.node(lhs);
        let (lb, cb) = self.node(rhs);
        // value_l = node_la + ca; value_r = node_lb + cb + offset
        let k = cb.saturating_add(offset).saturating_sub(ca);
        match pred {
            Pred::Le => self.add_le(la, lb, k),
            Pred::Lt => self.add_le(la, lb, k.saturating_sub(1)),
            Pred::Ge => self.add_le(lb, la, k.saturating_neg()),
            Pred::Gt => self.add_le(lb, la, k.saturating_neg().saturating_sub(1)),
            Pred::Eq => {
                self.add_le(la, lb, k);
                self.add_le(lb, la, k.saturating_neg());
            }
            Pred::Ne => {
                if la == lb {
                    if k == 0 {
                        self.contradiction = true;
                    }
                } else {
                    self.diseqs.push((la, lb, k));
                }
            }
        }
    }

    /// Floyd–Warshall closure.
    ///
    /// Each pivot sweep costs `n²` fuel; when the ambient budget
    /// ([`crate::fuel`]) runs out the closure stops early. A partially
    /// closed matrix only has *looser* bounds, so every later answer
    /// degrades toward "satisfiable" — the conservative direction.
    pub(crate) fn close(&mut self) {
        let n = self.nodes.len();
        for k in 0..n {
            if !crate::fuel::spend((n * n) as u64) {
                return;
            }
            for i in 0..n {
                let dik = self.d[i][k];
                if dik >= INF {
                    continue;
                }
                for j in 0..n {
                    let alt = dik.saturating_add(self.d[k][j]);
                    if alt < self.d[i][j] {
                        self.d[i][j] = alt;
                    }
                }
            }
        }
    }

    fn has_negative_cycle(&self) -> bool {
        (0..self.nodes.len()).any(|i| self.d[i][i] < 0)
    }

    /// Adds `node_a − node_b ≤ w` to an already-closed matrix and restores
    /// closure incrementally (O(n²)).
    fn add_edge_closed(&mut self, a: usize, b: usize, w: i64) {
        if w >= self.d[b][a] {
            return;
        }
        let n = self.nodes.len();
        for p in 0..n {
            let dpb = self.d[p][b];
            if dpb >= INF {
                continue;
            }
            let through = dpb.saturating_add(w);
            for q in 0..n {
                let alt = through.saturating_add(self.d[a][q]);
                if alt < self.d[p][q] {
                    self.d[p][q] = alt;
                }
            }
        }
    }

    /// Pushes one literal into an **already-closed** matrix, restoring
    /// closure incrementally (edge relaxation, O(n²) per `≤`-edge) instead
    /// of re-running the O(n³) Floyd–Warshall closure from scratch. This
    /// is the engine of [`crate::IncrementalSolver`].
    ///
    /// With unlimited fuel the resulting matrix is exactly the closure of
    /// all literals pushed so far (shortest paths are insertion-order
    /// independent), so answers match [`DiffSystem::check_sat`] on the
    /// equivalent conjunction literal for literal.
    pub(crate) fn push_lit_closed(&mut self, lit: &crate::lit::Lit) {
        let (la, ca) = self.node(&lit.lhs);
        let (lb, cb) = self.node(&lit.rhs);
        let k = cb.saturating_add(lit.offset).saturating_sub(ca);
        match lit.pred {
            Pred::Le => self.relax_le(la, lb, k),
            Pred::Lt => self.relax_le(la, lb, k.saturating_sub(1)),
            Pred::Ge => self.relax_le(lb, la, k.saturating_neg()),
            Pred::Gt => self.relax_le(lb, la, k.saturating_neg().saturating_sub(1)),
            Pred::Eq => {
                self.relax_le(la, lb, k);
                self.relax_le(lb, la, k.saturating_neg());
            }
            Pred::Ne => {
                if la == lb {
                    if k == 0 {
                        self.contradiction = true;
                    }
                } else {
                    self.diseqs.push((la, lb, k));
                }
            }
        }
    }

    /// `node_a − node_b ≤ w` against a closed matrix, with fuel-metered
    /// relaxation. A relaxation sweep costs `n²` fuel (the same rate as a
    /// [`DiffSystem::close`] pivot); when fuel is exhausted the raw edge is
    /// recorded without propagating, leaving bounds *looser* than the true
    /// closure — every later answer degrades toward "satisfiable", the
    /// same conservative direction as an abandoned closure.
    fn relax_le(&mut self, a: usize, b: usize, w: i64) {
        if a == b {
            if w < 0 {
                self.contradiction = true;
            }
            return;
        }
        if w >= self.d[b][a] {
            return;
        }
        let n = self.nodes.len();
        if !crate::fuel::spend((n * n) as u64) {
            self.d[b][a] = w;
            return;
        }
        for p in 0..n {
            let dpb = self.d[p][b];
            if dpb >= INF {
                continue;
            }
            let through = dpb.saturating_add(w);
            for q in 0..n {
                let alt = through.saturating_add(self.d[a][q]);
                if alt < self.d[p][q] {
                    self.d[p][q] = alt;
                }
            }
        }
    }

    /// Satisfiability of an already-closed system, without consuming it
    /// (the incremental solver keeps pushing literals afterwards).
    pub(crate) fn check_sat_closed(&self, options: SatOptions) -> bool {
        if self.contradiction {
            return false;
        }
        if self.has_negative_cycle() {
            return false;
        }
        let mut budget = options.max_splits;
        sat_with_diseqs(self, &self.diseqs, &mut budget)
    }

    /// Bounds `(lo, hi)` on `node_a − node_b` implied by the closed matrix.
    pub(crate) fn bounds(&self, a: usize, b: usize) -> (i64, i64) {
        let hi = self.d[b][a];
        let lo = if self.d[a][b] >= INF { -INF } else { -self.d[a][b] };
        (lo, hi)
    }

    /// Full satisfiability check (closure must NOT have been run yet; this
    /// runs it).
    pub(crate) fn check_sat(mut self, options: SatOptions) -> bool {
        if self.contradiction {
            return false;
        }
        self.close();
        if self.has_negative_cycle() {
            return false;
        }
        let diseqs = std::mem::take(&mut self.diseqs);
        let mut budget = options.max_splits;
        sat_with_diseqs(&self, &diseqs, &mut budget)
    }

    /// Like [`DiffSystem::check_sat`], but returns the final (closed,
    /// disequality-resolved) system so a model can be extracted.
    pub(crate) fn solve(mut self, options: SatOptions) -> Option<DiffSystem> {
        if self.contradiction {
            return None;
        }
        self.close();
        if self.has_negative_cycle() {
            return None;
        }
        let diseqs = std::mem::take(&mut self.diseqs);
        let mut budget = options.max_splits;
        solve_with_diseqs(self, &diseqs, &mut budget)
    }

    /// Extracts a satisfying integer assignment from a closed,
    /// negative-cycle-free system: the classic difference-constraint
    /// solution `x_i = dist(source → i)` with a virtual source connected
    /// to every node by a 0-edge, shifted so the zero node maps to 0.
    pub(crate) fn model(&self) -> Vec<(Term, i64)> {
        let n = self.nodes.len();
        // dist[i] = min over j of d[j][i] and 0 (the virtual source edge);
        // valid because the matrix is already transitively closed.
        let mut dist = vec![0i64; n];
        for (i, slot) in dist.iter_mut().enumerate() {
            let mut best = 0i64;
            for j in 0..n {
                if self.d[j][i] < best && self.d[j][i] > -INF {
                    best = self.d[j][i];
                }
            }
            *slot = best;
        }
        let shift = dist[0];
        (1..n).map(|i| (self.nodes[i].clone(), dist[i] - shift)).collect()
    }
}

/// Like [`sat_with_diseqs`] but keeps the refined system of the first
/// satisfiable branch (for model extraction).
fn solve_with_diseqs(
    sys: DiffSystem,
    diseqs: &[(usize, usize, i64)],
    budget: &mut u32,
) -> Option<DiffSystem> {
    for (idx, &(a, b, k)) in diseqs.iter().enumerate() {
        let (lo, hi) = sys.bounds(a, b);
        if k < lo || k > hi {
            continue;
        }
        if lo == hi {
            return None;
        }
        if *budget == 0 || !crate::fuel::spend(1) {
            // Budget exhausted: refine anyway so the model respects this
            // disequality even if the remaining ones go unchecked.
        }
        *budget = budget.saturating_sub(1);
        let rest = &diseqs[idx + 1..];
        let mut case1 = sys.clone();
        case1.add_edge_closed(a, b, k - 1);
        if !case1.has_negative_cycle() {
            if let Some(solved) = solve_with_diseqs(case1, rest, budget) {
                return Some(solved);
            }
        }
        let mut case2 = sys;
        case2.add_edge_closed(b, a, -k - 1);
        if case2.has_negative_cycle() {
            return None;
        }
        return solve_with_diseqs(case2, rest, budget);
    }
    Some(sys)
}

/// Recursively discharges disequalities against a closed system.
fn sat_with_diseqs(sys: &DiffSystem, diseqs: &[(usize, usize, i64)], budget: &mut u32) -> bool {
    for (idx, &(a, b, k)) in diseqs.iter().enumerate() {
        let (lo, hi) = sys.bounds(a, b);
        if k < lo || k > hi {
            continue; // the disequality always holds
        }
        if lo == hi {
            // node_a − node_b is pinned to k → contradiction.
            debug_assert_eq!(lo, k);
            return false;
        }
        // Ambiguous: case split.
        if *budget == 0 || !crate::fuel::spend(1) {
            // Budget (or ambient fuel) exhausted — give up and declare
            // satisfiable (biases toward false positives, never false
            // negatives; see §5.4).
            return true;
        }
        *budget -= 1;
        let rest = &diseqs[idx + 1..];
        // Case 1: node_a − node_b ≤ k − 1.
        let mut case1 = sys.clone();
        case1.add_edge_closed(a, b, k - 1);
        if !case1.has_negative_cycle() && sat_with_diseqs(&case1, rest, budget) {
            return true;
        }
        // Case 2: node_b − node_a ≤ −k − 1.
        let mut case2 = sys.clone();
        case2.add_edge_closed(b, a, -k - 1);
        return !case2.has_negative_cycle() && sat_with_diseqs(&case2, rest, budget);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Lit;
    use crate::term::{Term, Var};
    use rid_ir::Pred;

    fn v(i: u32) -> Term {
        Term::var(Var::local(i))
    }

    fn sat(lits: Vec<Lit>) -> bool {
        Conj::from_lits(lits).is_sat()
    }

    #[test]
    fn empty_is_sat() {
        assert!(sat(vec![]));
    }

    #[test]
    fn constant_contradiction() {
        assert!(!sat(vec![Lit::new(Pred::Eq, Term::int(0), Term::int(1))]));
        assert!(sat(vec![Lit::new(Pred::Le, Term::int(0), Term::int(1))]));
        assert!(!sat(vec![Lit::new(Pred::Lt, Term::int(1), Term::int(1))]));
    }

    #[test]
    fn simple_interval() {
        // v > 0 ∧ v ≤ 10
        assert!(sat(vec![
            Lit::new(Pred::Gt, v(0), Term::int(0)),
            Lit::new(Pred::Le, v(0), Term::int(10)),
        ]));
        // v > 0 ∧ v ≤ 0
        assert!(!sat(vec![
            Lit::new(Pred::Gt, v(0), Term::int(0)),
            Lit::new(Pred::Le, v(0), Term::int(0)),
        ]));
    }

    #[test]
    fn integer_tightening() {
        // v > 0 ∧ v < 2  →  v = 1, satisfiable
        assert!(sat(vec![
            Lit::new(Pred::Gt, v(0), Term::int(0)),
            Lit::new(Pred::Lt, v(0), Term::int(2)),
        ]));
        // v > 0 ∧ v < 1 has no integer solution
        assert!(!sat(vec![
            Lit::new(Pred::Gt, v(0), Term::int(0)),
            Lit::new(Pred::Lt, v(0), Term::int(1)),
        ]));
    }

    #[test]
    fn transitive_chain() {
        // a < b ∧ b < c ∧ c < a → unsat
        assert!(!sat(vec![
            Lit::new(Pred::Lt, v(0), v(1)),
            Lit::new(Pred::Lt, v(1), v(2)),
            Lit::new(Pred::Lt, v(2), v(0)),
        ]));
        // a ≤ b ∧ b ≤ c ∧ c ≤ a → all equal, sat
        assert!(sat(vec![
            Lit::new(Pred::Le, v(0), v(1)),
            Lit::new(Pred::Le, v(1), v(2)),
            Lit::new(Pred::Le, v(2), v(0)),
        ]));
    }

    #[test]
    fn paper_example_p2_entries() {
        // Path constraint of p2 in Figure 2: v ≤ 0 conjoined with
        // reg_read's entry 1 constraint v ≥ 0 gives v = 0 (satisfiable);
        // conjoined further with v = −1 becomes unsatisfiable.
        assert!(sat(vec![
            Lit::new(Pred::Le, v(0), Term::int(0)),
            Lit::new(Pred::Ge, v(0), Term::int(0)),
        ]));
        assert!(!sat(vec![
            Lit::new(Pred::Le, v(0), Term::int(0)),
            Lit::new(Pred::Ge, v(0), Term::int(0)),
            Lit::new(Pred::Eq, v(0), Term::int(-1)),
        ]));
    }

    #[test]
    fn disequality_filtering() {
        // v ≠ 5 alone: sat
        assert!(sat(vec![Lit::new(Pred::Ne, v(0), Term::int(5))]));
        // v = 5 ∧ v ≠ 5: unsat
        assert!(!sat(vec![
            Lit::new(Pred::Eq, v(0), Term::int(5)),
            Lit::new(Pred::Ne, v(0), Term::int(5)),
        ]));
        // 0 ≤ v ≤ 1 ∧ v ≠ 0 ∧ v ≠ 1: unsat (needs splitting)
        assert!(!sat(vec![
            Lit::new(Pred::Ge, v(0), Term::int(0)),
            Lit::new(Pred::Le, v(0), Term::int(1)),
            Lit::new(Pred::Ne, v(0), Term::int(0)),
            Lit::new(Pred::Ne, v(0), Term::int(1)),
        ]));
        // 0 ≤ v ≤ 2 ∧ v ≠ 0 ∧ v ≠ 2: sat (v = 1)
        assert!(sat(vec![
            Lit::new(Pred::Ge, v(0), Term::int(0)),
            Lit::new(Pred::Le, v(0), Term::int(2)),
            Lit::new(Pred::Ne, v(0), Term::int(0)),
            Lit::new(Pred::Ne, v(0), Term::int(2)),
        ]));
    }

    #[test]
    fn disequality_between_variables() {
        // a = b ∧ a ≠ b: unsat
        assert!(!sat(vec![
            Lit::new(Pred::Eq, v(0), v(1)),
            Lit::new(Pred::Ne, v(0), v(1)),
        ]));
        // a ≤ b ∧ b ≤ a ∧ a ≠ b: unsat (equality forced transitively)
        assert!(!sat(vec![
            Lit::new(Pred::Le, v(0), v(1)),
            Lit::new(Pred::Le, v(1), v(0)),
            Lit::new(Pred::Ne, v(0), v(1)),
        ]));
    }

    #[test]
    fn offsets_respected() {
        // a ≤ b − 1 ∧ b ≤ a → unsat
        assert!(!sat(vec![
            Lit::with_offset(Pred::Le, v(0), v(1), -1),
            Lit::new(Pred::Le, v(1), v(0)),
        ]));
        // a ≤ b + 1 ∧ b ≤ a → sat
        assert!(sat(vec![
            Lit::with_offset(Pred::Le, v(0), v(1), 1),
            Lit::new(Pred::Le, v(1), v(0)),
        ]));
    }

    #[test]
    fn field_terms_are_distinct_atoms() {
        let dev = Term::var(Var::formal(0));
        let pm = dev.clone().field("pm");
        let usage = dev.clone().field("usage");
        // dev.pm = 1 ∧ dev.usage = 2 is fine
        assert!(sat(vec![
            Lit::new(Pred::Eq, pm.clone(), Term::int(1)),
            Lit::new(Pred::Eq, usage, Term::int(2)),
        ]));
        // dev.pm = 1 ∧ dev.pm = 2 is not
        assert!(!sat(vec![
            Lit::new(Pred::Eq, pm.clone(), Term::int(1)),
            Lit::new(Pred::Eq, pm, Term::int(2)),
        ]));
    }

    #[test]
    fn split_budget_gives_up_sat() {
        // Pigeonhole-ish: v ∈ [0, 1] with both values excluded, but zero
        // budget → the solver gives up and reports SAT.
        let conj = Conj::from_lits(vec![
            Lit::new(Pred::Ge, v(0), Term::int(0)),
            Lit::new(Pred::Le, v(0), Term::int(1)),
            Lit::new(Pred::Ne, v(0), Term::int(0)),
            Lit::new(Pred::Ne, v(0), Term::int(1)),
        ]);
        assert!(conj.is_sat_with(SatOptions { max_splits: 0 }));
        assert!(!conj.is_sat_with(SatOptions { max_splits: 8 }));
    }

    #[test]
    fn mixed_chain_with_constants() {
        // ret = -1 ∧ ret ≥ 0 → unsat (Figure 2, discarded subcase)
        let ret = Term::var(Var::ret());
        assert!(!sat(vec![
            Lit::new(Pred::Eq, ret.clone(), Term::int(-1)),
            Lit::new(Pred::Ge, ret, Term::int(0)),
        ]));
    }
}
