//! # rid-solver — the constraint engine behind RID
//!
//! RID expresses path constraints as first-order formulas over linear
//! integer arithmetic (§4.2 of the paper) and discharges them with an SMT
//! solver (Z3 in the original prototype, §5). The constraint language RID
//! actually *emits*, however, is much smaller than full LIA: Figure 5
//! restricts expressions to constants, formal arguments `[x]`, the return
//! slot `[0]`, locals, and field chains — with **no arithmetic operators**.
//! Every atomic constraint is therefore a binary comparison
//! `lhs ⋈ rhs + k` between two such terms (the constant offset `k` arises
//! internally from combining strict and non-strict comparisons over ℤ).
//!
//! That fragment is *difference logic over the integers*, for which this
//! crate implements an exact decision procedure:
//!
//! * conjunctions of `≤`-literals are checked by negative-cycle detection
//!   on a difference graph (Floyd–Warshall closure, incremental updates);
//! * `≠`-literals are first filtered against the implied bounds and the
//!   remaining ambiguous ones are case-split DPLL-style
//!   (`a ≠ b + k  ≡  a ≤ b + k − 1 ∨ b ≤ a − k − 1`), with a configurable
//!   split budget beyond which the solver answers "satisfiable" — erring,
//!   like RID itself (§5.4), toward false positives rather than false
//!   negatives;
//! * existential projection (the "remove conditions on local variables"
//!   step of §3.3.3/§4.4) is computed exactly for `≤`/`=` constraints by
//!   taking the shortest-path closure and restricting it to the kept terms.
//!
//! For RID's fragment the procedure is as precise as a full SMT solver,
//! which is why it can substitute for Z3 in this reproduction.
//!
//! Booleans are encoded as integers (`false = 0`, `true = 1`) and the null
//! pointer as integer `0`, matching the paper's abstraction where pointers
//! are opaque integers.
//!
//! ## Example
//!
//! ```
//! use rid_solver::{Conj, Lit, Term, Var};
//! use rid_ir::Pred;
//!
//! let v = Term::var(Var::local(0));
//! // v > 0 ∧ v = 0 is unsatisfiable
//! let c = Conj::from_lits([
//!     Lit::new(Pred::Gt, v.clone(), Term::int(0)),
//!     Lit::new(Pred::Eq, v.clone(), Term::int(0)),
//! ]);
//! assert!(!c.is_sat());
//!
//! // v > 0 ∧ v <= 10 is satisfiable
//! let c = Conj::from_lits([
//!     Lit::new(Pred::Gt, v.clone(), Term::int(0)),
//!     Lit::new(Pred::Le, v, Term::int(10)),
//! ]);
//! assert!(c.is_sat());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conj;
pub mod fuel;
pub mod incsolver;
mod lit;
mod project;
mod sat;
mod term;

pub use conj::Conj;
pub use incsolver::IncrementalSolver;
pub use lit::Lit;
pub use project::project;
pub use sat::SatOptions;
pub use term::{FieldName, Subst, Term, Var, VarKind};
