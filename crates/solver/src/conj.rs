//! Conjunctions of literals — the constraint objects of RID summaries.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::lit::Lit;
use crate::sat::{DiffSystem, SatOptions};
use crate::term::{Subst, Term, Var};

/// A conjunction of atomic constraints ([`Lit`]s).
///
/// An empty conjunction is `True`. Literals that constant-fold to `true`
/// are dropped on insertion; a literal folding to `false` marks the whole
/// conjunction as trivially unsatisfiable.
///
/// # Examples
///
/// ```
/// use rid_ir::Pred;
/// use rid_solver::{Conj, Lit, Term, Var};
///
/// let mut c = Conj::truth();
/// assert!(c.is_sat());
/// c.push(Lit::new(Pred::Gt, Term::var(Var::ret()), Term::int(0)));
/// c.push(Lit::new(Pred::Lt, Term::var(Var::ret()), Term::int(0)));
/// assert!(!c.is_sat());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conj {
    lits: Vec<Lit>,
    falsified: bool,
}

impl Conj {
    /// The trivially true conjunction.
    #[must_use]
    pub fn truth() -> Conj {
        Conj::default()
    }

    /// A canonical trivially false conjunction.
    #[must_use]
    pub fn unsat() -> Conj {
        Conj { lits: Vec::new(), falsified: true }
    }

    /// Builds a conjunction from literals (with constant folding).
    pub fn from_lits(lits: impl IntoIterator<Item = Lit>) -> Conj {
        let mut c = Conj::truth();
        for lit in lits {
            c.push(lit);
        }
        c
    }

    /// Appends a literal, constant-folding trivial ones.
    pub fn push(&mut self, lit: Lit) {
        match lit.const_eval() {
            Some(true) => {}
            Some(false) => self.falsified = true,
            None => self.lits.push(lit),
        }
    }

    /// The conjunction of `self` and `other`.
    #[must_use]
    pub fn and(&self, other: &Conj) -> Conj {
        let mut out = self.clone();
        out.falsified |= other.falsified;
        for lit in &other.lits {
            out.push(lit.clone());
        }
        out
    }

    /// The literals of the conjunction (empty for `True`).
    #[must_use]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Whether a literal constant-folded to `false` during construction.
    #[must_use]
    pub fn is_trivially_false(&self) -> bool {
        self.falsified
    }

    /// Whether the conjunction is the empty (trivially true) one.
    #[must_use]
    pub fn is_truth(&self) -> bool {
        !self.falsified && self.lits.is_empty()
    }

    /// Satisfiability with default options.
    #[must_use]
    pub fn is_sat(&self) -> bool {
        self.is_sat_with(SatOptions::default())
    }

    /// Satisfiability with explicit options.
    #[must_use]
    pub fn is_sat_with(&self, options: SatOptions) -> bool {
        if self.falsified {
            return false;
        }
        if self.lits.is_empty() {
            return true;
        }
        DiffSystem::from_conj(self).check_sat(options)
    }

    /// Produces a concrete integer assignment satisfying the conjunction,
    /// or `None` when unsatisfiable. Constants and terms never mentioned
    /// are omitted.
    ///
    /// # Examples
    ///
    /// ```
    /// use rid_ir::Pred;
    /// use rid_solver::{Conj, Lit, SatOptions, Term, Var};
    ///
    /// let v = Term::var(Var::ret());
    /// let c = Conj::from_lits([
    ///     Lit::new(Pred::Gt, v.clone(), Term::int(3)),
    ///     Lit::new(Pred::Le, v.clone(), Term::int(5)),
    /// ]);
    /// let model = c.find_model(SatOptions::default()).unwrap();
    /// let value = model.iter().find(|(t, _)| t == &v).unwrap().1;
    /// assert!(value > 3 && value <= 5);
    /// ```
    #[must_use]
    pub fn find_model(&self, options: SatOptions) -> Option<Vec<(Term, i64)>> {
        if self.falsified {
            return None;
        }
        if self.lits.is_empty() {
            return Some(Vec::new());
        }
        DiffSystem::from_conj(self).solve(options).map(|sys| sys.model())
    }

    /// Whether `self` logically implies every literal of `other`
    /// (checked by refutation: `self ∧ ¬lit` unsatisfiable for each).
    #[must_use]
    pub fn implies(&self, other: &Conj) -> bool {
        if self.falsified {
            return true;
        }
        if other.falsified {
            return !self.is_sat();
        }
        other.lits.iter().all(|lit| {
            let mut probe = self.clone();
            probe.push(lit.negated());
            !probe.is_sat()
        })
    }

    /// Applies a variable substitution to every literal.
    #[must_use]
    pub fn substitute(&self, subst: &Subst) -> Conj {
        let mut out = Conj::truth();
        out.falsified = self.falsified;
        for lit in &self.lits {
            out.push(lit.substitute(subst));
        }
        out
    }

    /// Collects every variable occurring in the conjunction.
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        for lit in &self.lits {
            lit.collect_vars(out);
        }
    }

    /// Whether every literal only mentions externally visible terms.
    #[must_use]
    pub fn is_external(&self) -> bool {
        self.lits.iter().all(Lit::is_external)
    }

    /// Canonicalizes (orients literals, sorts, deduplicates) in place.
    pub fn normalize(&mut self) {
        for lit in &mut self.lits {
            *lit = lit.canonical();
        }
        // Debug-string order is the pinned canonical order; the cached-key
        // sort renders each literal once instead of once per comparison.
        self.lits.sort_by_cached_key(|l| format!("{l:?}"));
        self.lits.dedup();
    }

    /// Iterates over literals mentioning the given term.
    pub fn lits_mentioning<'a>(&'a self, term: &'a Term) -> impl Iterator<Item = &'a Lit> {
        self.lits.iter().filter(move |l| &l.lhs == term || &l.rhs == term)
    }
}

impl FromIterator<Lit> for Conj {
    fn from_iter<T: IntoIterator<Item = Lit>>(iter: T) -> Self {
        Conj::from_lits(iter)
    }
}

impl Extend<Lit> for Conj {
    fn extend<T: IntoIterator<Item = Lit>>(&mut self, iter: T) {
        for lit in iter {
            self.push(lit);
        }
    }
}

impl fmt::Display for Conj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.falsified {
            return f.write_str("False");
        }
        if self.lits.is_empty() {
            return f.write_str("True");
        }
        for (i, lit) in self.lits.iter().enumerate() {
            if i > 0 {
                f.write_str(" /\\ ")?;
            }
            write!(f, "{lit}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rid_ir::Pred;

    fn v(i: u32) -> Term {
        Term::var(Var::local(i))
    }

    #[test]
    fn truth_and_unsat() {
        assert!(Conj::truth().is_truth());
        assert!(Conj::truth().is_sat());
        assert!(!Conj::unsat().is_sat());
        assert!(Conj::unsat().is_trivially_false());
        assert_eq!(Conj::truth().to_string(), "True");
        assert_eq!(Conj::unsat().to_string(), "False");
    }

    #[test]
    fn constant_folding_on_push() {
        let mut c = Conj::truth();
        c.push(Lit::new(Pred::Lt, Term::int(1), Term::int(2)));
        assert!(c.is_truth());
        c.push(Lit::new(Pred::Gt, Term::int(1), Term::int(2)));
        assert!(c.is_trivially_false());
    }

    #[test]
    fn and_combines() {
        let a = Conj::from_lits([Lit::new(Pred::Ge, v(0), Term::int(0))]);
        let b = Conj::from_lits([Lit::new(Pred::Le, v(0), Term::int(5))]);
        let ab = a.and(&b);
        assert_eq!(ab.lits().len(), 2);
        assert!(ab.is_sat());
        let c = Conj::from_lits([Lit::new(Pred::Lt, v(0), Term::int(0))]);
        assert!(!ab.and(&c).is_sat());
        assert!(!a.and(&Conj::unsat()).is_sat());
    }

    #[test]
    fn implication() {
        let tight = Conj::from_lits([Lit::new(Pred::Eq, v(0), Term::int(3))]);
        let loose = Conj::from_lits([Lit::new(Pred::Ge, v(0), Term::int(0))]);
        assert!(tight.implies(&loose));
        assert!(!loose.implies(&tight));
        assert!(Conj::unsat().implies(&tight));
        assert!(tight.implies(&Conj::truth()));
    }

    #[test]
    fn normalization_dedups() {
        let a = Lit::new(Pred::Gt, v(0), Term::int(0));
        let b = Lit::new(Pred::Lt, Term::int(0), v(0)); // same constraint, flipped
        let mut c = Conj::from_lits([a, b]);
        c.normalize();
        assert_eq!(c.lits().len(), 1);
    }

    #[test]
    fn substitution_refolds() {
        let mut s = Subst::new();
        s.insert(Var::local(0), Term::int(1));
        let c = Conj::from_lits([Lit::new(Pred::Ge, v(0), Term::int(0))]);
        let c2 = c.substitute(&s);
        assert!(c2.is_truth()); // 1 ≥ 0 folded away
        let c3 = Conj::from_lits([Lit::new(Pred::Lt, v(0), Term::int(0))]).substitute(&s);
        assert!(c3.is_trivially_false());
    }

    #[test]
    fn mentions_filter() {
        let c = Conj::from_lits([
            Lit::new(Pred::Ge, v(0), Term::int(0)),
            Lit::new(Pred::Ge, v(1), Term::int(0)),
        ]);
        assert_eq!(c.lits_mentioning(&v(0)).count(), 1);
        assert_eq!(c.lits_mentioning(&v(2)).count(), 0);
    }

    #[test]
    fn external_check() {
        let ext = Conj::from_lits([Lit::new(
            Pred::Ne,
            Term::var(Var::formal(0)),
            Term::NULL,
        )]);
        assert!(ext.is_external());
        let not_ext = Conj::from_lits([Lit::new(Pred::Ge, v(0), Term::int(0))]);
        assert!(!not_ext.is_external());
    }
}
