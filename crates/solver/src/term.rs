//! Symbolic terms — the expression language of Figure 5.

use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

/// The global field-name interner. Field names form a tiny, heavily
/// repeated vocabulary (`pm`, `rc`, `dev`, …), so every [`FieldName`]
/// holds a shared `Arc<str>`: cloning a term is a refcount bump instead of
/// a `String` copy, and equality of interned names is a pointer compare.
static FIELD_INTERNER: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();

fn intern_field(name: &str) -> Arc<str> {
    let mut set = FIELD_INTERNER
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(existing) = set.get(name) {
        return Arc::clone(existing);
    }
    let arc: Arc<str> = Arc::from(name);
    set.insert(Arc::clone(&arc));
    arc
}

/// An interned field name (the `f` of `t.f` in Figure 5).
///
/// Behaves exactly like the `String` it replaced — content equality,
/// content ordering, `String`-compatible `Debug` and serde forms — but
/// clones are O(1) and equal names share storage, so comparisons hit the
/// pointer fast path.
#[derive(Clone)]
pub struct FieldName(Arc<str>);

impl FieldName {
    /// Interns `name` and returns the shared handle.
    #[must_use]
    pub fn new(name: &str) -> FieldName {
        FieldName(intern_field(name))
    }

    /// The field name as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl PartialEq for FieldName {
    fn eq(&self, other: &FieldName) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}

impl Eq for FieldName {}

impl PartialOrd for FieldName {
    fn partial_cmp(&self, other: &FieldName) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FieldName {
    fn cmp(&self, other: &FieldName) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return std::cmp::Ordering::Equal;
        }
        self.0.cmp(&other.0)
    }
}

impl std::hash::Hash for FieldName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash the content (like `String`), not the pointer, so maps keyed
        // on terms behave identically to the pre-interning representation.
        self.0.hash(state);
    }
}

impl std::ops::Deref for FieldName {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for FieldName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `String`-compatible: quoted content, no wrapper name. Debug
        // output participates in `Conj::normalize` ordering, which must
        // not shift under interning.
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for FieldName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for FieldName {
    fn from(name: &str) -> FieldName {
        FieldName::new(name)
    }
}

impl From<String> for FieldName {
    fn from(name: String) -> FieldName {
        FieldName::new(&name)
    }
}

impl From<&String> for FieldName {
    fn from(name: &String) -> FieldName {
        FieldName::new(name)
    }
}

impl Serialize for FieldName {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Byte-compatible with the old `String` field: a plain JSON string.
        serializer.serialize_value(serde::Value::Str(self.as_str().to_owned()))
    }
}

impl<'de> Deserialize<'de> for FieldName {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            serde::Value::Str(s) => Ok(FieldName::new(&s)),
            other => Err(serde::de::Error::custom(format_args!(
                "expected field-name string, found {other}"
            ))),
        }
    }
}

/// What a symbolic variable denotes, which determines whether it is visible
/// outside the function under analysis.
///
/// `Formal` and `Ret` (and field chains rooted at them) are *external*: a
/// caller can observe them. Everything else is *internal* and is projected
/// away when a path summary is finalised (§3.3.3 of the paper).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum VarKind {
    /// A formal argument of the function; `id` is the parameter index
    /// (written `[name]` in the paper).
    Formal,
    /// The return value of the function (written `[0]` in the paper).
    Ret,
    /// A local variable, interned by the executor.
    Local,
    /// The result of a call instruction; `id`/`sub` encode the instruction
    /// identity and occurrence so paths sharing a prefix agree on names.
    CallRet,
    /// A `random` value (non-deterministic read), named like [`VarKind::CallRet`].
    Random,
    /// An anonymous object that escaped a callee but is invisible to the
    /// caller (e.g. a reference leaked inside the callee), named per call
    /// site during summary instantiation.
    Opaque,
}

impl VarKind {
    /// Whether variables of this kind are observable outside the function.
    #[must_use]
    pub fn is_external(self) -> bool {
        matches!(self, VarKind::Formal | VarKind::Ret)
    }
}

/// A symbolic variable: a kind plus a two-level numeric identity.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Var {
    /// The variable kind.
    pub kind: VarKind,
    /// Primary id (parameter index, interned name, instruction id, …).
    pub id: u32,
    /// Secondary id (occurrence index for `CallRet`/`Random`, entry index
    /// for `Opaque`); zero when unused.
    pub sub: u32,
}

impl Var {
    /// The formal argument with parameter index `id`.
    #[must_use]
    pub fn formal(id: u32) -> Var {
        Var { kind: VarKind::Formal, id, sub: 0 }
    }

    /// The return slot `[0]`.
    #[must_use]
    pub fn ret() -> Var {
        Var { kind: VarKind::Ret, id: 0, sub: 0 }
    }

    /// A local variable with interned id `id`.
    #[must_use]
    pub fn local(id: u32) -> Var {
        Var { kind: VarKind::Local, id, sub: 0 }
    }

    /// The result of the call at instruction `id`, occurrence `sub`.
    #[must_use]
    pub fn call_ret(id: u32, sub: u32) -> Var {
        Var { kind: VarKind::CallRet, id, sub }
    }

    /// The `random` value at instruction `id`, occurrence `sub`.
    #[must_use]
    pub fn random(id: u32, sub: u32) -> Var {
        Var { kind: VarKind::Random, id, sub }
    }

    /// An opaque escaped object (see [`VarKind::Opaque`]).
    #[must_use]
    pub fn opaque(id: u32, sub: u32) -> Var {
        Var { kind: VarKind::Opaque, id, sub }
    }

    /// Whether this variable is observable outside the function.
    #[must_use]
    pub fn is_external(self) -> bool {
        self.kind.is_external()
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            VarKind::Formal => write!(f, "[arg{}]", self.id),
            VarKind::Ret => f.write_str("[0]"),
            VarKind::Local => write!(f, "%l{}", self.id),
            VarKind::CallRet => write!(f, "%c{}_{}", self.id, self.sub),
            VarKind::Random => write!(f, "%r{}_{}", self.id, self.sub),
            VarKind::Opaque => write!(f, "%o{}_{}", self.id, self.sub),
        }
    }
}

/// A symbolic term: an integer constant, a variable, or a field chain.
///
/// Booleans are encoded as `0`/`1` and the null pointer as `0` (see the
/// crate docs). Terms are small trees; field chains are rarely deeper than
/// two levels in practice (`[dev].pm`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// An integer constant.
    Int(i64),
    /// A symbolic variable.
    Var(Var),
    /// `base.field`.
    Field(Box<Term>, FieldName),
}

impl Term {
    /// The encoding of `true`.
    pub const TRUE: Term = Term::Int(1);
    /// The encoding of `false`.
    pub const FALSE: Term = Term::Int(0);
    /// The encoding of the null pointer.
    pub const NULL: Term = Term::Int(0);

    /// An integer constant term.
    #[must_use]
    pub fn int(value: i64) -> Term {
        Term::Int(value)
    }

    /// A variable term.
    #[must_use]
    pub fn var(var: Var) -> Term {
        Term::Var(var)
    }

    /// `self.field`.
    #[must_use]
    pub fn field(self, field: impl Into<FieldName>) -> Term {
        Term::Field(Box::new(self), field.into())
    }

    /// The constant value, if this term is a constant.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Term::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The root variable of a variable or field-chain term.
    #[must_use]
    pub fn root_var(&self) -> Option<Var> {
        match self {
            Term::Int(_) => None,
            Term::Var(v) => Some(*v),
            Term::Field(base, _) => base.root_var(),
        }
    }

    /// Whether this term only mentions externally visible variables
    /// (formals, the return slot, or constants).
    #[must_use]
    pub fn is_external(&self) -> bool {
        match self.root_var() {
            None => true,
            Some(v) => v.is_external(),
        }
    }

    /// Applies a variable substitution, replacing every variable that maps
    /// to a term. Unmapped variables are left unchanged.
    ///
    /// ```
    /// use rid_solver::{Subst, Term, Var};
    ///
    /// let mut s = Subst::new();
    /// s.insert(Var::formal(0), Term::var(Var::local(3)));
    /// let t = Term::var(Var::formal(0)).field("pm");
    /// assert_eq!(t.substitute(&s), Term::var(Var::local(3)).field("pm"));
    /// ```
    #[must_use]
    pub fn substitute(&self, subst: &Subst) -> Term {
        match self {
            Term::Int(_) => self.clone(),
            Term::Var(v) => subst.get(v).cloned().unwrap_or_else(|| self.clone()),
            Term::Field(base, field) => {
                Term::Field(Box::new(base.substitute(subst)), field.clone())
            }
        }
    }

    /// Collects every variable occurring in the term into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Term::Int(_) => {}
            Term::Var(v) => out.push(*v),
            Term::Field(base, _) => base.collect_vars(out),
        }
    }
}

impl From<i64> for Term {
    fn from(value: i64) -> Self {
        Term::Int(value)
    }
}

impl From<Var> for Term {
    fn from(var: Var) -> Self {
        Term::Var(var)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Int(v) => write!(f, "{v}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Field(base, field) => write!(f, "{base}.{field}"),
        }
    }
}

/// A finite map from variables to replacement terms.
pub type Subst = BTreeMap<Var, Term>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_roots() {
        let t = Term::var(Var::formal(2)).field("pm");
        assert_eq!(t.root_var(), Some(Var::formal(2)));
        assert!(t.is_external());
        assert_eq!(Term::int(5).as_int(), Some(5));
        assert_eq!(t.as_int(), None);
        assert!(Term::int(7).is_external());
        assert!(!Term::var(Var::local(1)).is_external());
    }

    #[test]
    fn external_kinds() {
        assert!(Var::formal(0).is_external());
        assert!(Var::ret().is_external());
        assert!(!Var::local(0).is_external());
        assert!(!Var::call_ret(1, 0).is_external());
        assert!(!Var::random(1, 0).is_external());
        assert!(!Var::opaque(1, 0).is_external());
    }

    #[test]
    fn substitution_is_recursive() {
        let mut s = Subst::new();
        s.insert(Var::local(0), Term::var(Var::ret()));
        let t = Term::var(Var::local(0)).field("rc").field("inner");
        let expected = Term::var(Var::ret()).field("rc").field("inner");
        assert_eq!(t.substitute(&s), expected);
        // Unmapped variables unchanged.
        let u = Term::var(Var::local(1));
        assert_eq!(u.substitute(&s), u);
    }

    #[test]
    fn collect_vars_walks_chains() {
        let t = Term::var(Var::formal(0)).field("a").field("b");
        let mut vars = Vec::new();
        t.collect_vars(&mut vars);
        assert_eq!(vars, vec![Var::formal(0)]);
        let mut none = Vec::new();
        Term::int(3).collect_vars(&mut none);
        assert!(none.is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::var(Var::formal(1)).to_string(), "[arg1]");
        assert_eq!(Term::var(Var::ret()).to_string(), "[0]");
        assert_eq!(Term::var(Var::formal(0)).field("pm").to_string(), "[arg0].pm");
        assert_eq!(Term::var(Var::call_ret(3, 1)).to_string(), "%c3_1");
    }

    #[test]
    fn bool_and_null_encodings() {
        assert_eq!(Term::TRUE, Term::Int(1));
        assert_eq!(Term::FALSE, Term::Int(0));
        assert_eq!(Term::NULL, Term::Int(0));
    }

    #[test]
    fn field_names_intern_to_shared_storage() {
        let a = Term::var(Var::formal(0)).field("pm");
        let b = Term::var(Var::formal(0)).field(String::from("pm"));
        assert_eq!(a, b);
        let (Term::Field(_, fa), Term::Field(_, fb)) = (&a, &b) else {
            panic!("field terms expected")
        };
        assert!(Arc::ptr_eq(&fa.0, &fb.0), "equal names share one allocation");
        // Debug stays `String`-shaped: `Conj::normalize` orders literals by
        // their debug rendering, which must not shift under interning.
        assert_eq!(format!("{:?}", FieldName::new("pm")), format!("{:?}", "pm"));
        assert_eq!(FieldName::new("a").cmp(&FieldName::new("b")), std::cmp::Ordering::Less);
        assert_eq!(FieldName::new("pm").as_str(), "pm");
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut terms = vec![
            Term::var(Var::ret()),
            Term::int(0),
            Term::var(Var::formal(0)),
            Term::var(Var::formal(0)).field("pm"),
        ];
        terms.sort();
        terms.dedup();
        assert_eq!(terms.len(), 4);
    }
}
