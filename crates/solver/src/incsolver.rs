//! Incremental difference-logic solving for the symbolic executor.
//!
//! The per-path executor answers every feasibility query by rebuilding a
//! `DiffSystem` from the whole conjunction and running the O(n³)
//! Floyd–Warshall closure from scratch. On a prefix-shared execution tree
//! that is redundant twice over: states sharing a prefix re-close the same
//! literals, and each new literal re-closes everything before it.
//!
//! [`IncrementalSolver`] keeps the difference matrix *closed at all
//! times*: pushing a literal relaxes the closed matrix through the new
//! edge (incremental Bellman–Ford style, O(n²) per edge — see
//! `DiffSystem::push_lit_closed`) instead of re-running the O(n³)
//! closure, and a fork point snapshots the solver with a plain [`Clone`]
//! (O(n²) matrix copy). Disequalities accumulate in push order and are
//! discharged at query time exactly like the batch path, so with
//! unlimited fuel [`IncrementalSolver::is_sat`] agrees with
//! [`Conj::is_sat_with`] literal for literal — the property the
//! tree-mode differential tests pin down.
//!
//! Fuel degradation is conservative in the same direction as the batch
//! solver: an out-of-fuel relaxation records the raw edge without
//! propagating, so bounds are only ever *looser* than the true closure
//! and answers degrade toward "satisfiable" (false positives, never
//! false negatives; §5.4 of the paper).

use crate::conj::Conj;
use crate::lit::Lit;
use crate::sat::{DiffSystem, SatOptions};

/// An incrementally maintained difference-logic solver: a closed
/// difference system (the private `DiffSystem`) that accepts literals
/// one at a time and answers
/// satisfiability of everything pushed so far.
///
/// # Examples
///
/// ```
/// use rid_ir::Pred;
/// use rid_solver::{IncrementalSolver, Lit, SatOptions, Term, Var};
///
/// let v = Term::var(Var::local(0));
/// let mut solver = IncrementalSolver::new();
/// solver.push(&Lit::new(Pred::Gt, v.clone(), Term::int(0)));
/// assert!(solver.is_sat(SatOptions::default()));
///
/// let snapshot = solver.clone(); // cheap fork point
/// solver.push(&Lit::new(Pred::Lt, v.clone(), Term::int(0)));
/// assert!(!solver.is_sat(SatOptions::default()));
/// assert!(snapshot.is_sat(SatOptions::default())); // rollback intact
/// ```
#[derive(Debug)]
pub struct IncrementalSolver {
    sys: DiffSystem,
    /// Set when a pushed literal constant-folded to `false` (mirrors
    /// [`Conj`]'s `falsified` flag).
    falsified: bool,
    /// Number of literals actually recorded (after constant folding).
    lits: usize,
}

// Manual `Clone` so `clone_from` delegates to [`DiffSystem::clone_from`],
// which reuses the destination matrix. This is what makes
// [`snapshot`] cheaper than `clone()` once the scratch pool is warm.
impl Clone for IncrementalSolver {
    fn clone(&self) -> IncrementalSolver {
        IncrementalSolver { sys: self.sys.clone(), falsified: self.falsified, lits: self.lits }
    }

    fn clone_from(&mut self, source: &IncrementalSolver) {
        self.sys.clone_from(&source.sys);
        self.falsified = source.falsified;
        self.lits = source.lits;
    }
}

impl Default for IncrementalSolver {
    fn default() -> Self {
        IncrementalSolver::new()
    }
}

impl IncrementalSolver {
    /// An empty (trivially satisfiable) solver.
    #[must_use]
    pub fn new() -> IncrementalSolver {
        IncrementalSolver { sys: DiffSystem::new(), falsified: false, lits: 0 }
    }

    /// Pushes one literal, constant-folding trivial ones exactly like
    /// [`Conj::push`] so the solver tracks the conjunction it mirrors.
    pub fn push(&mut self, lit: &Lit) {
        match lit.const_eval() {
            Some(true) => {}
            Some(false) => self.falsified = true,
            None => {
                self.lits += 1;
                self.sys.push_lit_closed(lit);
            }
        }
    }

    /// Pushes every literal of a conjunction (in order), propagating its
    /// falsified flag — the incremental analogue of [`Conj::and`].
    pub fn push_conj(&mut self, conj: &Conj) {
        if conj.is_trivially_false() {
            self.falsified = true;
        }
        for lit in conj.lits() {
            self.push(lit);
        }
    }

    /// Number of (non-trivial) literals pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lits
    }

    /// Whether no (non-trivial) literal has been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lits == 0
    }

    /// Returns the solver to the empty (trivially satisfiable) state,
    /// retaining the difference-matrix allocations. Behaviorally
    /// indistinguishable from [`IncrementalSolver::new`] — the invariant
    /// the scratch pool below rests on, pinned by `reset_equals_new`.
    pub fn reset(&mut self) {
        self.sys.reset();
        self.falsified = false;
        self.lits = 0;
    }

    /// Satisfiability of everything pushed so far. Mirrors
    /// [`Conj::is_sat_with`] on the equivalent conjunction: falsified →
    /// unsat, empty → sat, otherwise negative-cycle check plus
    /// disequality case-splitting against the (already closed) matrix.
    #[must_use]
    pub fn is_sat(&self, options: SatOptions) -> bool {
        if self.falsified {
            return false;
        }
        if self.lits == 0 {
            return true;
        }
        self.sys.check_sat_closed(options)
    }
}

/// Retired solvers kept per worker thread. Bounded so a pathological
/// fan-out cannot pin an unbounded number of matrices; the cap comfortably
/// covers the live-state width of one walk (`max_subcases` defaults to 10).
const SCRATCH_POOL_CAP: usize = 32;

thread_local! {
    static SCRATCH: std::cell::RefCell<Vec<IncrementalSolver>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Takes an empty solver from this thread's scratch pool (or builds one).
/// Pool solvers were [`reset`](IncrementalSolver::reset) on retirement, so
/// this is exactly `IncrementalSolver::new()` with warm allocations —
/// a batch of components executed by one worker attaches and forks against
/// reused matrices instead of fresh ones.
#[must_use]
pub fn scratch() -> IncrementalSolver {
    SCRATCH.with(|pool| pool.borrow_mut().pop()).unwrap_or_default()
}

/// Snapshots `source` (a fork point) into a pooled solver via
/// `clone_from`, reusing the recycled matrix's allocations.
#[must_use]
pub fn snapshot(source: &IncrementalSolver) -> IncrementalSolver {
    let mut snap = scratch();
    snap.clone_from(source);
    snap
}

/// Retires a solver into this thread's scratch pool (resetting it), or
/// drops it when the pool is full.
pub fn recycle(mut solver: IncrementalSolver) {
    SCRATCH.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < SCRATCH_POOL_CAP {
            solver.reset();
            pool.push(solver);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Term, Var};
    use rid_ir::Pred;

    fn v(i: u32) -> Term {
        Term::var(Var::local(i))
    }

    /// Pushing a literal sequence must answer exactly like the batch
    /// solver on the same prefix, at every step.
    fn assert_agrees_with_batch(lits: &[Lit]) {
        let mut solver = IncrementalSolver::new();
        let mut conj = Conj::truth();
        for lit in lits {
            solver.push(lit);
            conj.push(lit.clone());
            assert_eq!(
                solver.is_sat(SatOptions::default()),
                conj.is_sat(),
                "divergence after pushing {lit}"
            );
        }
    }

    #[test]
    fn agrees_with_batch_on_interval_chains() {
        assert_agrees_with_batch(&[
            Lit::new(Pred::Gt, v(0), Term::int(0)),
            Lit::new(Pred::Le, v(0), v(1)),
            Lit::new(Pred::Lt, v(1), Term::int(2)),
            Lit::new(Pred::Eq, v(0), Term::int(5)), // now unsat
        ]);
    }

    #[test]
    fn agrees_with_batch_on_transitive_cycles() {
        assert_agrees_with_batch(&[
            Lit::new(Pred::Lt, v(0), v(1)),
            Lit::new(Pred::Lt, v(1), v(2)),
            Lit::new(Pred::Lt, v(2), v(0)), // negative cycle
        ]);
    }

    #[test]
    fn agrees_with_batch_on_disequalities() {
        assert_agrees_with_batch(&[
            Lit::new(Pred::Ge, v(0), Term::int(0)),
            Lit::new(Pred::Le, v(0), Term::int(1)),
            Lit::new(Pred::Ne, v(0), Term::int(0)),
            Lit::new(Pred::Ne, v(0), Term::int(1)), // needs splitting
        ]);
    }

    #[test]
    fn constant_folding_matches_conj() {
        let mut solver = IncrementalSolver::new();
        solver.push(&Lit::new(Pred::Lt, Term::int(1), Term::int(2)));
        assert!(solver.is_empty());
        assert!(solver.is_sat(SatOptions::default()));
        solver.push(&Lit::new(Pred::Gt, Term::int(1), Term::int(2)));
        assert!(!solver.is_sat(SatOptions::default()));
    }

    #[test]
    fn snapshot_rollback_via_clone() {
        let mut solver = IncrementalSolver::new();
        solver.push(&Lit::new(Pred::Ge, v(0), Term::int(0)));
        let fork = solver.clone();
        solver.push(&Lit::new(Pred::Lt, v(0), Term::int(0)));
        assert!(!solver.is_sat(SatOptions::default()));
        assert!(fork.is_sat(SatOptions::default()));
        assert_eq!(fork.len(), 1);
    }

    #[test]
    fn push_conj_matches_and() {
        let base = Conj::from_lits([Lit::new(Pred::Ge, v(0), Term::int(0))]);
        let ext = Conj::from_lits([
            Lit::new(Pred::Le, v(0), Term::int(5)),
            Lit::new(Pred::Ne, v(0), Term::int(3)),
        ]);
        let mut solver = IncrementalSolver::new();
        solver.push_conj(&base);
        solver.push_conj(&ext);
        assert_eq!(solver.is_sat(SatOptions::default()), base.and(&ext).is_sat());
        let mut falsified = IncrementalSolver::new();
        falsified.push_conj(&Conj::unsat());
        assert!(!falsified.is_sat(SatOptions::default()));
    }

    #[test]
    fn reset_equals_new() {
        // A reset solver must answer exactly like a fresh one on the same
        // literal sequence — the soundness of pool recycling.
        let warmup = [
            Lit::new(Pred::Lt, v(0), v(1)),
            Lit::new(Pred::Lt, v(1), v(2)),
            Lit::new(Pred::Ne, v(0), Term::int(3)),
            Lit::new(Pred::Gt, Term::int(1), Term::int(2)), // falsifies
        ];
        let replay = [
            Lit::new(Pred::Ge, v(5), Term::int(0)),
            Lit::new(Pred::Le, v(5), v(6)),
            Lit::new(Pred::Lt, v(6), Term::int(2)),
            Lit::new(Pred::Ne, v(5), Term::int(1)),
        ];
        let mut recycled = IncrementalSolver::new();
        for lit in &warmup {
            recycled.push(lit);
        }
        recycled.reset();
        assert!(recycled.is_empty());
        let mut fresh = IncrementalSolver::new();
        for lit in &replay {
            recycled.push(lit);
            fresh.push(lit);
            assert_eq!(
                recycled.is_sat(SatOptions::default()),
                fresh.is_sat(SatOptions::default()),
                "recycled solver diverges after {lit}"
            );
        }
        assert_eq!(recycled.len(), fresh.len());
    }

    #[test]
    fn scratch_pool_round_trip() {
        let mut s = scratch();
        s.push(&Lit::new(Pred::Lt, v(0), Term::int(0)));
        let snap = snapshot(&s);
        assert_eq!(snap.len(), 1);
        assert_eq!(
            snap.is_sat(SatOptions::default()),
            s.is_sat(SatOptions::default())
        );
        recycle(s);
        recycle(snap);
        // Whatever comes back from the pool must be indistinguishable
        // from new.
        let back = scratch();
        assert!(back.is_empty());
        assert!(back.is_sat(SatOptions::default()));
    }

    #[test]
    fn zero_fuel_matches_batch_zero_fuel() {
        // With no fuel at all neither solver can close anything: both see
        // only the raw edges and degrade toward SAT identically.
        let lits = [
            Lit::new(Pred::Eq, v(0), Term::int(5)),
            Lit::new(Pred::Ne, v(0), Term::int(5)),
            Lit::new(Pred::Lt, v(1), v(2)),
            Lit::new(Pred::Lt, v(2), v(1)),
        ];
        for prefix in 1..=lits.len() {
            let _guard = crate::fuel::install(0);
            let mut solver = IncrementalSolver::new();
            let mut conj = Conj::truth();
            for lit in &lits[..prefix] {
                solver.push(lit);
                conj.push(lit.clone());
            }
            assert_eq!(
                solver.is_sat(SatOptions::default()),
                conj.is_sat(),
                "zero-fuel divergence at prefix {prefix}"
            );
        }
    }
}
