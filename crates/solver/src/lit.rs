//! Atomic constraints: `lhs ⋈ rhs + offset`.

use std::cmp::Ordering;
use std::fmt;

use rid_ir::Pred;
use serde::{Deserialize, Serialize};

use crate::term::{Subst, Term, Var};

/// An atomic constraint `lhs pred (rhs + offset)` over symbolic terms.
///
/// The offset extends the paper's surface syntax (Figure 5 has no
/// arithmetic) just enough to keep existential projection exact: combining
/// `x < v` and `v ≤ y` over the integers yields `x ≤ y − 1`, which needs an
/// offset to be represented. Offsets against constant right-hand sides are
/// folded away on construction, so `x ≤ 0 + 3` is stored as `x ≤ 3`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lit {
    /// The comparison predicate.
    pub pred: Pred,
    /// Left-hand term.
    pub lhs: Term,
    /// Right-hand term.
    pub rhs: Term,
    /// Constant added to the right-hand term.
    pub offset: i64,
}

impl Lit {
    /// Creates `lhs pred rhs` (offset 0).
    #[must_use]
    pub fn new(pred: Pred, lhs: Term, rhs: Term) -> Lit {
        Lit::with_offset(pred, lhs, rhs, 0)
    }

    /// Creates `lhs pred (rhs + offset)`, folding constant right-hand
    /// sides.
    #[must_use]
    pub fn with_offset(pred: Pred, lhs: Term, rhs: Term, offset: i64) -> Lit {
        let (rhs, offset) = match rhs {
            Term::Int(c) => (Term::Int(c.saturating_add(offset)), 0),
            other => (other, offset),
        };
        Lit { pred, lhs, rhs, offset }
    }

    /// The logical negation of the literal.
    ///
    /// ```
    /// use rid_ir::Pred;
    /// use rid_solver::{Lit, Term, Var};
    ///
    /// let l = Lit::new(Pred::Lt, Term::var(Var::formal(0)), Term::int(0));
    /// assert_eq!(l.negated().pred, Pred::Ge);
    /// ```
    #[must_use]
    pub fn negated(&self) -> Lit {
        Lit { pred: self.pred.negated(), ..self.clone() }
    }

    /// Evaluates the literal if both sides are constants.
    #[must_use]
    pub fn const_eval(&self) -> Option<bool> {
        let lhs = self.lhs.as_int()?;
        let rhs = self.rhs.as_int()?.checked_add(self.offset)?;
        Some(self.pred.eval(lhs, rhs))
    }

    /// Applies a variable substitution to both sides.
    #[must_use]
    pub fn substitute(&self, subst: &Subst) -> Lit {
        Lit::with_offset(
            self.pred,
            self.lhs.substitute(subst),
            self.rhs.substitute(subst),
            self.offset,
        )
    }

    /// Collects every variable occurring in the literal.
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        self.lhs.collect_vars(out);
        self.rhs.collect_vars(out);
    }

    /// Whether the literal only mentions externally visible terms.
    #[must_use]
    pub fn is_external(&self) -> bool {
        self.lhs.is_external() && self.rhs.is_external()
    }

    /// A canonical form for deduplication: symmetric predicates order their
    /// operands, `>`/`≥` are rewritten to `<`/`≤`.
    #[must_use]
    pub fn canonical(&self) -> Lit {
        let mut lit = self.clone();
        match lit.pred {
            Pred::Gt | Pred::Ge => {
                // a > b + k  ≡  b + k < a  ≡  b < a - k
                lit = Lit::with_offset(
                    lit.pred.swapped(),
                    lit.rhs,
                    lit.lhs,
                    lit.offset.checked_neg().unwrap_or(i64::MAX),
                );
            }
            Pred::Eq | Pred::Ne => {
                if term_order(&lit.lhs, &lit.rhs) == Ordering::Greater {
                    lit = Lit::with_offset(
                        lit.pred,
                        lit.rhs,
                        lit.lhs,
                        lit.offset.checked_neg().unwrap_or(i64::MAX),
                    );
                }
            }
            Pred::Lt | Pred::Le => {}
        }
        lit
    }
}

fn term_order(a: &Term, b: &Term) -> Ordering {
    a.cmp(b)
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset == 0 {
            write!(f, "{} {} {}", self.lhs, self.pred, self.rhs)
        } else if self.offset > 0 {
            write!(f, "{} {} {} + {}", self.lhs, self.pred, self.rhs, self.offset)
        } else {
            write!(f, "{} {} {} - {}", self.lhs, self.pred, self.rhs, -self.offset)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Var;

    #[test]
    fn constant_offset_folding() {
        let l = Lit::with_offset(Pred::Le, Term::var(Var::ret()), Term::int(2), 3);
        assert_eq!(l.rhs, Term::Int(5));
        assert_eq!(l.offset, 0);
    }

    #[test]
    fn const_eval() {
        assert_eq!(Lit::new(Pred::Lt, Term::int(1), Term::int(2)).const_eval(), Some(true));
        assert_eq!(Lit::new(Pred::Eq, Term::int(1), Term::int(2)).const_eval(), Some(false));
        assert_eq!(
            Lit::new(Pred::Eq, Term::var(Var::ret()), Term::int(2)).const_eval(),
            None
        );
        let with_off =
            Lit { pred: Pred::Le, lhs: Term::int(3), rhs: Term::int(1), offset: 2 };
        assert_eq!(with_off.const_eval(), Some(true));
    }

    #[test]
    fn negation() {
        let l = Lit::new(Pred::Eq, Term::var(Var::formal(0)), Term::NULL);
        assert_eq!(l.negated().pred, Pred::Ne);
        assert_eq!(l.negated().negated(), l);
    }

    #[test]
    fn canonicalization_orients_gt() {
        let a = Term::var(Var::formal(0));
        let b = Term::var(Var::formal(1));
        let l = Lit::with_offset(Pred::Gt, a.clone(), b.clone(), 2);
        let c = l.canonical();
        assert_eq!(c.pred, Pred::Lt);
        assert_eq!(c.lhs, b);
        assert_eq!(c.rhs, a);
        assert_eq!(c.offset, -2);
    }

    #[test]
    fn canonicalization_orders_symmetric_operands() {
        let a = Term::var(Var::formal(0));
        let b = Term::var(Var::formal(1));
        let l1 = Lit::new(Pred::Eq, b.clone(), a.clone()).canonical();
        let l2 = Lit::new(Pred::Eq, a, b).canonical();
        assert_eq!(l1, l2);
    }

    #[test]
    fn substitution_folds_constants() {
        let mut s = Subst::new();
        s.insert(Var::local(0), Term::int(1));
        let l = Lit::with_offset(
            Pred::Le,
            Term::var(Var::ret()),
            Term::var(Var::local(0)),
            4,
        );
        let l2 = l.substitute(&s);
        assert_eq!(l2.rhs, Term::Int(5));
        assert_eq!(l2.offset, 0);
    }

    #[test]
    fn display_offsets() {
        let a = Term::var(Var::formal(0));
        let b = Term::var(Var::formal(1));
        assert_eq!(Lit::new(Pred::Le, a.clone(), b.clone()).to_string(), "[arg0] <= [arg1]");
        assert_eq!(
            Lit::with_offset(Pred::Le, a.clone(), b.clone(), 1).to_string(),
            "[arg0] <= [arg1] + 1"
        );
        assert_eq!(
            Lit::with_offset(Pred::Le, a, b, -1).to_string(),
            "[arg0] <= [arg1] - 1"
        );
    }
}
