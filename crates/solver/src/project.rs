//! Existential projection: "remove conditions on local variables".
//!
//! After a path summary is calculated, conditions on local variables must
//! be removed from the constraint because locals cannot be observed outside
//! the function (§3.3.3 / §4.4 of the paper). Dropping literals naively
//! would lose transitively implied facts (`v ≥ 0 ∧ ret = v` implies
//! `ret ≥ 0`), so this module computes the *shortest-path closure* of the
//! difference system first and then restricts it to the kept terms — an
//! exact existential quantifier elimination for the `≤`/`=` fragment.
//! Disequalities involving eliminated terms are dropped, which only ever
//! *weakens* the constraint (more satisfiable ⇒ more reported pairs ⇒
//! false positives, never false negatives — the bias stated in §5.4).

use rid_ir::Pred;

use crate::conj::Conj;
use crate::lit::Lit;
use crate::sat::{DiffSystem, INF};

/// Weights at or above this are treated as unconstrained: saturating
/// additions during closure can produce huge-but-finite sums that carry no
/// information and would otherwise leak into projected literals.
const EFFECTIVE_INF: i64 = INF / 2;
use crate::term::Term;

/// Projects `conj` onto the terms accepted by `keep`.
///
/// The result mentions only kept terms (and constants) and is implied by
/// the input; for `≤`/`=` constraints it is the *strongest* such
/// consequence.
///
/// Returns [`Conj::unsat`] when the input is unsatisfiable (ignoring
/// disequalities, which cannot make an unsatisfiable system satisfiable).
///
/// # Examples
///
/// ```
/// use rid_ir::Pred;
/// use rid_solver::{project, Conj, Lit, Term, Var};
///
/// let v = Term::var(Var::local(0));
/// let ret = Term::var(Var::ret());
/// // v ≥ 0 ∧ ret = v   projected onto {ret}   gives   ret ≥ 0
/// let c = Conj::from_lits([
///     Lit::new(Pred::Ge, v.clone(), Term::int(0)),
///     Lit::new(Pred::Eq, ret.clone(), v.clone()),
/// ]);
/// let p = project(&c, |t| t == &ret);
/// assert!(p.implies(&Conj::from_lits([Lit::new(Pred::Ge, ret, Term::int(0))])));
/// ```
pub fn project(conj: &Conj, keep: impl Fn(&Term) -> bool) -> Conj {
    if conj.is_trivially_false() {
        return Conj::unsat();
    }
    let mut sys = DiffSystem::from_conj(conj);
    if sys.contradiction {
        return Conj::unsat();
    }
    sys.close();
    let n = sys.nodes.len();
    if (0..n).any(|i| sys.d[i][i] < 0) {
        return Conj::unsat();
    }

    // Node 0 (the constant zero) is always kept.
    let kept: Vec<usize> =
        (0..n).filter(|&i| i == 0 || keep(&sys.nodes[i])).collect();

    let mut out = Conj::truth();

    // Equality pairs: d[i][j] + d[j][i] == 0 pins node_j − node_i.
    let mut in_eq_pair = vec![vec![false; n]; n];
    for (a, &i) in kept.iter().enumerate() {
        for &j in &kept[a + 1..] {
            if sys.d[i][j] < EFFECTIVE_INF
                && sys.d[j][i] < EFFECTIVE_INF
                && sys.d[i][j] + sys.d[j][i] == 0
            {
                in_eq_pair[i][j] = true;
                in_eq_pair[j][i] = true;
                // node_j = node_i + d[i][j]
                out.push(Lit::with_offset(
                    Pred::Eq,
                    sys.nodes[j].clone(),
                    sys.nodes[i].clone(),
                    sys.d[i][j],
                ));
            }
        }
    }

    // Inequality edges between kept nodes, pruning edges strictly implied
    // through another kept node (strict-only pruning cannot cascade).
    for &i in &kept {
        for &j in &kept {
            if i == j || sys.d[i][j] >= EFFECTIVE_INF || in_eq_pair[i][j] {
                continue;
            }
            let implied = kept.iter().any(|&k| {
                k != i
                    && k != j
                    && sys.d[i][k] < EFFECTIVE_INF
                    && sys.d[k][j] < EFFECTIVE_INF
                    && sys.d[i][k].saturating_add(sys.d[k][j]) < sys.d[i][j]
            });
            if implied {
                continue;
            }
            // node_j − node_i ≤ d[i][j]
            out.push(Lit::with_offset(
                Pred::Le,
                sys.nodes[j].clone(),
                sys.nodes[i].clone(),
                sys.d[i][j],
            ));
        }
    }

    // Disequalities survive only if both endpoints are kept.
    let diseqs = std::mem::take(&mut sys.diseqs);
    for (a, b, k) in diseqs {
        if kept.contains(&a) && kept.contains(&b) {
            let (lo, hi) = sys.bounds(a, b);
            if k < lo || k > hi {
                continue; // already entailed; no information
            }
            out.push(Lit::with_offset(
                Pred::Ne,
                sys.nodes[a].clone(),
                sys.nodes[b].clone(),
                k,
            ));
        }
    }

    out.normalize();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Var;

    fn local(i: u32) -> Term {
        Term::var(Var::local(i))
    }

    fn ret() -> Term {
        Term::var(Var::ret())
    }

    fn keep_external(t: &Term) -> bool {
        t.is_external()
    }

    #[test]
    fn drops_pure_local_conditions() {
        // v > 0 projected onto externals: True (Figure 2 step II→III).
        let c = Conj::from_lits([Lit::new(Pred::Gt, local(0), Term::int(0))]);
        let p = project(&c, keep_external);
        assert!(p.is_truth());
    }

    #[test]
    fn keeps_external_conditions() {
        let dev = Term::var(Var::formal(0));
        let c = Conj::from_lits([
            Lit::new(Pred::Ne, dev.clone(), Term::NULL),
            Lit::new(Pred::Gt, local(0), Term::int(0)),
        ]);
        let p = project(&c, keep_external);
        assert_eq!(p.lits().len(), 1);
        assert!(p.lits()[0].is_external());
    }

    #[test]
    fn transitive_facts_survive_elimination() {
        // v ≥ 1 ∧ ret = v  ⇒  ret ≥ 1
        let c = Conj::from_lits([
            Lit::new(Pred::Ge, local(0), Term::int(1)),
            Lit::new(Pred::Eq, ret(), local(0)),
        ]);
        let p = project(&c, keep_external);
        let want = Conj::from_lits([Lit::new(Pred::Ge, ret(), Term::int(1))]);
        assert!(p.implies(&want));
        assert!(!p.lits().is_empty());
        assert!(p.is_external());
    }

    #[test]
    fn strict_chains_tighten() {
        // a < v ∧ v < b  ⇒  a ≤ b − 2 (integers)
        let a = Term::var(Var::formal(0));
        let b = Term::var(Var::formal(1));
        let c = Conj::from_lits([
            Lit::new(Pred::Lt, a.clone(), local(0)),
            Lit::new(Pred::Lt, local(0), b.clone()),
        ]);
        let p = project(&c, keep_external);
        let want = Conj::from_lits([Lit::with_offset(Pred::Le, a, b, -2)]);
        assert!(p.implies(&want));
    }

    #[test]
    fn unsat_projects_to_unsat() {
        let c = Conj::from_lits([
            Lit::new(Pred::Gt, local(0), Term::int(0)),
            Lit::new(Pred::Lt, local(0), Term::int(0)),
        ]);
        assert!(!project(&c, keep_external).is_sat());
    }

    #[test]
    fn equalities_between_kept_nodes_are_one_literal() {
        let a = Term::var(Var::formal(0));
        let b = Term::var(Var::formal(1));
        let c = Conj::from_lits([
            Lit::new(Pred::Le, a.clone(), b.clone()),
            Lit::new(Pred::Le, b.clone(), a.clone()),
        ]);
        let p = project(&c, keep_external);
        assert_eq!(p.lits().len(), 1);
        assert_eq!(p.lits()[0].pred, Pred::Eq);
    }

    #[test]
    fn diseq_on_local_is_dropped() {
        let c = Conj::from_lits([Lit::new(Pred::Ne, local(0), Term::int(0))]);
        let p = project(&c, keep_external);
        assert!(p.is_truth());
    }

    #[test]
    fn diseq_on_kept_survives() {
        let dev = Term::var(Var::formal(0));
        let c = Conj::from_lits([Lit::new(Pred::Ne, dev.clone(), Term::NULL)]);
        let p = project(&c, keep_external);
        assert_eq!(p.lits().len(), 1);
        assert_eq!(p.lits()[0].pred, Pred::Ne);
    }

    #[test]
    fn projection_result_is_implied_by_input() {
        // Soundness spot-check on a mixed system.
        let dev = Term::var(Var::formal(0));
        let c = Conj::from_lits([
            Lit::new(Pred::Ne, dev.clone(), Term::NULL),
            Lit::new(Pred::Ge, local(0), Term::int(0)),
            Lit::new(Pred::Eq, ret(), local(0)),
            Lit::new(Pred::Le, local(0), Term::int(10)),
        ]);
        let p = project(&c, keep_external);
        assert!(c.implies(&p));
        // And the interesting consequence is preserved: 0 ≤ ret ≤ 10.
        let want = Conj::from_lits([
            Lit::new(Pred::Ge, ret(), Term::int(0)),
            Lit::new(Pred::Le, ret(), Term::int(10)),
        ]);
        assert!(p.implies(&want));
    }

    #[test]
    fn keep_projection_of_field_chains() {
        let pm = Term::var(Var::formal(0)).field("pm");
        let c = Conj::from_lits([
            Lit::new(Pred::Eq, local(0), pm.clone()),
            Lit::new(Pred::Ge, local(0), Term::int(2)),
        ]);
        let p = project(&c, keep_external);
        let want = Conj::from_lits([Lit::new(Pred::Ge, pm, Term::int(2))]);
        assert!(p.implies(&want));
    }
}
