//! Cooperative solver fuel accounting.
//!
//! The analysis driver gives each function a *fuel* budget bounding the
//! work the constraint solver may perform on its behalf: Floyd–Warshall
//! relaxation sweeps in [`crate::Conj::is_sat`]-style checks and
//! DPLL-style disequality splits both consume fuel. When the budget runs
//! out the solver degrades exactly like its built-in split budget (§5.4 of
//! the paper): it stops refining and answers "satisfiable", erring toward
//! false positives, never false negatives.
//!
//! Fuel is ambient, thread-local state rather than a parameter so that
//! [`crate::SatOptions`] stays a small `Copy` struct and existing call
//! sites keep their signatures. The driver installs a budget with
//! [`install`] around one function's summarization; the guard restores the
//! previous budget (usually "unlimited") on drop, so nested or re-entrant
//! installs behave like a stack. With no budget installed every [`spend`]
//! succeeds and the solver is exact.

use std::cell::Cell;

thread_local! {
    static REMAINING: Cell<Option<u64>> = const { Cell::new(None) };
    static EXHAUSTED: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard for an installed fuel budget; restores the previous budget
/// (and exhaustion flag) when dropped.
#[derive(Debug)]
pub struct FuelGuard {
    prev_remaining: Option<u64>,
    prev_exhausted: bool,
}

impl Drop for FuelGuard {
    fn drop(&mut self) {
        REMAINING.set(self.prev_remaining);
        EXHAUSTED.set(self.prev_exhausted);
    }
}

/// Installs a fuel budget of `units` on the current thread and resets the
/// exhaustion flag. Solver entry points on this thread draw from the
/// budget until the guard is dropped.
#[must_use]
pub fn install(units: u64) -> FuelGuard {
    let prev_remaining = REMAINING.replace(Some(units));
    let prev_exhausted = EXHAUSTED.replace(false);
    FuelGuard { prev_remaining, prev_exhausted }
}

/// Spends `units` of fuel. Returns `false` — and latches the exhaustion
/// flag — when the installed budget cannot cover them; always returns
/// `true` when no budget is installed.
pub fn spend(units: u64) -> bool {
    REMAINING.with(|cell| match cell.get() {
        None => true,
        Some(left) if left >= units => {
            cell.set(Some(left - units));
            true
        }
        Some(_) => {
            cell.set(Some(0));
            EXHAUSTED.set(true);
            false
        }
    })
}

/// Whether the current budget has been exhausted since [`install`].
#[must_use]
pub fn exhausted() -> bool {
    EXHAUSTED.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_by_default() {
        assert!(spend(u64::MAX));
        assert!(!exhausted());
    }

    #[test]
    fn budget_depletes_and_latches() {
        let guard = install(3);
        assert!(spend(2));
        assert!(!exhausted());
        assert!(!spend(2), "only 1 unit left");
        assert!(exhausted());
        assert!(!spend(1), "budget pinned at zero after exhaustion");
        drop(guard);
        assert!(!exhausted());
        assert!(spend(1_000_000));
    }

    #[test]
    fn guards_nest_like_a_stack() {
        let outer = install(10);
        assert!(spend(4));
        {
            let inner = install(1);
            assert!(!spend(5));
            assert!(exhausted());
            drop(inner);
        }
        // The outer budget resumes where it left off.
        assert!(!exhausted());
        assert!(spend(6));
        assert!(!spend(1));
        drop(outer);
    }
}
