//! End-to-end tests for the triage workflow: `rid diff` as a CI gate
//! (exit non-zero only on *new* bugs), `.ridignore` suppression and the
//! `rid suppress` round-trip, `--no-refute`, the `gen-kernel --spurious`
//! knob, and hash stability across `--processes`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn rid() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rid"))
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rid-triage-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &Path, name: &str, content: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Three Figure 8-shaped bugs in three modules, so states can be
/// assembled with any subset of them.
fn buggy_module(module: &str, function: &str) -> String {
    format!(
        r#"module {module};
fn {function}(dev, set) {{
    let ret = pm_runtime_get_sync(dev);
    if (ret < 0) {{ return ret; }}
    ret = drm_crtc_helper_set_config(set);
    pm_runtime_put_autosuspend(dev);
    return ret;
}}"#
    )
}

/// `rid analyze --save-state` over the given files; reports are expected
/// (exit 1).
fn save_state(dir: &Path, state: &str, files: &[&PathBuf]) -> PathBuf {
    let state_path = dir.join(state);
    let mut cmd = rid();
    cmd.arg("analyze");
    for file in files {
        cmd.arg(file.to_str().unwrap());
    }
    let output =
        cmd.args(["--save-state", state_path.to_str().unwrap()]).output().unwrap();
    assert_eq!(output.status.code(), Some(1), "seeded bugs must be reported");
    state_path
}

#[test]
fn diff_classifies_new_resolved_unchanged_and_gates_on_new_only() {
    let dir = tempdir("diff");
    let a = write(&dir, "a.ril", &buggy_module("mod_a", "fn_unchanged"));
    let b = write(&dir, "b.ril", &buggy_module("mod_b", "fn_resolved"));
    let c = write(&dir, "c.ril", &buggy_module("mod_c", "fn_new"));
    let old = save_state(&dir, "old.json", &[&a, &b]);
    let new = save_state(&dir, "new.json", &[&a, &c]);

    // One new, one unchanged, one resolved ⇒ the new bug gates: exit 1.
    let output = rid()
        .args(["diff", old.to_str().unwrap(), new.to_str().unwrap()])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1), "a new bug must gate");
    let text = stdout(&output);
    assert!(text.contains("new") && text.contains("fn_new"), "{text}");
    assert!(text.contains("unchanged") && text.contains("fn_unchanged"), "{text}");
    assert!(text.contains("resolved"), "{text}");

    // Pre-existing bugs only (old vs old): nothing new, exit 0 even
    // though bugs exist. This is the CI-gate contract.
    let output = rid()
        .args(["diff", old.to_str().unwrap(), old.to_str().unwrap()])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(0), "pre-existing bugs must not gate");

    // A resolved bug alone (new vs old reversed … old has fn_resolved
    // gone in new) — diff new→old reports fn_resolved as new; sanity
    // check the direction matters.
    let output = rid()
        .args(["diff", new.to_str().unwrap(), old.to_str().unwrap()])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1), "direction matters");

    // Unreadable state file is fatal.
    let output = rid().args(["diff", "no-such.json", new.to_str().unwrap()]).output().unwrap();
    assert_eq!(output.status.code(), Some(3));
}

#[test]
fn suppression_round_trip_via_rid_suppress() {
    let dir = tempdir("suppress");
    let a = write(&dir, "a.ril", &buggy_module("mod_a", "fn_unchanged"));
    let c = write(&dir, "c.ril", &buggy_module("mod_c", "fn_new"));
    let old = save_state(&dir, "old.json", &[&a]);
    let new = save_state(&dir, "new.json", &[&a, &c]);

    // Find the new report's hash from the JSON diff output.
    let output = rid()
        .args(["diff", old.to_str().unwrap(), new.to_str().unwrap(), "--json"])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
    let value: serde_json::Value = serde_json::from_str(&stdout(&output)).unwrap();
    let new_entries = value["new"].as_array().unwrap();
    assert_eq!(new_entries.len(), 1);
    assert_eq!(new_entries[0]["function"].as_str(), Some("fn_new"));
    let hash = new_entries[0]["hash"].as_str().unwrap().to_owned();

    // Suppress it; the diff gate opens.
    let ignore = dir.join(".ridignore");
    let output = rid()
        .args(["suppress", &hash, "--file", ignore.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(0), "suppress must succeed");
    let output = rid()
        .args([
            "diff",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--ignore",
            ignore.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(0), "suppressed new bug must not gate");
    assert!(stdout(&output).contains("suppressed"), "{}", stdout(&output));

    // Idempotent: suppressing again leaves exactly one entry.
    let output = rid()
        .args(["suppress", &hash, "--file", ignore.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(0));
    let text = std::fs::read_to_string(&ignore).unwrap();
    assert_eq!(text.matches(&hash).count(), 1, "{text}");

    // A function-name pattern suppresses too.
    let pattern = write(&dir, "pattern.ridignore", "pattern:fn_ne*\n");
    let output = rid()
        .args([
            "diff",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--ignore",
            pattern.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(0), "pattern must suppress fn_new");

    // Malformed suppression files are fatal, not silently ignored.
    let bad = write(&dir, "bad.ridignore", "deadbeef\n");
    let output = rid()
        .args([
            "diff",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--ignore",
            bad.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(3), "malformed .ridignore is fatal");

    // So is a malformed hash handed to `rid suppress`.
    let output = rid().args(["suppress", "not-a-hash"]).output().unwrap();
    assert_eq!(output.status.code(), Some(3));
}

/// `gen-kernel --spurious` seeds known-spurious idioms, records them in
/// the ground truth, and the default (two-stage) analysis refutes every
/// one while `--no-refute` exposes the stage-one reports.
#[test]
fn no_refute_exposes_seeded_spurious_reports() {
    let dir = tempdir("spurious");
    let corpus = dir.join("corpus");
    let output = rid()
        .args([
            "gen-kernel",
            "--tiny",
            "--seed",
            "5",
            "--spurious",
            "2",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(0), "{}", String::from_utf8_lossy(&output.stderr));

    let truth: serde_json::Value = serde_json::from_str(
        &std::fs::read_to_string(corpus.join("ground_truth.json")).unwrap(),
    )
    .unwrap();
    let spurious: Vec<String> = truth["expected_spurious"]
        .as_array()
        .expect("ground truth records seeded-spurious functions")
        .iter()
        .map(|v| v.as_str().unwrap().to_owned())
        .collect();
    assert_eq!(spurious.len(), 2);

    let modules: Vec<String> = std::fs::read_dir(&corpus)
        .unwrap()
        .filter_map(|e| {
            let path = e.unwrap().path();
            (path.extension().is_some_and(|x| x == "ril"))
                .then(|| path.to_str().unwrap().to_owned())
        })
        .collect();

    let run = |extra: &[&str]| -> String {
        let mut cmd = rid();
        cmd.arg("analyze").args(&modules).arg("--json").args(extra);
        let output = cmd.output().unwrap();
        assert_eq!(output.status.code(), Some(1), "seeded true bugs must be reported");
        stdout(&output)
    };
    let two_stage = run(&[]);
    let stage_one = run(&["--no-refute"]);
    for function in &spurious {
        assert!(
            !two_stage.contains(function.as_str()),
            "refutation must remove `{function}`"
        );
        assert!(
            stage_one.contains(function.as_str()),
            "--no-refute must expose `{function}`"
        );
    }
}

/// The daemon-based CI gate matches `rid diff`: `rid client --op diff`
/// applies the local suppression file to the returned `new` entries
/// before deciding its exit code, so a triaged finding opens the gate
/// even though the daemon's raw `new_count` stays positive.
#[cfg(unix)]
#[test]
fn client_diff_gate_applies_local_suppressions() {
    let dir = tempdir("client-diff");
    let socket = dir.join("rid.sock");
    let a = write(&dir, "a.ril", &buggy_module("mod_a", "fn_unchanged"));
    let c = write(&dir, "c.ril", &buggy_module("mod_c", "fn_new"));
    let baseline = save_state(&dir, "baseline.json", &[&a]);

    let mut daemon = rid()
        .args(["serve", "--socket", socket.to_str().unwrap()])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let client = |extra: &[&str]| -> Output {
        let mut cmd = rid();
        cmd.args(["client", "--socket", socket.to_str().unwrap()]);
        cmd.args(extra);
        cmd.current_dir(&dir);
        cmd.output().unwrap()
    };
    for _ in 0..600 {
        if client(&["--op", "ping"]).status.code() == Some(0) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let output = client(&[
        "--op",
        "register",
        "--project",
        "p",
        a.to_str().unwrap(),
        c.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stdout(&output));

    // One pre-existing bug (unchanged) and one new one: the gate closes.
    let diff = |extra: &[&str]| -> Output {
        let mut args = vec!["--op", "diff", "--project", "p", "--baseline"];
        args.push(baseline.to_str().unwrap());
        args.extend_from_slice(extra);
        client(&args)
    };
    let output = diff(&[]);
    assert_eq!(output.status.code(), Some(1), "a new bug must gate: {}", stdout(&output));
    let value: serde_json::Value = serde_json::from_str(stdout(&output).trim()).unwrap();
    let new = value["result"]["new"].as_array().unwrap();
    assert_eq!(new.len(), 1, "{value}");
    assert_eq!(new[0]["function"].as_str(), Some("fn_new"));
    let hash = new[0]["hash"].as_str().unwrap().to_owned();

    // Suppress the finding: the daemon still reports it raw, but the
    // client-side gate opens — identical to the `rid diff` contract.
    let ignore = dir.join(".ridignore");
    let output = rid()
        .args(["suppress", &hash, "--file", ignore.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(0));
    let output = diff(&["--ignore", ignore.to_str().unwrap()]);
    assert_eq!(
        output.status.code(),
        Some(0),
        "suppressed new bug must not gate the daemon flow: {}",
        stdout(&output)
    );
    let value: serde_json::Value = serde_json::from_str(stdout(&output).trim()).unwrap();
    assert_eq!(
        value["result"]["new_count"].as_i64(),
        Some(1),
        "the daemon response stays raw: {value}"
    );

    // The default `.ridignore` in the invoking directory is picked up
    // without `--ignore`, and a malformed `--ignore` file is fatal
    // before any gating happens.
    let output = diff(&[]);
    assert_eq!(output.status.code(), Some(0), "cwd .ridignore applies: {}", stdout(&output));
    let bad = write(&dir, "bad.ridignore", "deadbeef\n");
    let output = diff(&["--ignore", bad.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(3), "malformed .ridignore is fatal");

    let output = client(&["--op", "shutdown"]);
    assert_eq!(output.status.code(), Some(0), "{}", stdout(&output));
    daemon.wait().unwrap();
}

/// The `REPORTS.md` stability guarantee, end to end through the binary:
/// `--processes` and `--threads` runs hash identically to a sequential
/// one.
#[test]
fn hashes_are_stable_across_processes_and_threads() {
    let dir = tempdir("hash-stability");
    let a = write(&dir, "a.ril", &buggy_module("mod_a", "fn_unchanged"));
    let c = write(&dir, "c.ril", &buggy_module("mod_c", "fn_new"));
    let files = [&a, &c];
    let sequential = save_state(&dir, "seq.json", &files);

    let variants: [&[&str]; 2] = [&["--processes", "2"], &["--threads", "4"]];
    for (i, extra) in variants.iter().enumerate() {
        let state_path = dir.join(format!("variant{i}.json"));
        let mut cmd = rid();
        cmd.arg("analyze");
        for file in files {
            cmd.arg(file.to_str().unwrap());
        }
        cmd.args(["--save-state", state_path.to_str().unwrap()]).args(*extra);
        let output = cmd.output().unwrap();
        assert_eq!(output.status.code(), Some(1));

        // Hash both states and compare as sets; `rid diff` agreeing
        // that nothing is new is the same statement through the CLI.
        let output = rid()
            .args(["diff", sequential.to_str().unwrap(), state_path.to_str().unwrap()])
            .current_dir(&dir)
            .output()
            .unwrap();
        assert_eq!(output.status.code(), Some(0), "variant {extra:?} moved a hash");
        let text = stdout(&output);
        assert!(!text.contains("resolved"), "variant {extra:?} lost a report: {text}");

        let seq = rid_core::persist::load_state(&sequential).unwrap();
        let var = rid_core::persist::load_state(&state_path).unwrap();
        let hash = |r: &rid_core::AnalysisResult| -> Vec<String> {
            let mut h: Vec<String> = r.reports.iter().map(rid_core::report_hash).collect();
            h.sort_unstable();
            h
        };
        assert_eq!(hash(&seq), hash(&var), "variant {extra:?}");
    }
}
