//! End-to-end tests driving the `rid` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn rid() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rid"))
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rid-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &std::path::Path, name: &str, content: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

const FIG8: &str = r#"module radeon;
fn radeon_crtc_set_config(dev, set) {
    let ret = pm_runtime_get_sync(dev);
    if (ret < 0) { return ret; }
    ret = drm_crtc_helper_set_config(set);
    pm_runtime_put_autosuspend(dev);
    return ret;
}"#;

const CLEAN: &str = r#"module clean;
fn balanced(dev) {
    pm_runtime_get_sync(dev);
    pm_runtime_put(dev);
    return 0;
}"#;

#[test]
fn analyze_reports_figure8_and_exits_nonzero() {
    let dir = tempdir("analyze");
    let file = write(&dir, "radeon.ril", FIG8);
    let output = rid().args(["analyze", file.to_str().unwrap()]).output().unwrap();
    assert_eq!(output.status.code(), Some(1), "bugs found ⇒ exit 1");
    let text = stdout(&output);
    assert!(text.contains("radeon_crtc_set_config"), "{text}");
    assert!(text.contains("[dev].pm"), "parameter names restored: {text}");
}

#[test]
fn analyze_clean_module_exits_zero() {
    let dir = tempdir("clean");
    let file = write(&dir, "clean.ril", CLEAN);
    let output = rid().args(["analyze", file.to_str().unwrap()]).output().unwrap();
    assert!(output.status.success(), "{}", stderr(&output));
    assert!(stdout(&output).contains("no inconsistent path pairs"));
}

#[test]
fn analyze_json_output_parses() {
    let dir = tempdir("json");
    let file = write(&dir, "radeon.ril", FIG8);
    let output =
        rid().args(["analyze", file.to_str().unwrap(), "--json"]).output().unwrap();
    let reports: serde_json::Value = serde_json::from_str(&stdout(&output)).unwrap();
    assert_eq!(reports.as_array().unwrap().len(), 1);
    assert_eq!(reports[0]["function"], "radeon_crtc_set_config");
}

#[test]
fn summaries_save_and_reload() {
    let dir = tempdir("summaries");
    let lib = write(
        &dir,
        "lib.ril",
        r#"module lib;
        fn get_dev(dev) {
            let r = pm_runtime_get_sync(dev);
            if (r < 0) { return r; }
            return 0;
        }"#,
    );
    let db = dir.join("db.json");
    let output = rid()
        .args([
            "analyze",
            lib.to_str().unwrap(),
            "--save-summaries",
            db.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(db.exists(), "{}", stderr(&output));

    // A second compilation unit using get_dev's summary from disk (§5.3).
    let app = write(
        &dir,
        "app.ril",
        r#"module app;
        fn use_dev(dev) {
            let r = get_dev(dev);
            if (r) { return 0; }   // swallows the error: +1 retained
            pm_runtime_put(dev);
            return 0;
        }"#,
    );
    let output = rid()
        .args(["analyze", app.to_str().unwrap(), "--summaries", db.to_str().unwrap()])
        .output()
        .unwrap();
    let text = stdout(&output);
    assert!(text.contains("use_dev"), "bug via persisted summary: {text}");
}

#[test]
fn classify_prints_census() {
    let dir = tempdir("classify");
    let file = write(&dir, "clean.ril", CLEAN);
    let output = rid().args(["classify", file.to_str().unwrap()]).output().unwrap();
    assert!(output.status.success());
    let text = stdout(&output);
    assert!(text.contains("refcount-changing      : 1"), "{text}");
    assert!(text.contains("balanced: RefcountChanging"), "{text}");
}

#[test]
fn summarize_prints_entries() {
    let dir = tempdir("summarize");
    let file = write(&dir, "clean.ril", CLEAN);
    let output = rid()
        .args(["summarize", file.to_str().unwrap(), "--function", "balanced"])
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("summary of balanced"), "{text}");
}

#[test]
fn baseline_command_runs() {
    let dir = tempdir("baseline");
    let file = write(
        &dir,
        "ext.ril",
        "module ext; fn grab(obj) { Py_INCREF(obj); return; }",
    );
    let output = rid()
        .args(["baseline", file.to_str().unwrap(), "--apis", "python"])
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", stderr(&output));
    assert!(stdout(&output).contains("grab"), "{}", stdout(&output));
}

#[test]
fn gen_kernel_writes_corpus() {
    let dir = tempdir("gen");
    let out = dir.join("corpus");
    let output = rid()
        .args(["gen-kernel", "--tiny", "--seed", "5", "--out", out.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", stderr(&output));
    assert!(out.join("ground_truth.json").exists());
    let modules = std::fs::read_dir(&out).unwrap().count();
    assert!(modules > 5, "{modules} files written");

    // The generated corpus can be re-analyzed by the same binary.
    let files: Vec<String> = std::fs::read_dir(&out)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "ril"))
                .then(|| p.to_str().unwrap().to_owned())
        })
        .collect();
    let mut cmd = rid();
    cmd.arg("analyze");
    for f in &files {
        cmd.arg(f);
    }
    let output = cmd.output().unwrap();
    assert_eq!(output.status.code(), Some(1), "seeded bugs must be reported");
}

#[test]
fn callbacks_flag_catches_figure10() {
    let dir = tempdir("callbacks");
    let file = write(
        &dir,
        "arizona.ril",
        r#"module arizona;
        fn arizona_irq_thread(irq, data) {
            let ret = pm_runtime_get_sync(data.dev);
            if (ret < 0) { return 0; }
            handle(data);
            pm_runtime_put(data.dev);
            return 1;
        }
        fn setup(dev) {
            request_irq(dev.irq, @arizona_irq_thread, dev);
            return 0;
        }"#,
    );
    // Without the flag: the documented false negative.
    let output = rid().args(["analyze", file.to_str().unwrap()]).output().unwrap();
    assert!(output.status.success(), "baseline misses Figure 10");
    // With --callbacks: caught, labelled as a callback-contract report.
    let output = rid()
        .args(["analyze", file.to_str().unwrap(), "--callbacks"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
    let text = stdout(&output);
    assert!(text.contains("callback contract"), "{text}");
    assert!(text.contains("arizona_irq_thread"), "{text}");
}

#[test]
fn recheck_workflow() {
    let dir = tempdir("recheck");
    let buggy = write(
        &dir,
        "lib.ril",
        r#"module lib;
        fn helper(dev) {
            let r = chk(dev);
            if (r < 0) { return 0; }
            pm_runtime_get_sync(dev);
            return 0;
        }"#,
    );
    let state = dir.join("state.json");
    let output = rid()
        .args([
            "analyze",
            buggy.to_str().unwrap(),
            "--save-state",
            state.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1), "{}", stderr(&output));
    assert!(state.exists());

    // Fix the bug; recheck only `helper`.
    let fixed = write(
        &dir,
        "lib.ril",
        r#"module lib;
        fn helper(dev) {
            let r = chk(dev);
            if (r < 0) { return -1; }
            pm_runtime_get_sync(dev);
            return 0;
        }"#,
    );
    let output = rid()
        .args([
            "recheck",
            fixed.to_str().unwrap(),
            "--state",
            state.to_str().unwrap(),
            "--changed",
            "helper",
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", stderr(&output));
    assert!(stdout(&output).contains("no inconsistent path pairs"));
    assert!(stderr(&output).contains("rechecked 1 function(s)"), "{}", stderr(&output));
}

#[test]
fn mine_discovers_and_saves_summaries() {
    let dir = tempdir("mine");
    let src = write(
        &dir,
        "kref.ril",
        r#"module m;
        fn lose(obj) {
            kref_get(obj);
            let st = probe(obj);
            if (st < 0) { return 0; }
            kref_put(obj);
            return 0;
        }"#,
    );
    let db = dir.join("mined.json");
    let output = rid()
        .args([
            "mine",
            src.to_str().unwrap(),
            "--field",
            "refs",
            "--save-summaries",
            db.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", stderr(&output));
    assert!(stdout(&output).contains("kref_get / kref_put"), "{}", stdout(&output));
    assert!(db.exists());

    // The mined summaries drive a scan with zero hand-written specs.
    let output = rid()
        .args([
            "analyze",
            src.to_str().unwrap(),
            "--apis",
            "none",
            "--summaries",
            db.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1), "{}", stderr(&output));
    assert!(stdout(&output).contains("lose"));
}

#[test]
fn degraded_analysis_exits_2_with_summary_line() {
    let dir = tempdir("degraded");
    let branchy = write(
        &dir,
        "branchy.ril",
        r#"module m;
        fn branchy(dev) {
            let r = pm_runtime_get_sync(dev);
            if (r < 0) { pm_runtime_put(dev); return r; }
            pm_runtime_put(dev);
            return 0;
        }"#,
    );
    // Bug-free either way; zero solver fuel forces a SolverFuel degradation.
    let output = rid()
        .args(["analyze", branchy.to_str().unwrap(), "--fuel", "0"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2), "{}", stderr(&output));
    let err = stderr(&output);
    assert!(err.contains("1 function degraded: 1 solver-fuel"), "{err}");
    // Without the budget the same file is clean.
    let output = rid().args(["analyze", branchy.to_str().unwrap()]).output().unwrap();
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
}

#[test]
fn bad_usage_exits_3() {
    let output = rid().output().unwrap();
    assert_eq!(output.status.code(), Some(3));
    let output = rid().args(["analyze", "/nonexistent/file.ril"]).output().unwrap();
    assert_eq!(output.status.code(), Some(3));
    let output = rid()
        .args(["analyze", "whatever.ril", "--deadline-ms", "soon"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(3), "unparsable budget flag is fatal");
}

/// The chaos smoke path from the CI pipeline, run in-process: start the
/// daemon on a socket with `--state-dir`, register and analyze a
/// project, snapshot, apply a post-snapshot patch (journal-only state),
/// then SIGKILL the daemon and restart it on the same state dir. The
/// restarted daemon must report per-project stats identical to the
/// pre-crash reference without any re-registration.
#[cfg(unix)]
#[test]
fn serve_state_dir_survives_kill_nine() {
    let dir = tempdir("kill9");
    let state = dir.join("state");
    let socket = dir.join("rid.sock");
    let fig8 = write(&dir, "radeon.ril", FIG8);
    let clean = write(&dir, "clean.ril", CLEAN);
    // The patch: same file key as the registered `clean.ril`, new body.
    let edit_dir = tempdir("kill9-edit");
    let clean_edit = write(
        &edit_dir,
        "clean.ril",
        r#"module clean;
fn balanced(dev) {
    let r = pm_runtime_get_sync(dev);
    if (r < 0) { return r; }
    pm_runtime_put(dev);
    return 0;
}"#,
    );

    let spawn_daemon = || {
        rid()
            .args([
                "serve",
                "--socket",
                socket.to_str().unwrap(),
                "--state-dir",
                state.to_str().unwrap(),
            ])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap()
    };
    // The socket file may be a stale leftover from the killed daemon,
    // so readiness means a `ping` actually answers, not that the path
    // exists.
    let client = |extra: &[&str]| -> Output {
        let mut cmd = rid();
        cmd.args(["client", "--socket", socket.to_str().unwrap()]);
        cmd.args(extra);
        cmd.output().unwrap()
    };
    let wait_ready = || {
        for _ in 0..600 {
            let output = client(&["--op", "ping"]);
            if output.status.code() == Some(0) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("daemon never answered ping on {}", socket.display());
    };

    let mut daemon = spawn_daemon();
    wait_ready();
    let output = client(&[
        "--op",
        "register",
        "--project",
        "p",
        fig8.to_str().unwrap(),
        clean.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stdout(&output));
    let output = client(&["--op", "analyze", "--project", "p"]);
    assert_eq!(output.status.code(), Some(1), "FIG8 leak found: {}", stdout(&output));
    let output = client(&["--op", "snapshot"]);
    assert_eq!(output.status.code(), Some(0), "{}", stdout(&output));
    let output = client(&["--op", "patch", "--project", "p", clean_edit.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(1), "leak still present: {}", stdout(&output));
    let output = client(&["--op", "stats"]);
    assert_eq!(output.status.code(), Some(0), "{}", stdout(&output));
    let reference: serde_json::Value = serde_json::from_str(stdout(&output).trim()).unwrap();

    // kill -9: no drain, no shutdown snapshot, no goodbye.
    daemon.kill().unwrap();
    daemon.wait().unwrap();

    let mut daemon = spawn_daemon();
    wait_ready();
    let output = client(&["--op", "stats", "--retries", "3"]);
    assert_eq!(output.status.code(), Some(0), "{}", stdout(&output));
    let restored: serde_json::Value = serde_json::from_str(stdout(&output).trim()).unwrap();
    assert_eq!(
        serde_json::to_string(&restored["result"]["projects"]).unwrap(),
        serde_json::to_string(&reference["result"]["projects"]).unwrap(),
        "restored project stats equal the pre-crash reference"
    );
    assert_eq!(
        restored["result"]["server"]["restored_projects"].as_i64(),
        Some(1),
        "the project came back from the snapshot, not re-registration"
    );
    assert!(
        restored["result"]["server"]["replayed_entries"].as_i64().unwrap_or(0) >= 1,
        "the post-snapshot patch came back from the journal: {restored}"
    );

    let output = client(&["--op", "shutdown"]);
    assert_eq!(output.status.code(), Some(0), "{}", stdout(&output));
    let status = daemon.wait().unwrap();
    assert!(status.success(), "daemon drains and exits cleanly after shutdown");
}
