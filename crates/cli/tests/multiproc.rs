//! Differential suite for `rid analyze --processes P`: the sharded
//! multi-process coordinator must be **byte-identical** to a sequential
//! in-process run — same `--json` stdout, same `--save-summaries` DB
//! bytes, same RIDSS1 `--cache` store bytes, same exit code — across
//! process counts, store temperature (cold vs warm), and fault plans
//! (clean / panic+retry / solver stall).
//!
//! Everything goes through the real binary (`CARGO_BIN_EXE_rid`), so the
//! worker re-exec path (`__rid-shard-worker`) is exercised exactly as in
//! production.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use rid_core::FaultPlan;

fn rid() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rid"))
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rid-multiproc-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Generates the tiny kernel corpus through the binary and returns the
/// module paths in stable (sorted) program order.
fn gen_corpus(dir: &Path, seed: u64) -> Vec<String> {
    let out = dir.join("corpus");
    let status = rid()
        .args(["gen-kernel", "--tiny", "--seed", &seed.to_string(), "--out"])
        .arg(&out)
        .status()
        .unwrap();
    assert!(status.success());
    let mut files: Vec<String> = std::fs::read_dir(&out)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "ril"))
        .map(|p| p.display().to_string())
        .collect();
    files.sort();
    assert!(!files.is_empty());
    files
}

struct Run {
    stdout: Vec<u8>,
    db: Vec<u8>,
    code: i32,
}

/// One `rid analyze --json --save-summaries` invocation with optional
/// `--processes`, `--fault-plan`, and `--cache`.
fn analyze(
    corpus: &[String],
    dir: &Path,
    tag: &str,
    processes: Option<usize>,
    plan: Option<&Path>,
    cache: Option<&Path>,
) -> Run {
    let db_path = dir.join(format!("db-{tag}.json"));
    let mut cmd = rid();
    cmd.arg("analyze").args(corpus).arg("--json").arg("--save-summaries").arg(&db_path);
    if let Some(p) = processes {
        cmd.args(["--processes", &p.to_string()]);
    }
    if let Some(path) = plan {
        cmd.arg("--fault-plan").arg(path);
    }
    if let Some(path) = cache {
        cmd.arg("--cache").arg(path);
    }
    let Output { status, stdout, stderr } = cmd.output().unwrap();
    let code = status.code().unwrap_or(-1);
    assert!(
        (0..=2).contains(&code),
        "analysis must not be fatal ({tag}): {}",
        String::from_utf8_lossy(&stderr)
    );
    Run { stdout, db: std::fs::read(&db_path).unwrap(), code }
}

fn assert_identical(reference: &Run, shard: &Run, what: &str) {
    assert_eq!(reference.code, shard.code, "exit codes diverge: {what}");
    assert!(reference.stdout == shard.stdout, "`--json` stdout bytes diverge: {what}");
    assert!(reference.db == shard.db, "summary DB bytes diverge: {what}");
}

/// Runs the full P × temperature matrix for one fault plan and asserts
/// byte-identity against the sequential reference throughout.
fn differential_matrix(name: &str, seed: u64, plan: &FaultPlan) {
    let dir = tempdir(name);
    let corpus = gen_corpus(&dir, seed);
    let plan_path = (!plan.is_none()).then(|| {
        let path = dir.join("plan.json");
        std::fs::write(&path, serde_json::to_string(plan).unwrap()).unwrap();
        path
    });
    let plan_arg = plan_path.as_deref();

    // Sequential references: plain cold, then cold+warm through a store.
    let reference = analyze(&corpus, &dir, "ref", None, plan_arg, None);
    let ref_store = dir.join("ref.rss");
    let _ = analyze(&corpus, &dir, "ref-c0", None, plan_arg, Some(&ref_store));
    let ref_warm = analyze(&corpus, &dir, "ref-c1", None, plan_arg, Some(&ref_store));
    assert_identical(&reference, &ref_warm, "sequential warm vs cold");
    assert!(reference.code != 0 || name == "clean", "corpus should surface bugs: {name}");

    for processes in [1usize, 2, 4] {
        let tag = format!("p{processes}");
        let cold = analyze(&corpus, &dir, &tag, Some(processes), plan_arg, None);
        assert_identical(&reference, &cold, &format!("{name}: cold, {processes} proc(s)"));

        let store = dir.join(format!("{tag}.rss"));
        let first =
            analyze(&corpus, &dir, &format!("{tag}-c0"), Some(processes), plan_arg, Some(&store));
        assert_identical(&reference, &first, &format!("{name}: cold+store, {processes} proc(s)"));
        let warm =
            analyze(&corpus, &dir, &format!("{tag}-c1"), Some(processes), plan_arg, Some(&store));
        assert_identical(&reference, &warm, &format!("{name}: warm, {processes} proc(s)"));
        assert!(
            std::fs::read(&store).unwrap() == std::fs::read(&ref_store).unwrap(),
            "{name}: RIDSS1 store bytes diverge at {processes} proc(s)"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn processes_match_sequential_clean() {
    differential_matrix("clean", 7, &FaultPlan::none());
}

#[test]
fn processes_match_sequential_under_panic_faults() {
    differential_matrix(
        "panic",
        11,
        &FaultPlan { seed: 42, panic_rate: 0.08, ..FaultPlan::none() },
    );
}

#[test]
fn processes_match_sequential_under_stall_faults() {
    differential_matrix(
        "stall",
        13,
        &FaultPlan { seed: 9, stall_rate: 0.25, ..FaultPlan::none() },
    );
}

#[test]
fn processes_rejects_separate_mode() {
    let dir = tempdir("flags");
    let corpus = gen_corpus(&dir, 3);
    let output = rid()
        .arg("analyze")
        .args(&corpus)
        .args(["--processes", "2", "--separate"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(3), "incompatible flags are fatal");
    assert!(String::from_utf8_lossy(&output.stderr).contains("--separate"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn steal_batch_does_not_change_output() {
    let dir = tempdir("steal-batch");
    let corpus = gen_corpus(&dir, 5);
    let reference = analyze(&corpus, &dir, "sb-ref", None, None, None);
    for batch in ["1", "4", "64"] {
        let db_path = dir.join(format!("db-sb{batch}.json"));
        let output = rid()
            .arg("analyze")
            .args(&corpus)
            .args(["--json", "--threads", "4", "--steal-batch", batch, "--save-summaries"])
            .arg(&db_path)
            .output()
            .unwrap();
        assert_eq!(output.status.code(), Some(reference.code));
        assert!(output.stdout == reference.stdout, "steal-batch {batch} changed reports");
        assert!(
            std::fs::read(&db_path).unwrap() == reference.db,
            "steal-batch {batch} changed summaries"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cross-process trace stitching must be lossless: the merged
/// `--processes 4` trace carries exactly the same symbolic-execution
/// span census (per-function `exec` counts) as a `--processes 1` run,
/// and the Chrome export renders every shard worker as its own pid lane
/// under one run-wide trace id.
#[test]
fn merged_trace_exec_census_matches_single_process() {
    let dir = tempdir("trace-census");
    let corpus = gen_corpus(&dir, 17);
    let traced = |tag: &str, processes: usize| {
        let trace_path = dir.join(format!("trace-{tag}.json"));
        let output = rid()
            .arg("analyze")
            .args(&corpus)
            .args(["--processes", &processes.to_string(), "--trace"])
            .arg(&trace_path)
            .output()
            .unwrap();
        let code = output.status.code().unwrap_or(-1);
        assert!((0..=2).contains(&code), "analyze failed: {code}");
        let jsonl =
            std::fs::read_to_string(format!("{}.jsonl", trace_path.display())).unwrap();
        let mut census: std::collections::BTreeMap<String, usize> = Default::default();
        for event in rid_core::parse_trace_jsonl(&jsonl) {
            if event.kind == rid_obs::SpanKind::Exec {
                *census.entry(event.name).or_insert(0) += 1;
            }
        }
        (census, std::fs::read_to_string(&trace_path).unwrap())
    };

    let (one, _) = traced("p1", 1);
    let (four, chrome) = traced("p4", 4);
    assert!(!one.is_empty(), "--processes 1 trace captured no exec spans");
    assert_eq!(one, four, "exec span census must not depend on process count");

    // The merged Chrome export: several pid lanes, one trace id.
    let value: serde_json::Value = serde_json::from_str(&chrome).unwrap();
    let events = value["traceEvents"].as_array().unwrap();
    let mut pids = std::collections::BTreeSet::new();
    for event in events {
        pids.insert(event["pid"].as_u64().unwrap());
    }
    assert!(pids.len() >= 2, "expected coordinator + worker pid lanes, got {pids:?}");
    let trace_id = value["otherData"]["trace_id"].as_str().unwrap();
    assert_eq!(trace_id.len(), 16, "trace id is 16 hex digits: {trace_id}");
    assert!(u64::from_str_radix(trace_id, 16).unwrap() > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
