//! `rid` — the command-line front door to the RID reproduction.
//!
//! ```text
//! rid analyze <file.ril>... [--apis dpm|python|none] [--summaries db.json]
//!             [--save-summaries out.json] [--threads N] [--steal-batch N]
//!             [--processes P] [--no-selective] [--separate] [--json]
//!             [--no-refute] [--deadline-ms N] [--fuel N]
//!             [--global-deadline-ms N] [--exec-mode auto|tree|per-path]
//!             [--fault-plan plan.json] [--cache cache.json]
//!             [--trace out.json] [--metrics out.json]
//! rid explain --state s.json [<file.ril>...] [--function <name>]
//! rid diff <old-state.json> <new-state.json> [--ignore .ridignore] [--json]
//! rid suppress <hash> [--file .ridignore]
//! rid classify <file.ril>... [--apis dpm|python|none]
//! rid summarize <file.ril>... --function <name> [--apis dpm|python|none]
//! rid baseline <file.ril>... [--apis python]
//! rid recheck <file.ril>... --state s.json --changed f,g [--save-state s.json]
//! rid mine <file.ril>... [--field refs] [--save-summaries out.json]
//! rid gen-kernel [--seed N] [--tiny] --out <dir>
//! rid serve --socket <path> [--queue-cap N]   (or --stdio)
//! rid client --socket <path> --op <op> [--project p] [<file.ril>...]
//!            [--function <name>] [--deadline-ms N]
//! ```
//!
//! `rid serve` keeps analysis state resident between requests: one
//! registered project per name, warm summary cache, batched `patch`
//! requests. The protocol is newline-delimited JSON — see `PROTOCOL.md`
//! at the repository root. `rid client` wraps one request/response
//! round-trip over the daemon's Unix socket.
//!
//! `--trace <path>` records the run with [`rid_obs`] and writes a Chrome
//! `trace_event` file to `<path>` (load it in `chrome://tracing` or
//! Perfetto) plus the raw JSONL event log to `<path>.jsonl`.
//! `--metrics <path>` writes the metrics-registry snapshot as JSON.
//! `rid explain` renders the full provenance of every report in a saved
//! analysis state: per-side path constraints, the solver verdict, block
//! traces, and the callee summaries used.
//!
//! Exit codes: 0 = clean, 1 = bugs reported, 2 = analysis degraded
//! (budgets/limits/panics, but no bugs), 3 = fatal error (bad usage,
//! unreadable input, parse failure). Bugs take precedence over
//! degradation.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rid_core::persist::{
    analyze_modules_separately, load_cache, load_db, load_state, save_cache, save_db,
    save_state,
};
use rid_core::{AnalysisOptions, SummaryDb};

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  rid analyze <file.ril>... [--apis dpm|python|none] [--summaries db.json]
              [--save-summaries out.json] [--threads N] [--steal-batch N]
              [--processes P] [--no-selective] [--separate] [--callbacks]
              [--json] [--no-refute] [--deadline-ms N] [--fuel N]
              [--global-deadline-ms N] [--exec-mode auto|tree|per-path]
              [--fault-plan plan.json] [--cache cache.json]
              [--trace out.json] [--metrics out.json]
  rid explain --state s.json [<file.ril>...] [--function <name>]
  rid explain --flight-recorder <state-dir|dir|file.frec>
  rid diff <old-state.json> <new-state.json> [--ignore .ridignore] [--json]
  rid suppress <hash> [--file .ridignore]
  rid classify <file.ril>... [--apis dpm|python|none]
  rid summarize <file.ril>... --function <name> [--apis dpm|python|none]
  rid baseline <file.ril>... [--apis python]
  rid recheck <file.ril>... --state s.json --changed f,g [--save-state s.json]
  rid mine <file.ril>... [--field refs] [--save-summaries out.json]
  rid gen-kernel [--seed N] [--tiny] [--spurious N] --out <dir>
  rid serve --socket <path> [--queue-cap N] [--state-dir <dir>]
            [--max-frame-bytes N] [--trace out.json] [--chaos-seed N]
            [--chaos-torn-rate R] [--chaos-fsync-rate R]   (or --stdio)
  rid client --socket <path> --op <op> [--project p] [<file.ril>...]
             [--function <name>] [--baseline <old-state.json>]
             [--ignore .ridignore] [--deadline-ms N] [--idem <key>]
             [--format json|prometheus]
             [--retries N] [--retry-base-ms N] [--timeout-ms N]
  rid top --socket <path> [--interval-ms N] [--iters N]"
    );
    ExitCode::from(EXIT_FATAL)
}

/// Exit code: no bugs, nothing degraded.
const EXIT_CLEAN: u8 = 0;
/// Exit code: IPP bug reports were produced.
const EXIT_BUGS: u8 = 1;
/// Exit code: no bugs, but some functions degraded (budget/limit/panic).
const EXIT_DEGRADED: u8 = 2;
/// Exit code: fatal error (usage, I/O, parse).
const EXIT_FATAL: u8 = 3;

struct Args {
    command: String,
    files: Vec<PathBuf>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

fn parse_args() -> Option<Args> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next()?;
    let mut files = Vec::new();
    let mut options = HashMap::new();
    let mut flags = Vec::new();
    let rest: Vec<String> = argv.collect();
    let mut i = 0;
    while i < rest.len() {
        let arg = &rest[i];
        if let Some(name) = arg.strip_prefix("--") {
            if matches!(
                name,
                "json" | "no-selective" | "tiny" | "separate" | "callbacks" | "stdio"
                    | "no-refute"
            ) {
                flags.push(name.to_owned());
            } else {
                i += 1;
                options.insert(name.to_owned(), rest.get(i)?.clone());
            }
        } else {
            files.push(PathBuf::from(arg));
        }
        i += 1;
    }
    Some(Args { command, files, options, flags })
}

fn predefined_apis(args: &Args) -> Result<SummaryDb, String> {
    let mut db = match args.options.get("apis").map(String::as_str) {
        Some("dpm") | None => rid_core::apis::linux_dpm_apis(),
        Some("python") => rid_core::apis::python_c_apis(),
        Some("none") => SummaryDb::new(),
        Some(other) => return Err(format!("unknown --apis value `{other}`")),
    };
    if let Some(path) = args.options.get("summaries") {
        let loaded = load_db(Path::new(path)).map_err(|e| format!("--summaries: {e}"))?;
        db.merge(loaded);
    }
    Ok(db)
}

fn read_sources(files: &[PathBuf]) -> Result<Vec<String>, String> {
    if files.is_empty() {
        return Err("no input files".to_owned());
    }
    files
        .iter()
        .map(|p| std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display())))
        .collect()
}

fn analysis_options(args: &Args) -> Result<AnalysisOptions, String> {
    let ms_option = |name: &str| -> Result<Option<std::time::Duration>, String> {
        args.options
            .get(name)
            .map(|v| {
                v.parse::<u64>()
                    .map(std::time::Duration::from_millis)
                    .map_err(|_| format!("--{name} expects milliseconds, got `{v}`"))
            })
            .transpose()
    };
    let budget = rid_core::Budget {
        func_deadline: ms_option("deadline-ms")?,
        global_deadline: ms_option("global-deadline-ms")?,
        solver_fuel: args
            .options
            .get("fuel")
            .map(|v| v.parse().map_err(|_| format!("--fuel expects a number, got `{v}`")))
            .transpose()?,
    };
    let exec_mode = match args.options.get("exec-mode").map(String::as_str) {
        None | Some("auto") => rid_core::ExecMode::Auto,
        Some("tree") => rid_core::ExecMode::Tree,
        Some("per-path") => rid_core::ExecMode::PerPath,
        Some(other) => return Err(format!("unknown --exec-mode value `{other}`")),
    };
    Ok(AnalysisOptions {
        selective: !args.flags.iter().any(|f| f == "no-selective"),
        check_callbacks: args.flags.iter().any(|f| f == "callbacks"),
        refute: !args.flags.iter().any(|f| f == "no-refute"),
        threads: args
            .options
            .get("threads")
            .and_then(|t| t.parse().ok())
            .unwrap_or(1),
        steal_batch: args
            .options
            .get("steal-batch")
            .and_then(|t| t.parse().ok())
            .unwrap_or(0),
        budget,
        exec_mode,
        ..Default::default()
    })
}

/// Prints the one-line degradation summary (when anything degraded) and
/// picks the exit code: bugs beat degradation beats clean.
fn finish_analysis(result: &rid_core::AnalysisResult) -> u8 {
    let line = rid_core::degradation_summary_line(result.degraded.values());
    if !line.is_empty() {
        eprintln!("{line}");
    }
    if !result.reports.is_empty() {
        EXIT_BUGS
    } else if !result.degraded.is_empty() {
        EXIT_DEGRADED
    } else {
        EXIT_CLEAN
    }
}

fn cmd_analyze(args: &Args) -> Result<u8, String> {
    let trace_path = args.options.get("trace").map(PathBuf::from);
    let metrics_path = args.options.get("metrics").map(PathBuf::from);
    if trace_path.is_some() {
        // Enable before parsing so the Lower spans are captured too.
        rid_obs::trace::enable(rid_obs::trace::DEFAULT_CAPACITY);
    }

    let sources = read_sources(&args.files)?;
    let apis = predefined_apis(args)?;
    let options = analysis_options(args)?;
    // Fault plans are a testing instrument: they let the differential
    // suite drive `--processes`/`--threads` runs through the exact
    // degradation machinery a sequential reference run hits.
    let faults: rid_core::FaultPlan = match args.options.get("fault-plan") {
        Some(path) => serde_json::from_str(
            &std::fs::read_to_string(path).map_err(|e| format!("--fault-plan: {path}: {e}"))?,
        )
        .map_err(|e| format!("--fault-plan: {path}: {e}"))?,
        None => rid_core::FaultPlan::none(),
    };
    let processes: Option<usize> = args
        .options
        .get("processes")
        .map(|v| v.parse().map_err(|_| format!("--processes expects a count, got `{v}`")))
        .transpose()?;

    let cache_path = args.options.get("cache").map(PathBuf::from);
    // Shard-worker trace lanes, captured only on the `--processes` path
    // when tracing is on; merged with the coordinator's own ring below.
    let mut stitched: Option<rid_core::StitchedTrace> = None;
    let result = if let Some(processes) = processes {
        if args.flags.iter().any(|f| f == "separate") {
            return Err("--processes is not supported with --separate".to_owned());
        }
        // The coordinator owns the cache file end to end (warm start and
        // final merged store), so the CLI-level load/save is skipped.
        let (result, traced) = rid_core::analyze_processes_traced(
            &sources,
            &apis,
            &options,
            &faults,
            processes,
            cache_path.as_deref(),
        )
        .map_err(|e| e.to_string())?;
        stitched = traced;
        result
    } else if args.flags.iter().any(|f| f == "separate") {
        if cache_path.is_some() {
            return Err("--cache is not supported with --separate".to_owned());
        }
        if !faults.is_none() {
            return Err("--fault-plan is not supported with --separate".to_owned());
        }
        // §5.3 mode: analyze compilation units separately in dependency
        // order, carrying summaries between groups.
        let modules: Result<Vec<_>, _> =
            sources.iter().map(|s| rid_frontend::parse_module(s)).collect();
        let modules = modules.map_err(|e| e.to_string())?;
        analyze_modules_separately(&modules, &apis, &options).map_err(|e| e.to_string())?
    } else if let Some(path) = &cache_path {
        let program = rid_frontend::parse_program(sources.iter().map(String::as_str))
            .map_err(|e| e.to_string())?;
        // A missing cache file is a cold start, not an error; anything
        // else (unreadable, garbage, foreign schema) is fatal.
        let mut cache = if path.exists() {
            load_cache(path).map_err(|e| format!("--cache: {e}"))?
        } else {
            rid_core::SummaryCache::new()
        };
        let result = rid_core::analyze_program_cached(
            &program,
            &apis,
            &options,
            &faults,
            Some(&mut cache),
        );
        save_cache(&cache, path).map_err(|e| format!("--cache: {e}"))?;
        eprintln!(
            "cache: {} hit(s), {} miss(es), {} invalidated; {} entries in {}",
            result.stats.cache_hits,
            result.stats.cache_misses,
            result.stats.cache_invalidated,
            cache.len(),
            path.display()
        );
        result
    } else {
        let program = rid_frontend::parse_program(sources.iter().map(String::as_str))
            .map_err(|e| e.to_string())?;
        rid_core::driver::analyze_program_with_faults(&program, &apis, &options, &faults)
    };

    let program =
        rid_frontend::parse_program(sources.iter().map(String::as_str)).ok();

    if args.flags.iter().any(|f| f == "json") {
        let json = serde_json::to_string_pretty(&result.reports)
            .map_err(|e| e.to_string())?;
        println!("{json}");
    } else {
        print!("{}", rid_core::render_reports(&result.reports, program.as_ref()));
        eprintln!(
            "{} function(s), {} analyzed, {} report(s)",
            result.stats.functions_total,
            result.stats.functions_analyzed,
            result.reports.len()
        );
    }
    if let Some(path) = args.options.get("save-summaries") {
        save_db(&result.summaries, Path::new(path)).map_err(|e| e.to_string())?;
        eprintln!("summaries saved to {path}");
    }
    if let Some(path) = args.options.get("save-state") {
        save_state(&result, Path::new(path)).map_err(|e| e.to_string())?;
        eprintln!("analysis state saved to {path}");
    }

    let trace = trace_path.as_ref().map(|_| {
        rid_obs::trace::disable();
        rid_obs::drain()
    });
    if let (Some(path), Some(trace)) = (&trace_path, &trace) {
        let shard_events: usize =
            stitched.iter().flat_map(|st| &st.shards).map(|s| s.events.len()).sum();
        // With `--processes`, stitch coordinator + shard-worker rings
        // into one Chrome trace: one pid lane per process, all tied to
        // the run's trace id so the viewer reads a single timeline.
        let chrome = match &stitched {
            Some(st) if !st.shards.is_empty() => {
                let mut lanes = vec![rid_obs::ChromeLane {
                    pid: u64::from(std::process::id()),
                    name: "rid coordinator".to_owned(),
                    events: &trace.events,
                }];
                lanes.extend(st.shards.iter().map(|s| rid_obs::ChromeLane {
                    pid: s.pid,
                    name: s.label.clone(),
                    events: &s.events,
                }));
                rid_obs::chrome_json_merged(&lanes, st.trace_id)
            }
            _ => trace.to_chrome_json(),
        };
        std::fs::write(path, chrome)
            .map_err(|e| format!("--trace: {}: {e}", path.display()))?;
        let jsonl_path = PathBuf::from(format!("{}.jsonl", path.display()));
        let mut jsonl = trace.to_jsonl();
        for shard in stitched.iter().flat_map(|st| &st.shards) {
            let shard_trace =
                rid_obs::Trace { events: shard.events.clone(), dropped: 0 };
            jsonl.push_str(&shard_trace.to_jsonl());
        }
        std::fs::write(&jsonl_path, jsonl)
            .map_err(|e| format!("--trace: {}: {e}", jsonl_path.display()))?;
        eprintln!(
            "trace: {} event(s) ({} dropped, {} from shard workers) written to {} (+ {})",
            trace.events.len() + shard_events,
            trace.dropped,
            shard_events,
            path.display(),
            jsonl_path.display()
        );
    }
    if let Some(path) = &metrics_path {
        let mut registry = rid_core::registry_from_result(&result);
        if let Some(trace) = &trace {
            rid_core::record_trace(&mut registry, trace);
        }
        std::fs::write(path, registry.to_json())
            .map_err(|e| format!("--metrics: {}: {e}", path.display()))?;
        eprintln!("metrics written to {}", path.display());
    }
    Ok(finish_analysis(&result))
}

/// `rid explain`: render the provenance record of every report in a
/// saved analysis state (produced by `analyze`/`recheck --save-state`).
/// Sources are optional — when given, formal-argument indices are
/// replaced by the original parameter names.
fn cmd_explain(args: &Args) -> Result<u8, String> {
    // `--flight-recorder <path>` renders a daemon crash artifact instead
    // of an analysis state; the two modes share nothing but the verb.
    if let Some(path) = args.options.get("flight-recorder") {
        return cmd_explain_flight_recorder(Path::new(path));
    }
    let state_path = args.options.get("state").ok_or_else(|| {
        "--state <file> is required (produce one with `rid analyze --save-state`)".to_owned()
    })?;
    let state = load_state(Path::new(state_path)).map_err(|e| e.to_string())?;
    let program = if args.files.is_empty() {
        None
    } else {
        let sources = read_sources(&args.files)?;
        Some(
            rid_frontend::parse_program(sources.iter().map(String::as_str))
                .map_err(|e| e.to_string())?,
        )
    };
    let reports: Vec<rid_core::IppReport> = match args.options.get("function") {
        Some(f) => state.reports.iter().filter(|r| &r.function == f).cloned().collect(),
        None => state.reports.clone(),
    };
    if reports.is_empty() && args.options.contains_key("function") {
        return Err(format!(
            "no reports for function `{}` in {state_path}",
            args.options["function"]
        ));
    }
    print!("{}", rid_core::render_explanations(&reports, program.as_ref()));
    eprintln!("{} report(s) explained from {state_path}", reports.len());
    Ok(if reports.is_empty() { EXIT_CLEAN } else { EXIT_BUGS })
}

/// Renders a daemon crash artifact. `path` may be a `.frec` file, a
/// `flightrec/` directory, or a daemon `--state-dir` (the `flightrec`
/// subdirectory is probed automatically); directories render the latest
/// generation.
fn cmd_explain_flight_recorder(path: &Path) -> Result<u8, String> {
    let (gen, record) = if path.is_dir() {
        let nested = path.join(rid_serve::FLIGHTREC_DIR);
        let dir = if nested.is_dir() { nested } else { path.to_path_buf() };
        let (gen, file) = rid_serve::latest_flight_record(&dir)
            .map_err(|e| format!("--flight-recorder: {}: {e}", dir.display()))?
            .ok_or_else(|| {
                format!("--flight-recorder: no fr.N.frec artifacts in {}", dir.display())
            })?;
        let record = rid_serve::read_flight_record(&file)
            .map_err(|e| format!("--flight-recorder: {}: {e}", file.display()))?;
        (gen, record)
    } else {
        let record = rid_serve::read_flight_record(path)
            .map_err(|e| format!("--flight-recorder: {}: {e}", path.display()))?;
        let gen = path
            .file_name()
            .and_then(|n| rid_serve::flightrec::parse_generation(&n.to_string_lossy()))
            .unwrap_or(0);
        (gen, record)
    };
    print!("{}", rid_serve::render_flight_record(gen, &record));
    Ok(EXIT_CLEAN)
}

/// Loads the suppression file for `rid diff`: an explicit `--ignore`
/// path must exist and parse; without the option, a `.ridignore` in the
/// current directory is picked up when present, and its absence means
/// no suppressions. Malformed entries are fatal either way.
fn load_ridignore(args: &Args) -> Result<rid_core::Ridignore, String> {
    let (path, required) = match args.options.get("ignore") {
        Some(p) => (PathBuf::from(p), true),
        None => (PathBuf::from(".ridignore"), false),
    };
    if !path.exists() {
        if required {
            return Err(format!("--ignore: {}: no such file", path.display()));
        }
        return Ok(rid_core::Ridignore::default());
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    rid_core::Ridignore::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// `rid diff`: compare two saved analysis states by stable report hash
/// (see REPORTS.md) and exit non-zero only when *new*, unsuppressed
/// reports appeared. Pre-existing bugs, resolved bugs, and suppressed
/// new bugs all exit 0, which is what makes this usable as a CI gate on
/// a codebase with a known backlog.
fn cmd_diff(args: &Args) -> Result<u8, String> {
    if args.files.len() != 2 {
        return Err(
            "rid diff expects exactly two state files: <old-state.json> <new-state.json>"
                .to_owned(),
        );
    }
    let old = load_state(&args.files[0])
        .map_err(|e| format!("{}: {e}", args.files[0].display()))?;
    let new = load_state(&args.files[1])
        .map_err(|e| format!("{}: {e}", args.files[1].display()))?;
    let ignore = load_ridignore(args)?;
    let baseline: Vec<String> = old.reports.iter().map(rid_core::report_hash).collect();
    let diff = rid_core::classify_reports(&baseline, &new.reports);

    let (new_suppressed, new_live): (Vec<_>, Vec<_>) = diff
        .new
        .iter()
        .partition(|(hash, idx)| ignore.suppresses(hash, &new.reports[*idx].function));

    if args.flags.iter().any(|f| f == "json") {
        let entry = |(hash, idx): &(String, usize)| {
            serde_json::json!({
                "hash": hash,
                "function": new.reports[*idx].function,
                "refcount": new.reports[*idx].refcount.to_string(),
            })
        };
        let json = serde_json::json!({
            "new": new_live.iter().map(|e| entry(e)).collect::<Vec<_>>(),
            "suppressed": new_suppressed.iter().map(|e| entry(e)).collect::<Vec<_>>(),
            "unchanged": diff.unchanged.iter().map(entry).collect::<Vec<_>>(),
            "resolved": diff.resolved,
        });
        println!("{}", serde_json::to_string_pretty(&json).map_err(|e| e.to_string())?);
    } else {
        for (hash, idx) in &new_live {
            let r = &new.reports[*idx];
            println!("new        {hash} {} ({})", r.function, r.refcount);
        }
        for (hash, idx) in &new_suppressed {
            let r = &new.reports[*idx];
            println!("suppressed {hash} {} ({})", r.function, r.refcount);
        }
        for (hash, idx) in &diff.unchanged {
            let r = &new.reports[*idx];
            println!("unchanged  {hash} {} ({})", r.function, r.refcount);
        }
        for hash in &diff.resolved {
            println!("resolved   {hash}");
        }
        eprintln!(
            "{} new, {} suppressed, {} unchanged, {} resolved",
            new_live.len(),
            new_suppressed.len(),
            diff.unchanged.len(),
            diff.resolved.len()
        );
    }
    Ok(if new_live.is_empty() { EXIT_CLEAN } else { EXIT_BUGS })
}

/// `rid suppress <hash>`: append a report hash to the suppression file
/// (default `.ridignore`), creating it with a header comment on first
/// use. Re-suppressing a hash already present is a no-op, so the
/// command is idempotent for scripting.
fn cmd_suppress(args: &Args) -> Result<u8, String> {
    if args.files.len() != 1 {
        return Err("rid suppress expects exactly one report hash".to_owned());
    }
    let hash = args.files[0].display().to_string();
    if hash.len() != 32 || !hash.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()) {
        return Err(format!(
            "`{hash}` is not a report hash (expected 32 lowercase hex digits; \
             copy one from `rid diff` or REPORTS.md)"
        ));
    }
    let path = args
        .options
        .get("file")
        .map_or_else(|| PathBuf::from(".ridignore"), PathBuf::from);
    let existing = if path.exists() {
        std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?
    } else {
        "# rid suppression file — see REPORTS.md for the grammar.\n".to_owned()
    };
    // Validate before appending so a malformed file fails loudly instead
    // of silently accumulating entries `rid diff` will later reject.
    let ignore = rid_core::Ridignore::parse(&existing)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    if ignore.contains_hash(&hash) {
        eprintln!("{hash} already suppressed in {}", path.display());
        return Ok(EXIT_CLEAN);
    }
    let mut updated = existing;
    if !updated.is_empty() && !updated.ends_with('\n') {
        updated.push('\n');
    }
    updated.push_str(&hash);
    updated.push('\n');
    rid_core::persist::atomic_write(&path, updated.as_bytes())
        .map_err(|e| format!("{}: {e}", path.display()))?;
    eprintln!("suppressed {hash} in {}", path.display());
    Ok(EXIT_CLEAN)
}

fn cmd_classify(args: &Args) -> Result<(), String> {
    let sources = read_sources(&args.files)?;
    let apis = predefined_apis(args)?;
    let program = rid_frontend::parse_program(sources.iter().map(String::as_str))
        .map_err(|e| e.to_string())?;
    let graph = rid_core::CallGraph::build(&program);
    let classification = rid_core::classify::classify(&program, &graph, &apis);
    let counts = classification.counts();
    println!("refcount-changing      : {}", counts.refcount_changing);
    println!("affecting (analyzed)   : {}", counts.affecting_analyzed);
    println!("affecting (skipped)    : {}", counts.affecting_skipped);
    println!("other                  : {}", counts.other);
    println!("total                  : {}", counts.total());
    let mut by_category: Vec<(&str, rid_core::Category)> = classification.iter().collect();
    by_category.sort_unstable();
    for (func, category) in by_category {
        if category != rid_core::Category::Other {
            println!("  {func}: {category:?}");
        }
    }
    Ok(())
}

fn cmd_summarize(args: &Args) -> Result<(), String> {
    let target = args
        .options
        .get("function")
        .ok_or_else(|| "--function <name> is required".to_owned())?;
    let sources = read_sources(&args.files)?;
    let apis = predefined_apis(args)?;
    let options = analysis_options(args)?;
    let result =
        rid_core::analyze_sources(sources.iter().map(String::as_str), &apis, &options)
            .map_err(|e| e.to_string())?;
    let summary = result
        .summaries
        .get(target)
        .ok_or_else(|| format!("no summary computed for `{target}` (category 3?)"))?;
    println!("summary of {target} ({} entries):", summary.entries.len());
    for (i, entry) in summary.entries.iter().enumerate() {
        let changes: Vec<String> =
            entry.changes.iter().map(|(rc, d)| format!("{rc}: {d:+}")).collect();
        println!("entry {}:", i + 1);
        println!("  cons   : {}", entry.cons);
        println!("  changes: [{}]", changes.join(", "));
        match &entry.ret {
            Some(ret) => println!("  return : {ret}"),
            None => println!("  return : (void/unconstrained)"),
        }
    }
    if summary.partial {
        println!("(partial: analysis limits were hit; default entry included)");
    }
    Ok(())
}

fn cmd_baseline(args: &Args) -> Result<(), String> {
    let sources = read_sources(&args.files)?;
    let apis = match args.options.get("apis").map(String::as_str) {
        Some("dpm") => rid_core::apis::linux_dpm_apis(),
        _ => rid_core::apis::python_c_apis(),
    };
    let result = rid_baseline::check_sources(sources.iter().map(String::as_str), &apis)
        .map_err(|e| e.to_string())?;
    for report in &result.reports {
        println!(
            "`{}`: {} changed by {:+}, escape rule expected {:+}",
            report.function, report.refcount, report.delta, report.expected
        );
    }
    if !result.bailed_functions.is_empty() {
        eprintln!("bailed (multiple assignments): {:?}", result.bailed_functions);
    }
    eprintln!(
        "{} function(s) checked, {} violation(s)",
        result.functions_checked,
        result.reports.len()
    );
    Ok(())
}

fn cmd_recheck(args: &Args) -> Result<u8, String> {
    let state_path = args
        .options
        .get("state")
        .ok_or_else(|| "--state <file> is required".to_owned())?;
    let changed_arg = args
        .options
        .get("changed")
        .ok_or_else(|| "--changed <fn,fn,...> is required".to_owned())?;
    let changed: Vec<&str> = changed_arg.split(',').filter(|s| !s.is_empty()).collect();

    let sources = read_sources(&args.files)?;
    let apis = predefined_apis(args)?;
    let options = analysis_options(args)?;
    let previous = load_state(Path::new(state_path)).map_err(|e| e.to_string())?;
    let program = rid_frontend::parse_program(sources.iter().map(String::as_str))
        .map_err(|e| e.to_string())?;

    let result =
        rid_core::incremental::reanalyze(&program, &apis, &previous, &changed, &options);
    print!("{}", rid_core::render_reports(&result.reports, Some(&program)));
    eprintln!(
        "rechecked {} function(s) (changed: {changed:?}), {} report(s)",
        result.stats.functions_analyzed,
        result.reports.len()
    );
    if let Some(path) = args.options.get("save-state") {
        save_state(&result, Path::new(path)).map_err(|e| e.to_string())?;
        eprintln!("analysis state saved to {path}");
    }
    Ok(finish_analysis(&result))
}

/// §3.1 API mining: discover antonym-named pairs in the given sources and
/// optionally save synthesized predefined summaries for them.
fn cmd_mine(args: &Args) -> Result<(), String> {
    let sources = read_sources(&args.files)?;
    let program = rid_frontend::parse_program(sources.iter().map(String::as_str))
        .map_err(|e| e.to_string())?;
    let names = rid_core::mining::all_function_names(&program);
    let pairs = rid_core::mining::discover_api_pairs(names.iter().map(String::as_str));
    if pairs.is_empty() {
        println!("no antonym-named API pairs found");
        return Ok(());
    }
    for pair in &pairs {
        println!("{} / {}   ({}-{})", pair.inc, pair.dec, pair.verbs.0, pair.verbs.1);
    }
    eprintln!("{} pair(s) discovered", pairs.len());
    if let Some(path) = args.options.get("save-summaries") {
        let field = args.options.get("field").map_or("refs", String::as_str);
        let db = rid_core::mining::summaries_for_pairs(&pairs, field);
        save_db(&db, Path::new(path)).map_err(|e| e.to_string())?;
        eprintln!("synthesized summaries (field `{field}`) saved to {path}");
    }
    Ok(())
}

fn cmd_gen_kernel(args: &Args) -> Result<(), String> {
    let out = args
        .options
        .get("out")
        .ok_or_else(|| "--out <dir> is required".to_owned())?;
    let seed: u64 = args.options.get("seed").and_then(|s| s.parse().ok()).unwrap_or(2016);
    let mut config = if args.flags.iter().any(|f| f == "tiny") {
        rid_corpus::kernel::KernelConfig::tiny(seed)
    } else {
        rid_corpus::kernel::KernelConfig::evaluation(seed)
    };
    if let Some(n) = args.options.get("spurious") {
        config.seeded_spurious = n
            .parse()
            .map_err(|_| format!("--spurious expects a count, got `{n}`"))?;
    }
    let corpus = rid_corpus::kernel::generate_kernel(&config);
    let dir = Path::new(out);
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    for (i, source) in corpus.sources.iter().enumerate() {
        std::fs::write(dir.join(format!("module_{i:04}.ril")), source)
            .map_err(|e| e.to_string())?;
    }
    let truth = serde_json::json!({
        "bugs": corpus.bugs,
        "expected_false_positives": corpus.expected_false_positives,
        "expected_spurious": corpus.spurious_functions,
        "census": corpus.census,
    });
    std::fs::write(
        dir.join("ground_truth.json"),
        serde_json::to_string_pretty(&truth).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} modules + ground_truth.json to {}",
        corpus.sources.len(),
        dir.display()
    );
    Ok(())
}

/// `rid serve`: the batched, incremental analysis daemon. `--stdio`
/// speaks the protocol over stdin/stdout (tests, editor pipes);
/// otherwise `--socket <path>` binds a Unix domain socket and serves
/// until SIGTERM/SIGINT or a `shutdown` request, draining the queue
/// before exit.
fn cmd_serve(args: &Args) -> Result<u8, String> {
    fn parsed<T: std::str::FromStr>(args: &Args, name: &str, what: &str) -> Result<Option<T>, String> {
        args.options
            .get(name)
            .map(|v| v.parse().map_err(|_| format!("--{name} expects {what}, got `{v}`")))
            .transpose()
    }
    let defaults = rid_serve::ServerConfig::default();
    let config = rid_serve::ServerConfig {
        queue_cap: parsed(args, "queue-cap", "a number")?.unwrap_or(defaults.queue_cap),
        state_dir: args.options.get("state-dir").map(PathBuf::from),
        max_frame_bytes: parsed(args, "max-frame-bytes", "a byte count")?
            .unwrap_or(defaults.max_frame_bytes),
        fault: rid_serve::ServeFaultPlan {
            seed: parsed(args, "chaos-seed", "a number")?.unwrap_or(0),
            torn_journal_rate: parsed(args, "chaos-torn-rate", "a rate in [0,1]")?.unwrap_or(0.0),
            fsync_fail_rate: parsed(args, "chaos-fsync-rate", "a rate in [0,1]")?.unwrap_or(0.0),
        },
    };
    if args.flags.iter().any(|f| f == "stdio") {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        rid_serve::serve_stdio(stdin.lock(), stdout.lock(), config)
            .map_err(|e| e.to_string())?;
        return Ok(EXIT_CLEAN);
    }
    let socket = args
        .options
        .get("socket")
        .ok_or_else(|| "--socket <path> is required (or pass --stdio)".to_owned())?;
    #[cfg(unix)]
    {
        // `--trace <path>`: record daemon-side spans (snapshot, restore,
        // journal replay, per-request execution) for the whole serve
        // lifetime and write one Chrome trace on clean exit.
        let trace_path = args.options.get("trace").map(PathBuf::from);
        if trace_path.is_some() {
            rid_obs::trace::enable(rid_obs::trace::DEFAULT_CAPACITY);
        }
        eprintln!("rid serve: listening on {socket}");
        rid_serve::serve_unix(Path::new(socket), config).map_err(|e| e.to_string())?;
        if let Some(path) = &trace_path {
            rid_obs::trace::disable();
            let trace = rid_obs::drain();
            let lanes = [rid_obs::ChromeLane {
                pid: u64::from(std::process::id()),
                name: "rid serve".to_owned(),
                events: &trace.events,
            }];
            let chrome = rid_obs::chrome_json_merged(&lanes, rid_core::next_trace_id());
            std::fs::write(path, chrome)
                .map_err(|e| format!("--trace: {}: {e}", path.display()))?;
            eprintln!(
                "trace: {} event(s) ({} dropped) written to {}",
                trace.events.len(),
                trace.dropped,
                path.display()
            );
        }
        eprintln!("rid serve: drained and exiting");
        Ok(EXIT_CLEAN)
    }
    #[cfg(not(unix))]
    {
        Err("unix domain sockets are unavailable on this platform; use --stdio".to_owned())
    }
}

/// `rid client`: one request/response round-trip against a running
/// daemon. Positional `.ril` files become the request's `sources`
/// (keyed by file name) for `register`/`patch`. The raw response line is
/// printed; the exit code mirrors `rid analyze` (bugs → 1, daemon error
/// → 3).
fn cmd_client(args: &Args) -> Result<u8, String> {
    let socket = args
        .options
        .get("socket")
        .ok_or_else(|| "--socket <path> is required".to_owned())?;
    let op = args.options.get("op").ok_or_else(|| {
        "--op <register|analyze|patch|explain|diff|stats|ping|snapshot|shutdown> is required"
            .to_owned()
    })?;
    let project = args.options.get("project").cloned().unwrap_or_default();
    let mut request = rid_serve::Request::new(1, op, &project);
    for file in &args.files {
        let text =
            std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        let name = file
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| file.display().to_string());
        request.sources.insert(name, text);
    }
    request.function = args.options.get("function").cloned();
    request.deadline_ms = args
        .options
        .get("deadline-ms")
        .map(|v| {
            v.parse()
                .map_err(|_| format!("--deadline-ms expects milliseconds, got `{v}`"))
        })
        .transpose()?;
    request.idem = args.options.get("idem").cloned();
    request.format = args.options.get("format").cloned();
    // The daemon returns the raw diff classification (PROTOCOL.md);
    // suppression is client-side triage, so the `diff` op applies the
    // local `.ridignore` (or `--ignore <file>`) to the returned `new`
    // entries before deciding the exit code — the same gate `rid diff`
    // implements. Loaded up front so a malformed file fails fast.
    let ignore = if op == "diff" { Some(load_ridignore(args)?) } else { None };
    // `--baseline <old-state.json>` (diff op): the old run's reports,
    // hashed client-side, become the request's baseline list.
    if let Some(path) = args.options.get("baseline") {
        let old = load_state(Path::new(path)).map_err(|e| format!("--baseline: {path}: {e}"))?;
        request.baseline = Some(old.reports.iter().map(rid_core::report_hash).collect());
    }
    let parse_u64 = |name: &str| -> Result<Option<u64>, String> {
        args.options
            .get(name)
            .map(|v| v.parse().map_err(|_| format!("--{name} expects a number, got `{v}`")))
            .transpose()
    };
    let retries = parse_u64("retries")?;
    let retry_base_ms = parse_u64("retry-base-ms")?;
    let timeout_ms = parse_u64("timeout-ms")?;
    #[cfg(unix)]
    {
        let timeout = timeout_ms.map(std::time::Duration::from_millis);
        let mut client = rid_serve::Client::connect_with(Path::new(socket), timeout)
            .map_err(|e| format!("{socket}: {e}"))?;
        // Any resilience option opts into the retrying path; a bare
        // `rid client` keeps the one-shot fail-fast behavior.
        let resilient = retries.is_some() || retry_base_ms.is_some() || timeout_ms.is_some();
        let response = if resilient {
            let defaults = rid_serve::RetryPolicy::default();
            let policy = rid_serve::RetryPolicy {
                retries: retries.map_or(defaults.retries, |n| n as u32),
                base_ms: retry_base_ms.unwrap_or(defaults.base_ms),
                timeout_ms,
                ..defaults
            };
            client.request_retrying(&request, &policy).map_err(|e| e.to_string())?
        } else {
            client.request(&request).map_err(|e| e.to_string())?
        };
        println!("{response}");
        let value: serde_json::Value =
            serde_json::from_str(&response).map_err(|e| e.to_string())?;
        if value["ok"].as_bool() != Some(true) {
            return Ok(EXIT_FATAL);
        }
        // `diff` is the CI gate: only *new* reports (vs the baseline)
        // that survive the local suppression file are failures; the
        // other ops gate on any report at all.
        let bugs = if let Some(ignore) = &ignore {
            match value["result"]["new"].as_array() {
                Some(new) => new.iter().any(|entry| {
                    !ignore.suppresses(
                        entry["hash"].as_str().unwrap_or(""),
                        entry["function"].as_str().unwrap_or(""),
                    )
                }),
                // Pre-`new`-array daemons: fall back to the raw count.
                None => value["result"]["new_count"].as_i64().unwrap_or(0) > 0,
            }
        } else {
            value["result"]["report_count"].as_i64().unwrap_or(0) > 0
        };
        Ok(if bugs {
            EXIT_BUGS
        } else if value["degraded"].as_array().is_some_and(|d| !d.is_empty()) {
            EXIT_DEGRADED
        } else {
            EXIT_CLEAN
        })
    }
    #[cfg(not(unix))]
    {
        let _ = (request, ignore);
        Err("unix domain sockets are unavailable on this platform".to_owned())
    }
}

/// `rid top`: poll a running daemon's `stats` op and render the per-op
/// and per-project latency tables. `--iters N` bounds the poll count
/// (default 1, so a bare `rid top` is a one-shot snapshot suitable for
/// scripts and CI); `--interval-ms` sets the poll period.
fn cmd_top(args: &Args) -> Result<u8, String> {
    let socket = args
        .options
        .get("socket")
        .ok_or_else(|| "--socket <path> is required".to_owned())?;
    let parse_u64 = |name: &str, default: u64| -> Result<u64, String> {
        args.options
            .get(name)
            .map_or(Ok(default), |v| {
                v.parse().map_err(|_| format!("--{name} expects a number, got `{v}`"))
            })
    };
    let interval_ms = parse_u64("interval-ms", 1000)?;
    let iters = parse_u64("iters", 1)?;
    if iters == 0 {
        return Err("--iters expects a positive count".to_owned());
    }
    #[cfg(unix)]
    {
        let mut client = rid_serve::Client::connect(Path::new(socket))
            .map_err(|e| format!("{socket}: {e}"))?;
        for poll in 0..iters {
            if poll > 0 {
                std::thread::sleep(std::time::Duration::from_millis(interval_ms));
            }
            let request = rid_serve::Request::new(poll + 1, "stats", "");
            let response = client.request(&request).map_err(|e| e.to_string())?;
            let value: serde_json::Value =
                serde_json::from_str(&response).map_err(|e| e.to_string())?;
            if value["ok"].as_bool() != Some(true) {
                return Err(format!("daemon error: {response}"));
            }
            print!("{}", render_top(socket, poll, &value["result"]));
        }
        Ok(EXIT_CLEAN)
    }
    #[cfg(not(unix))]
    {
        let _ = (interval_ms, iters);
        Err("unix domain sockets are unavailable on this platform".to_owned())
    }
}

/// One `rid top` frame: a counter header plus per-op and per-project
/// latency tables (count and approximate p50/p99/p999 from the stats
/// op's log2 histograms).
fn render_top(socket: &str, poll: u64, result: &serde_json::Value) -> String {
    let telemetry = &result["telemetry"];
    let counter = |name: &str| telemetry["counters"][name].as_u64().unwrap_or(0);
    let gauge = |name: &str| telemetry["gauges"][name].as_i64().unwrap_or(0);
    let mut out = format!("rid top — {socket} — poll {}\n", poll + 1);
    out.push_str(&format!(
        "accepted {}  batches {}  coalesced {}  backpressure {}  idem {}  \
         queue {}/{}  projects {}\n",
        counter("serve.accepted"),
        counter("serve.batches"),
        counter("serve.coalesced"),
        counter("serve.backpressure"),
        counter("serve.idem_hits"),
        gauge("serve.queue.depth.now"),
        gauge("serve.queue.cap"),
        gauge("serve.projects"),
    ));
    for (section, prefix) in [("op", "serve.op."), ("project", "serve.project.")] {
        let rows = top_latency_rows(telemetry, prefix);
        if rows.is_empty() {
            continue;
        }
        out.push_str(&format!(
            "{:<24} {:>8} {:>10} {:>10} {:>10}\n",
            section.to_uppercase(),
            "COUNT",
            "P50(us)",
            "P99(us)",
            "P999(us)"
        ));
        for (name, count, p50, p99, p999) in rows {
            out.push_str(&format!(
                "{name:<24} {count:>8} {p50:>10} {p99:>10} {p999:>10}\n"
            ));
        }
    }
    out
}

/// Extracts `(name, count, p50, p99, p999)` rows for every histogram
/// under `prefix` (the trailing `.us` unit suffix is dropped from the
/// display name).
fn top_latency_rows(
    telemetry: &serde_json::Value,
    prefix: &str,
) -> Vec<(String, u64, u64, u64, u64)> {
    let serde_json::Value::Map(pairs) = &telemetry["histograms"] else { return Vec::new() };
    pairs
        .iter()
        .filter_map(|(name, h)| {
            let rest = name.strip_prefix(prefix)?;
            let display = rest.strip_suffix(".us").unwrap_or(rest);
            Some((
                display.to_owned(),
                h["count"].as_u64().unwrap_or(0),
                h["p50"].as_u64().unwrap_or(0),
                h["p99"].as_u64().unwrap_or(0),
                h["p999"].as_u64().unwrap_or(0),
            ))
        })
        .collect()
}

fn main() -> ExitCode {
    // A `--processes` coordinator re-execs this binary as shard workers;
    // this diverts (and exits) when the worker token is present.
    rid_core::maybe_run_worker();
    let Some(args) = parse_args() else { return usage() };
    let outcome = match args.command.as_str() {
        "analyze" => cmd_analyze(&args),
        "classify" => cmd_classify(&args).map(|()| EXIT_CLEAN),
        "summarize" => cmd_summarize(&args).map(|()| EXIT_CLEAN),
        "baseline" => cmd_baseline(&args).map(|()| EXIT_CLEAN),
        "recheck" => cmd_recheck(&args),
        "explain" => cmd_explain(&args),
        "diff" => cmd_diff(&args),
        "suppress" => cmd_suppress(&args),
        "mine" => cmd_mine(&args).map(|()| EXIT_CLEAN),
        "gen-kernel" => cmd_gen_kernel(&args).map(|()| EXIT_CLEAN),
        "serve" => cmd_serve(&args),
        "client" => cmd_client(&args),
        "top" => cmd_top(&args),
        _ => return usage(),
    };
    match outcome {
        Ok(code) => ExitCode::from(code),
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(EXIT_FATAL)
        }
    }
}
