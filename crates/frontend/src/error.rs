//! Frontend error reporting with source positions.

use std::fmt;

/// A position in an RIL source file (1-based line and column).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// Creates a span.
    #[must_use]
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An error produced while lexing, parsing, lowering or linking RIL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontendError {
    /// Index of the source file (for multi-source parses), if known.
    pub source_index: Option<usize>,
    /// Position of the error, if known.
    pub span: Option<Span>,
    /// Human-readable message.
    pub message: String,
}

impl FrontendError {
    /// An error at a specific position.
    #[must_use]
    pub fn at(span: Span, message: impl Into<String>) -> FrontendError {
        FrontendError { source_index: None, span: Some(span), message: message.into() }
    }

    /// An error with no position (e.g. unexpected end of file).
    #[must_use]
    pub fn msg(message: impl Into<String>) -> FrontendError {
        FrontendError { source_index: None, span: None, message: message.into() }
    }

    /// A link-stage error for source `index`.
    #[must_use]
    pub fn link(index: usize, err: &dyn fmt::Display) -> FrontendError {
        FrontendError {
            source_index: Some(index),
            span: None,
            message: format!("link error: {err}"),
        }
    }

    /// Tags the error with the index of the source file it came from.
    #[must_use]
    pub fn in_source(mut self, index: usize) -> FrontendError {
        self.source_index = Some(index);
        self
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(i) = self.source_index {
            write!(f, "source #{i}: ")?;
        }
        if let Some(span) = self.span {
            write!(f, "{span}: ")?;
        }
        f.write_str(&self.message)
    }
}

impl std::error::Error for FrontendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = FrontendError::at(Span::new(3, 7), "unexpected token");
        assert_eq!(e.to_string(), "3:7: unexpected token");
        let e = e.in_source(2);
        assert_eq!(e.to_string(), "source #2: 3:7: unexpected token");
        assert_eq!(FrontendError::msg("eof").to_string(), "eof");
    }
}
