//! The RIL lexer.

use std::fmt;

use crate::error::{FrontendError, Span};

/// A lexical token kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    // Keywords
    Module,
    Extern,
    Weak,
    Fn,
    Let,
    If,
    Else,
    While,
    Return,
    Goto,
    Assume,
    Random,
    True,
    False,
    Null,
    // Literals and identifiers
    Ident(String),
    Int(i64),
    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Colon,
    Dot,
    Assign, // =
    Bang,   // !
    // Comparison operators
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    // Logical connectives (short-circuit, conditions only)
    AndAnd,
    OrOr,
    /// Function reference `@name` (used as a callback argument).
    At,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tok::Module => "module",
            Tok::Extern => "extern",
            Tok::Weak => "weak",
            Tok::Fn => "fn",
            Tok::Let => "let",
            Tok::If => "if",
            Tok::Else => "else",
            Tok::While => "while",
            Tok::Return => "return",
            Tok::Goto => "goto",
            Tok::Assume => "assume",
            Tok::Random => "random",
            Tok::True => "true",
            Tok::False => "false",
            Tok::Null => "null",
            Tok::Ident(name) => return f.write_str(name),
            Tok::Int(v) => return write!(f, "{v}"),
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::Comma => ",",
            Tok::Semi => ";",
            Tok::Colon => ":",
            Tok::Dot => ".",
            Tok::Assign => "=",
            Tok::Bang => "!",
            Tok::EqEq => "==",
            Tok::NotEq => "!=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::AndAnd => "&&",
            Tok::OrOr => "||",
            Tok::At => "@",
        };
        f.write_str(s)
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub tok: Tok,
    /// Where the token starts.
    pub span: Span,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }
}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word {
        "module" => Tok::Module,
        "extern" => Tok::Extern,
        "weak" => Tok::Weak,
        "fn" => Tok::Fn,
        "let" => Tok::Let,
        "if" => Tok::If,
        "else" => Tok::Else,
        "while" => Tok::While,
        "return" => Tok::Return,
        "goto" => Tok::Goto,
        "assume" | "assert" => Tok::Assume,
        "random" => Tok::Random,
        "true" => Tok::True,
        "false" => Tok::False,
        "null" | "NULL" => Tok::Null,
        _ => return None,
    })
}

/// Tokenizes an RIL source string.
///
/// # Errors
///
/// Returns a positioned [`FrontendError`] on unknown characters, malformed
/// numbers, or unterminated block comments.
pub fn lex(source: &str) -> Result<Vec<Token>, FrontendError> {
    let mut cur = Cursor { src: source.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut tokens = Vec::new();
    loop {
        // Skip whitespace and comments.
        loop {
            match cur.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    cur.bump();
                }
                Some(b'/') if cur.peek2() == Some(b'/') => {
                    while let Some(b) = cur.peek() {
                        if b == b'\n' {
                            break;
                        }
                        cur.bump();
                    }
                }
                Some(b'/') if cur.peek2() == Some(b'*') => {
                    let start = cur.span();
                    cur.bump();
                    cur.bump();
                    loop {
                        match (cur.peek(), cur.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                cur.bump();
                                cur.bump();
                                break;
                            }
                            (Some(_), _) => {
                                cur.bump();
                            }
                            (None, _) => {
                                return Err(FrontendError::at(
                                    start,
                                    "unterminated block comment",
                                ))
                            }
                        }
                    }
                }
                _ => break,
            }
        }
        let span = cur.span();
        let Some(b) = cur.peek() else { break };
        let tok = match b {
            b'(' => {
                cur.bump();
                Tok::LParen
            }
            b')' => {
                cur.bump();
                Tok::RParen
            }
            b'{' => {
                cur.bump();
                Tok::LBrace
            }
            b'}' => {
                cur.bump();
                Tok::RBrace
            }
            b',' => {
                cur.bump();
                Tok::Comma
            }
            b';' => {
                cur.bump();
                Tok::Semi
            }
            b':' => {
                cur.bump();
                Tok::Colon
            }
            b'.' => {
                cur.bump();
                Tok::Dot
            }
            b'=' => {
                cur.bump();
                if cur.peek() == Some(b'=') {
                    cur.bump();
                    Tok::EqEq
                } else {
                    Tok::Assign
                }
            }
            b'!' => {
                cur.bump();
                if cur.peek() == Some(b'=') {
                    cur.bump();
                    Tok::NotEq
                } else {
                    Tok::Bang
                }
            }
            b'<' => {
                cur.bump();
                if cur.peek() == Some(b'=') {
                    cur.bump();
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            b'>' => {
                cur.bump();
                if cur.peek() == Some(b'=') {
                    cur.bump();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'&' => {
                cur.bump();
                if cur.peek() == Some(b'&') {
                    cur.bump();
                    Tok::AndAnd
                } else {
                    return Err(FrontendError::at(span, "expected `&&`"));
                }
            }
            b'|' => {
                cur.bump();
                if cur.peek() == Some(b'|') {
                    cur.bump();
                    Tok::OrOr
                } else {
                    return Err(FrontendError::at(span, "expected `||`"));
                }
            }
            b'@' => {
                cur.bump();
                Tok::At
            }
            b'-' | b'0'..=b'9' => {
                let negative = b == b'-';
                if negative {
                    cur.bump();
                    if !cur.peek().is_some_and(|c| c.is_ascii_digit()) {
                        return Err(FrontendError::at(span, "expected digits after `-`"));
                    }
                }
                let mut value: i64 = 0;
                let mut hex = false;
                if cur.peek() == Some(b'0') && matches!(cur.peek2(), Some(b'x') | Some(b'X')) {
                    cur.bump();
                    cur.bump();
                    hex = true;
                }
                let mut any = false;
                while let Some(c) = cur.peek() {
                    let digit = match c {
                        b'0'..=b'9' => i64::from(c - b'0'),
                        b'a'..=b'f' if hex => i64::from(c - b'a' + 10),
                        b'A'..=b'F' if hex => i64::from(c - b'A' + 10),
                        b'_' => {
                            cur.bump();
                            continue;
                        }
                        _ => break,
                    };
                    any = true;
                    let base: i64 = if hex { 16 } else { 10 };
                    value = value
                        .checked_mul(base)
                        .and_then(|v| v.checked_add(digit))
                        .ok_or_else(|| FrontendError::at(span, "integer literal overflows"))?;
                    cur.bump();
                }
                if hex && !any {
                    return Err(FrontendError::at(span, "empty hex literal"));
                }
                Tok::Int(if negative { -value } else { value })
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        cur.bump();
                    } else {
                        break;
                    }
                }
                let word = std::str::from_utf8(&cur.src[start..cur.pos]).expect("ascii");
                keyword(word).unwrap_or_else(|| Tok::Ident(word.to_owned()))
            }
            other => {
                return Err(FrontendError::at(
                    span,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        };
        tokens.push(Token { tok, span });
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("module fn let devname"),
            vec![Tok::Module, Tok::Fn, Tok::Let, Tok::Ident("devname".into())]
        );
        // `assert` is an alias for `assume`; `NULL` for `null`.
        assert_eq!(toks("assert NULL"), vec![Tok::Assume, Tok::Null]);
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("0 42 -7 0x54 1_000"), vec![
            Tok::Int(0),
            Tok::Int(42),
            Tok::Int(-7),
            Tok::Int(0x54),
            Tok::Int(1000),
        ]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("== != <= >= < > = !"),
            vec![Tok::EqEq, Tok::NotEq, Tok::Le, Tok::Ge, Tok::Lt, Tok::Gt, Tok::Assign, Tok::Bang]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let src = "a // line comment\n /* block\ncomment */ b";
        assert_eq!(toks(src), vec![Tok::Ident("a".into()), Tok::Ident("b".into())]);
    }

    #[test]
    fn spans_track_lines() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!(tokens[0].span, Span::new(1, 1));
        assert_eq!(tokens[1].span, Span::new(2, 3));
    }

    #[test]
    fn logical_and_at_tokens() {
        assert_eq!(toks("&& || @h"), vec![
            Tok::AndAnd,
            Tok::OrOr,
            Tok::At,
            Tok::Ident("h".into()),
        ]);
        assert!(lex("&").is_err());
        assert!(lex("| x").is_err());
    }

    #[test]
    fn errors() {
        assert!(lex("^").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("- x").is_err());
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn display_of_tokens() {
        assert_eq!(Tok::Le.to_string(), "<=");
        assert_eq!(Tok::Ident("x".into()).to_string(), "x");
        assert_eq!(Tok::Int(-3).to_string(), "-3");
    }
}
