//! Abstract syntax tree of RIL.

use rid_ir::Pred;

use crate::error::Span;

/// A parsed RIL module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AstModule {
    /// Module name from the `module` header.
    pub name: String,
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// A top-level item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Item {
    /// `extern fn name;` — a function defined elsewhere (or known only by a
    /// predefined summary).
    Extern {
        /// Declared name.
        name: String,
    },
    /// A function definition.
    Func(AstFunc),
}

/// A function definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AstFunc {
    /// Function name.
    pub name: String,
    /// Formal parameter names.
    pub params: Vec<String>,
    /// Weak linkage (`weak fn …`, see §5.3 of the paper).
    pub weak: bool,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Position of the `fn` keyword.
    pub span: Span,
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `let name = expr;` (also plain `name = expr;`).
    Assign {
        /// Destination variable.
        name: String,
        /// Right-hand side.
        expr: Expr,
        /// Source position.
        span: Span,
    },
    /// `base.f1.f2 = value;`
    FieldStore {
        /// Base variable.
        base: String,
        /// Field chain (at least one element).
        fields: Vec<String>,
        /// Stored value.
        value: Expr,
        /// Source position.
        span: Span,
    },
    /// `if (cond) { … } else { … }`
    If {
        /// Branch condition.
        cond: Cond,
        /// Then-branch statements.
        then: Vec<Stmt>,
        /// Else-branch statements (possibly empty).
        els: Vec<Stmt>,
        /// Source position.
        span: Span,
    },
    /// `while (cond) { … }`
    While {
        /// Loop condition.
        cond: Cond,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position.
        span: Span,
    },
    /// `return;` or `return expr;`
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Source position.
        span: Span,
    },
    /// `goto label;`
    Goto {
        /// Target label.
        label: String,
        /// Source position.
        span: Span,
    },
    /// `label:` — only allowed in the function's outermost block.
    Label {
        /// Label name.
        name: String,
        /// Source position.
        span: Span,
    },
    /// `assume cond;` (also spelled `assert`).
    Assume {
        /// Assumed condition.
        cond: Cond,
        /// Source position.
        span: Span,
    },
    /// An expression statement (a call whose result is discarded).
    #[allow(clippy::enum_variant_names)]
    ExprStmt {
        /// The call expression.
        expr: Expr,
        /// Source position.
        span: Span,
    },
}

impl Stmt {
    /// The source position of the statement.
    #[must_use]
    #[allow(dead_code)] // useful for diagnostics; exercised in tests
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::FieldStore { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Goto { span, .. }
            | Stmt::Label { span, .. }
            | Stmt::Assume { span, .. }
            | Stmt::ExprStmt { span, .. } => *span,
        }
    }
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// The null pointer literal.
    Null,
    /// Variable reference.
    Var(String),
    /// `base.field`.
    Field {
        /// Base expression (must bottom out in a variable).
        base: Box<Expr>,
        /// Field name.
        field: String,
    },
    /// `random` — a non-deterministic value.
    Random,
    /// `callee(args…)`.
    Call {
        /// Called function name.
        callee: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// `lhs pred rhs`.
    Cmp {
        /// Comparison predicate.
        pred: Pred,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `@name` — a reference to a function, passed to callback
    /// registration APIs.
    FuncRef(String),
}

/// A branch condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Cond {
    /// A comparison.
    Cmp {
        /// Comparison predicate.
        pred: Pred,
        /// Left operand.
        lhs: Expr,
        /// Right operand.
        rhs: Expr,
    },
    /// Truthiness of an expression: `e` means `e != 0` (C semantics).
    Truthy(Expr),
    /// Logical negation.
    Not(Box<Cond>),
    /// Short-circuit conjunction `a && b`.
    And(Box<Cond>, Box<Cond>),
    /// Short-circuit disjunction `a || b`.
    Or(Box<Cond>, Box<Cond>),
}
