//! # rid-frontend — the RIL language
//!
//! The RID paper analyzes LLVM bitcode, but its analysis consumes only the
//! *abstract program* of Figure 3. RIL ("RID Intermediate Language") is a
//! small C-like surface language that lowers exactly onto that abstraction,
//! replacing the LLVM toolchain in this reproduction (see `DESIGN.md`).
//!
//! ## Language tour
//!
//! ```text
//! module usb_drivers;
//!
//! extern fn pm_runtime_get_sync;      // summary supplied externally (§5.1)
//! extern fn pm_runtime_put_sync;
//!
//! fn usb_autopm_get_interface(intf) {
//!     let status = pm_runtime_get_sync(intf.dev);
//!     if (status < 0) {
//!         pm_runtime_put_sync(intf.dev);
//!     }
//!     if (status > 0) {
//!         status = 0;
//!     }
//!     return status;
//! }
//!
//! fn idmouse_open(inode, file) {
//!     let result = usb_autopm_get_interface(inode.intf);
//!     if (result) { goto error; }
//!     result = idmouse_create_image(inode.dev);
//!     if (result) { goto error; }
//!     usb_autopm_put_interface(inode.intf);
//! error:
//!     return result;
//! }
//! ```
//!
//! Statements: `let`, assignment, field store, `if`/`else`, `while`,
//! `return`, `goto`/labels (kernel-style error paths; labels live in the
//! function's outermost block), `assume`/`assert`, and expression calls.
//! Expressions: integer/bool/`null` literals, variables, field chains,
//! `random` (a non-deterministic read, e.g. a device register), calls and
//! comparisons. There is deliberately **no arithmetic** — refcounts are
//! changed only through API calls, exactly as the paper's abstraction
//! assumes (§4.1).
//!
//! Conditions may be comparisons (`a < b`), negations (`!c`), bare
//! expressions (truthiness, i.e. `e != 0`, matching C), or parenthesised
//! conditions.
//!
//! ## Entry points
//!
//! ```
//! let src = r#"
//!     module demo;
//!     fn answer() { return 42; }
//! "#;
//! let module = rid_frontend::parse_module(src)?;
//! assert_eq!(module.functions().len(), 1);
//! # Ok::<(), rid_frontend::FrontendError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod error;
mod lexer;
mod lower;
mod parser;
#[cfg(test)]
mod proptests;

pub use error::{FrontendError, Span};

use rid_ir::{Module, Program, ProgramError};

/// Parses one RIL source file into an IR [`Module`].
///
/// # Errors
///
/// Returns a [`FrontendError`] with position information on lexical,
/// syntactic or lowering errors.
pub fn parse_module(source: &str) -> Result<Module, FrontendError> {
    let mut span = rid_obs::span(rid_obs::SpanKind::Lower, "module");
    let tokens = lexer::lex(source)?;
    let ast = parser::parse(&tokens)?;
    let module = lower::lower_module(&ast)?;
    span.set_value(module.functions().len() as u64);
    Ok(module)
}

/// Parses several RIL sources and links them into a [`Program`]
/// (weak-symbol merging per §5.3 of the paper).
///
/// # Errors
///
/// Returns the first frontend error, or a link error on duplicate strong
/// definitions. The offending source's index is included in the message.
pub fn parse_program<'a>(
    sources: impl IntoIterator<Item = &'a str>,
) -> Result<Program, FrontendError> {
    let mut program = Program::new();
    for (index, source) in sources.into_iter().enumerate() {
        let module = parse_module(source).map_err(|e| e.in_source(index))?;
        program.link(module).map_err(|e: ProgramError| FrontendError::link(index, &e))?;
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_program_links_modules() {
        let a = "module a; fn f() { g(); return; }";
        let b = "module b; fn g() { return; }";
        let p = parse_program([a, b]).unwrap();
        assert_eq!(p.function_count(), 2);
    }

    #[test]
    fn parse_program_reports_duplicate() {
        let a = "module a; fn f() { return; }";
        let b = "module b; fn f() { return; }";
        let err = parse_program([a, b]).unwrap_err();
        assert!(err.to_string().contains('f'));
    }
}
