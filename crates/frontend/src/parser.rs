//! Recursive-descent parser for RIL.

use rid_ir::Pred;

use crate::ast::{AstFunc, AstModule, Cond, Expr, Item, Stmt};
use crate::error::{FrontendError, Span};
use crate::lexer::{Tok, Token};

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|t| &t.tok)
    }

    fn span(&self) -> Span {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.span)
            .unwrap_or_default()
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, expected: &Tok) -> Result<Span, FrontendError> {
        let span = self.span();
        match self.peek() {
            Some(t) if t == expected => {
                self.pos += 1;
                Ok(span)
            }
            Some(t) => Err(FrontendError::at(
                span,
                format!("expected `{expected}`, found `{t}`"),
            )),
            None => Err(FrontendError::msg(format!(
                "expected `{expected}`, found end of file"
            ))),
        }
    }

    fn eat_ident(&mut self, what: &str) -> Result<String, FrontendError> {
        let span = self.span();
        match self.peek() {
            Some(Tok::Ident(name)) => {
                let name = name.clone();
                self.pos += 1;
                Ok(name)
            }
            Some(t) => Err(FrontendError::at(span, format!("expected {what}, found `{t}`"))),
            None => Err(FrontendError::msg(format!("expected {what}, found end of file"))),
        }
    }

    fn module(&mut self) -> Result<AstModule, FrontendError> {
        self.eat(&Tok::Module)?;
        let name = self.eat_ident("module name")?;
        self.eat(&Tok::Semi)?;
        let mut items = Vec::new();
        while self.peek().is_some() {
            items.push(self.item()?);
        }
        Ok(AstModule { name, items })
    }

    fn item(&mut self) -> Result<Item, FrontendError> {
        match self.peek() {
            Some(Tok::Extern) => {
                self.bump();
                self.eat(&Tok::Fn)?;
                let name = self.eat_ident("function name")?;
                // Optional (ignored) parameter list on externs.
                if self.peek() == Some(&Tok::LParen) {
                    self.bump();
                    while self.peek() != Some(&Tok::RParen) {
                        self.eat_ident("parameter name")?;
                        if self.peek() == Some(&Tok::Comma) {
                            self.bump();
                        }
                    }
                    self.eat(&Tok::RParen)?;
                }
                self.eat(&Tok::Semi)?;
                Ok(Item::Extern { name })
            }
            Some(Tok::Weak) | Some(Tok::Fn) => {
                let weak = if self.peek() == Some(&Tok::Weak) {
                    self.bump();
                    true
                } else {
                    false
                };
                let span = self.span();
                self.eat(&Tok::Fn)?;
                let name = self.eat_ident("function name")?;
                self.eat(&Tok::LParen)?;
                let mut params = Vec::new();
                while self.peek() != Some(&Tok::RParen) {
                    params.push(self.eat_ident("parameter name")?);
                    if self.peek() == Some(&Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.eat(&Tok::RParen)?;
                let body = self.block()?;
                Ok(Item::Func(AstFunc { name, params, weak, body, span }))
            }
            Some(t) => Err(FrontendError::at(
                self.span(),
                format!("expected `extern`, `weak` or `fn`, found `{t}`"),
            )),
            None => Err(FrontendError::msg("expected item, found end of file")),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        self.eat(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(FrontendError::msg("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.eat(&Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, FrontendError> {
        let span = self.span();
        match self.peek() {
            Some(Tok::Let) => {
                self.bump();
                let name = self.eat_ident("variable name")?;
                self.eat(&Tok::Assign)?;
                let expr = self.expr()?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Assign { name, expr, span })
            }
            Some(Tok::If) => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.cond()?;
                self.eat(&Tok::RParen)?;
                let then = self.block()?;
                let els = if self.peek() == Some(&Tok::Else) {
                    self.bump();
                    if self.peek() == Some(&Tok::If) {
                        vec![self.stmt()?] // else-if chains
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then, els, span })
            }
            Some(Tok::While) => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.cond()?;
                self.eat(&Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, span })
            }
            Some(Tok::Return) => {
                self.bump();
                let value = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Return { value, span })
            }
            Some(Tok::Goto) => {
                self.bump();
                let label = self.eat_ident("label name")?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Goto { label, span })
            }
            Some(Tok::Assume) => {
                self.bump();
                // Parentheses, when present, are handled by the condition
                // grammar itself.
                let cond = self.cond()?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Assume { cond, span })
            }
            Some(Tok::Ident(_)) => {
                // Label, assignment, field store, or call statement.
                if self.peek2() == Some(&Tok::Colon) {
                    let name = self.eat_ident("label name")?;
                    self.eat(&Tok::Colon)?;
                    return Ok(Stmt::Label { name, span });
                }
                let name = self.eat_ident("identifier")?;
                match self.peek() {
                    Some(Tok::Assign) => {
                        self.bump();
                        let expr = self.expr()?;
                        self.eat(&Tok::Semi)?;
                        Ok(Stmt::Assign { name, expr, span })
                    }
                    Some(Tok::Dot) => {
                        let mut fields = Vec::new();
                        while self.peek() == Some(&Tok::Dot) {
                            self.bump();
                            fields.push(self.eat_ident("field name")?);
                        }
                        self.eat(&Tok::Assign)?;
                        let value = self.expr()?;
                        self.eat(&Tok::Semi)?;
                        Ok(Stmt::FieldStore { base: name, fields, value, span })
                    }
                    Some(Tok::LParen) => {
                        let expr = self.call_tail(name)?;
                        self.eat(&Tok::Semi)?;
                        Ok(Stmt::ExprStmt { expr, span })
                    }
                    Some(t) => Err(FrontendError::at(
                        self.span(),
                        format!("expected `=`, `.`, `(` or `:` after identifier, found `{t}`"),
                    )),
                    None => Err(FrontendError::msg("unexpected end of file in statement")),
                }
            }
            Some(t) => {
                Err(FrontendError::at(span, format!("expected statement, found `{t}`")))
            }
            None => Err(FrontendError::msg("expected statement, found end of file")),
        }
    }

    /// `cond := and_cond ("||" and_cond)*` — `&&` binds tighter than `||`,
    /// matching C.
    fn cond(&mut self) -> Result<Cond, FrontendError> {
        let mut lhs = self.and_cond()?;
        while self.peek() == Some(&Tok::OrOr) {
            self.bump();
            let rhs = self.and_cond()?;
            lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_cond(&mut self) -> Result<Cond, FrontendError> {
        let mut lhs = self.base_cond()?;
        while self.peek() == Some(&Tok::AndAnd) {
            self.bump();
            let rhs = self.base_cond()?;
            lhs = Cond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn base_cond(&mut self) -> Result<Cond, FrontendError> {
        if self.peek() == Some(&Tok::Bang) {
            self.bump();
            // `!x` or `!(cond)`
            if self.peek() == Some(&Tok::LParen) {
                self.bump();
                let inner = self.cond()?;
                self.eat(&Tok::RParen)?;
                return Ok(Cond::Not(Box::new(inner)));
            }
            let inner = self.base_cond()?;
            return Ok(Cond::Not(Box::new(inner)));
        }
        // A parenthesized group may itself contain connectives:
        // `(a < b || c) && d`. Try a full condition group first.
        if self.peek() == Some(&Tok::LParen) {
            let checkpoint = self.pos;
            self.bump();
            if let Ok(inner) = self.cond() {
                if self.peek() == Some(&Tok::RParen) {
                    self.bump();
                    // Groups are conditions, not comparable expressions.
                    if !matches!(
                        self.peek(),
                        Some(Tok::EqEq)
                            | Some(Tok::NotEq)
                            | Some(Tok::Lt)
                            | Some(Tok::Le)
                            | Some(Tok::Gt)
                            | Some(Tok::Ge)
                            | Some(Tok::Dot)
                    ) {
                        return Ok(inner);
                    }
                }
            }
            self.pos = checkpoint; // fall back to expression parsing
        }
        let expr = self.expr()?;
        match expr {
            Expr::Cmp { pred, lhs, rhs } => Ok(Cond::Cmp { pred, lhs: *lhs, rhs: *rhs }),
            other => Ok(Cond::Truthy(other)),
        }
    }

    fn expr(&mut self) -> Result<Expr, FrontendError> {
        let lhs = self.simple_expr()?;
        let pred = match self.peek() {
            Some(Tok::EqEq) => Pred::Eq,
            Some(Tok::NotEq) => Pred::Ne,
            Some(Tok::Lt) => Pred::Lt,
            Some(Tok::Le) => Pred::Le,
            Some(Tok::Gt) => Pred::Gt,
            Some(Tok::Ge) => Pred::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.simple_expr()?;
        Ok(Expr::Cmp { pred, lhs: Box::new(lhs), rhs: Box::new(rhs) })
    }

    fn simple_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut expr = self.primary()?;
        while self.peek() == Some(&Tok::Dot) {
            self.bump();
            let field = self.eat_ident("field name")?;
            expr = Expr::Field { base: Box::new(expr), field };
        }
        Ok(expr)
    }

    fn primary(&mut self) -> Result<Expr, FrontendError> {
        let span = self.span();
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Some(Tok::True) => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            Some(Tok::False) => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            Some(Tok::Null) => {
                self.bump();
                Ok(Expr::Null)
            }
            Some(Tok::Random) => {
                self.bump();
                Ok(Expr::Random)
            }
            Some(Tok::LParen) => {
                self.bump();
                let inner = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(inner)
            }
            Some(Tok::Ident(name)) => {
                self.bump();
                if self.peek() == Some(&Tok::LParen) {
                    self.call_tail(name)
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(Tok::At) => {
                self.bump();
                let name = self.eat_ident("function name after `@`")?;
                Ok(Expr::FuncRef(name))
            }
            Some(t) => Err(FrontendError::at(span, format!("expected expression, found `{t}`"))),
            None => Err(FrontendError::msg("expected expression, found end of file")),
        }
    }

    /// Parses the argument list of a call whose callee name has already
    /// been consumed.
    fn call_tail(&mut self, callee: String) -> Result<Expr, FrontendError> {
        self.eat(&Tok::LParen)?;
        let mut args = Vec::new();
        while self.peek() != Some(&Tok::RParen) {
            args.push(self.expr()?);
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.eat(&Tok::RParen)?;
        Ok(Expr::Call { callee, args })
    }
}

/// Parses a token stream into an [`AstModule`].
///
/// # Errors
///
/// Returns a positioned [`FrontendError`] on syntax errors.
pub fn parse(tokens: &[Token]) -> Result<AstModule, FrontendError> {
    let mut parser = Parser { tokens, pos: 0 };
    parser.module()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<AstModule, FrontendError> {
        parse(&lex(src)?)
    }

    #[test]
    fn minimal_module() {
        let m = parse_src("module demo;").unwrap();
        assert_eq!(m.name, "demo");
        assert!(m.items.is_empty());
    }

    #[test]
    fn externs_and_functions() {
        let m = parse_src(
            "module demo; extern fn api; extern fn api2(a, b); weak fn h() { return; } fn f(x, y) { return x; }",
        )
        .unwrap();
        assert_eq!(m.items.len(), 4);
        assert!(matches!(&m.items[0], Item::Extern { name } if name == "api"));
        match &m.items[2] {
            Item::Func(f) => assert!(f.weak),
            _ => panic!(),
        }
        match &m.items[3] {
            Item::Func(f) => {
                assert_eq!(f.params, vec!["x", "y"]);
                assert!(!f.weak);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn statements() {
        let m = parse_src(
            r#"module demo;
            fn f(dev) {
                assume dev != null;
                let v = reg_read(dev, 0x54);
                if (v <= 0) { goto exit; }
                inc_pmcount(dev);
            exit:
                return 0;
            }"#,
        )
        .unwrap();
        let Item::Func(f) = &m.items[0] else { panic!() };
        assert_eq!(f.body.len(), 6);
        assert!(matches!(f.body[0], Stmt::Assume { .. }));
        assert!(matches!(f.body[2], Stmt::If { .. }));
        assert!(matches!(&f.body[3], Stmt::ExprStmt { .. }));
        assert!(matches!(&f.body[4], Stmt::Label { name, .. } if name == "exit"));
    }

    #[test]
    fn else_if_chains() {
        let m = parse_src(
            "module m; fn f(x) { if (x < 0) { return -1; } else if (x > 0) { return 1; } else { return 0; } }",
        )
        .unwrap();
        let Item::Func(f) = &m.items[0] else { panic!() };
        let Stmt::If { els, .. } = &f.body[0] else { panic!() };
        assert_eq!(els.len(), 1);
        assert!(matches!(&els[0], Stmt::If { .. }));
    }

    #[test]
    fn conditions() {
        let m = parse_src(
            "module m; fn f(x) { if (x) { return; } if (!x) { return; } if (!(x == 3)) { return; } }",
        )
        .unwrap();
        let Item::Func(f) = &m.items[0] else { panic!() };
        assert!(matches!(&f.body[0], Stmt::If { cond: Cond::Truthy(_), .. }));
        assert!(matches!(&f.body[1], Stmt::If { cond: Cond::Not(_), .. }));
        let Stmt::If { cond: Cond::Not(inner), .. } = &f.body[2] else { panic!() };
        assert!(matches!(**inner, Cond::Cmp { pred: Pred::Eq, .. }));
    }

    #[test]
    fn field_chains_and_stores() {
        let m = parse_src("module m; fn f(s) { let a = s.dev.pm; s.dev.count = 0; return; }")
            .unwrap();
        let Item::Func(f) = &m.items[0] else { panic!() };
        let Stmt::Assign { expr, .. } = &f.body[0] else { panic!() };
        assert!(matches!(expr, Expr::Field { .. }));
        let Stmt::FieldStore { base, fields, .. } = &f.body[1] else { panic!() };
        assert_eq!(base, "s");
        assert_eq!(fields, &["dev", "count"]);
    }

    #[test]
    fn nested_call_arguments() {
        let m = parse_src("module m; fn f(x) { let a = g(h(x), x.dev, 3); return a; }").unwrap();
        let Item::Func(f) = &m.items[0] else { panic!() };
        let Stmt::Assign { expr: Expr::Call { args, .. }, .. } = &f.body[0] else { panic!() };
        assert_eq!(args.len(), 3);
        assert!(matches!(&args[0], Expr::Call { .. }));
        assert!(matches!(&args[1], Expr::Field { .. }));
    }

    #[test]
    fn while_loops() {
        let m = parse_src("module m; fn f(n) { while (n > 0) { step(); } return; }").unwrap();
        let Item::Func(f) = &m.items[0] else { panic!() };
        assert!(matches!(&f.body[0], Stmt::While { .. }));
    }

    #[test]
    fn logical_connectives_precedence() {
        // && binds tighter than ||: a || b && c == Or(a, And(b, c))
        let m = parse_src("module m; fn f(a, b, c) { if (a || b && c) { return 1; } return 0; }")
            .unwrap();
        let Item::Func(f) = &m.items[0] else { panic!() };
        let Stmt::If { cond: Cond::Or(lhs, rhs), .. } = &f.body[0] else {
            panic!("expected Or at top: {:?}", f.body[0])
        };
        assert!(matches!(**lhs, Cond::Truthy(_)));
        assert!(matches!(**rhs, Cond::And(..)));
    }

    #[test]
    fn parenthesized_condition_groups() {
        let m = parse_src(
            "module m; fn f(a, b, c) { if ((a || b) && c) { return 1; } return 0; }",
        )
        .unwrap();
        let Item::Func(f) = &m.items[0] else { panic!() };
        let Stmt::If { cond: Cond::And(lhs, _), .. } = &f.body[0] else {
            panic!("expected And at top: {:?}", f.body[0])
        };
        assert!(matches!(**lhs, Cond::Or(..)));
        // Parenthesized plain expressions still work in comparisons.
        assert!(parse_src("module m; fn f(a) { if ((a) < 3) { return 1; } return 0; }").is_ok());
    }

    #[test]
    fn negated_connective_groups() {
        let m = parse_src("module m; fn f(a, b) { if (!(a && b)) { return 1; } return 0; }")
            .unwrap();
        let Item::Func(f) = &m.items[0] else { panic!() };
        let Stmt::If { cond: Cond::Not(inner), .. } = &f.body[0] else { panic!() };
        assert!(matches!(**inner, Cond::And(..)));
    }

    #[test]
    fn func_ref_expressions() {
        let m = parse_src("module m; fn f(dev) { request_irq(dev.irq, @handler, dev); return 0; }")
            .unwrap();
        let Item::Func(f) = &m.items[0] else { panic!() };
        let Stmt::ExprStmt { expr: Expr::Call { args, .. }, .. } = &f.body[0] else {
            panic!()
        };
        assert!(matches!(&args[1], Expr::FuncRef(name) if name == "handler"));
        // Bare @ without an identifier is an error.
        assert!(parse_src("module m; fn f() { g(@); return; }").is_err());
    }

    #[test]
    fn syntax_errors_have_positions() {
        let err = parse_src("module m; fn f( { }").unwrap_err();
        assert!(err.span.is_some());
        let err = parse_src("module m; fn f() { let = 3; }").unwrap_err();
        assert!(err.to_string().contains("variable name"));
        assert!(parse_src("fn f() {}").is_err()); // missing module header
        assert!(parse_src("module m; fn f() { x + y; }").is_err()); // no arithmetic
    }
}
