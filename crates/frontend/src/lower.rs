//! Lowering from the RIL AST to the `rid-ir` control-flow graph.

use std::collections::HashMap;

use rid_ir::{BlockId, FunctionBuilder, Module, Operand, Pred, Rvalue};

use crate::ast::{AstFunc, AstModule, Cond, Expr, Item, Stmt};
use crate::error::{FrontendError, Span};

/// Lowers a parsed module to IR.
///
/// # Errors
///
/// Returns a [`FrontendError`] on semantic errors: duplicate or misplaced
/// labels, `goto` to an unknown label, field access on constants, or IR
/// validation failures.
pub fn lower_module(ast: &AstModule) -> Result<Module, FrontendError> {
    let mut module = Module::new(ast.name.clone());
    for item in &ast.items {
        match item {
            Item::Extern { name } => module.push_extern(name.clone()),
            Item::Func(func) => module.push_function(lower_function(func)?),
        }
    }
    Ok(module)
}

struct Lowerer {
    builder: FunctionBuilder,
    labels: HashMap<String, BlockId>,
    next_temp: u32,
}

fn lower_function(ast: &AstFunc) -> Result<rid_ir::Function, FrontendError> {
    let mut builder = FunctionBuilder::new(ast.name.clone(), ast.params.iter().cloned());
    builder.set_weak(ast.weak);

    // Pre-scan the outermost block for labels so forward `goto`s resolve.
    let mut labels = HashMap::new();
    for stmt in &ast.body {
        if let Stmt::Label { name, span } = stmt {
            let block = builder.new_block();
            if labels.insert(name.clone(), block).is_some() {
                return Err(FrontendError::at(*span, format!("duplicate label `{name}`")));
            }
        }
    }

    let mut lowerer = Lowerer { builder, labels, next_temp: 0 };
    lowerer.stmts(&ast.body, 0)?;
    if !lowerer.builder.current_is_sealed() {
        lowerer.builder.ret_void();
    }
    lowerer
        .builder
        .finish()
        .map_err(|e| FrontendError::at(ast.span, format!("in function `{}`: {e}", ast.name)))
}

impl Lowerer {
    fn temp(&mut self) -> String {
        let name = format!("%t{}", self.next_temp);
        self.next_temp += 1;
        name
    }

    /// If the current block is already sealed (dead code follows a
    /// terminator), continue lowering into a fresh unreachable block.
    fn ensure_open(&mut self) {
        if self.builder.current_is_sealed() {
            let b = self.builder.new_block();
            self.builder.switch_to(b);
        }
    }

    fn stmts(&mut self, stmts: &[Stmt], depth: u32) -> Result<(), FrontendError> {
        for stmt in stmts {
            self.stmt(stmt, depth)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt, depth: u32) -> Result<(), FrontendError> {
        match stmt {
            Stmt::Label { name, span } => {
                if depth > 0 {
                    return Err(FrontendError::at(
                        *span,
                        format!("label `{name}` must be in the function's outermost block"),
                    ));
                }
                let block = self.labels[name];
                if !self.builder.current_is_sealed() {
                    self.builder.jump(block);
                }
                self.builder.switch_to(block);
            }
            Stmt::Goto { label, span } => {
                let block = *self.labels.get(label).ok_or_else(|| {
                    FrontendError::at(*span, format!("goto to unknown label `{label}`"))
                })?;
                self.ensure_open();
                self.builder.jump(block);
            }
            Stmt::Assign { name, expr, span } => {
                self.ensure_open();
                let rvalue = self.rvalue(expr, *span)?;
                self.builder.assign(name.clone(), rvalue);
            }
            Stmt::FieldStore { base, fields, value, span } => {
                self.ensure_open();
                let (last, init) = fields.split_last().expect("parser guarantees ≥1 field");
                let mut base_var = base.clone();
                for field in init {
                    let t = self.temp();
                    self.builder.assign(t.clone(), Rvalue::field(base_var, field.clone()));
                    base_var = t;
                }
                let value = self.operand(value, *span)?;
                self.builder.field_store(base_var, last.clone(), value);
            }
            Stmt::ExprStmt { expr, span } => {
                self.ensure_open();
                match expr {
                    Expr::Call { callee, args } => {
                        let args = self.operands(args, *span)?;
                        self.builder.call(callee.clone(), args);
                    }
                    _ => {
                        return Err(FrontendError::at(
                            *span,
                            "only calls may be used as statements",
                        ))
                    }
                }
            }
            Stmt::Assume { cond, span } => {
                self.ensure_open();
                self.assume(cond, false, *span)?;
            }
            Stmt::Return { value, span } => {
                self.ensure_open();
                match value {
                    Some(expr) => {
                        let op = self.operand(expr, *span)?;
                        self.builder.ret(op);
                    }
                    None => {
                        self.builder.ret_void();
                    }
                }
            }
            Stmt::If { cond, then, els, span } => {
                self.ensure_open();
                let then_bb = self.builder.new_block();
                let join_bb = self.builder.new_block();
                let else_bb =
                    if els.is_empty() { join_bb } else { self.builder.new_block() };
                self.cond_branch(cond, false, then_bb, else_bb, *span)?;

                self.builder.switch_to(then_bb);
                self.stmts(then, depth + 1)?;
                if !self.builder.current_is_sealed() {
                    self.builder.jump(join_bb);
                }

                if !els.is_empty() {
                    self.builder.switch_to(else_bb);
                    self.stmts(els, depth + 1)?;
                    if !self.builder.current_is_sealed() {
                        self.builder.jump(join_bb);
                    }
                }
                self.builder.switch_to(join_bb);
            }
            Stmt::While { cond, body, span } => {
                self.ensure_open();
                let head = self.builder.new_block();
                self.builder.jump(head);
                self.builder.switch_to(head);
                let body_bb = self.builder.new_block();
                let exit_bb = self.builder.new_block();
                self.cond_branch(cond, false, body_bb, exit_bb, *span)?;
                self.builder.switch_to(body_bb);
                self.stmts(body, depth + 1)?;
                if !self.builder.current_is_sealed() {
                    self.builder.jump(head);
                }
                self.builder.switch_to(exit_bb);
            }
        }
        Ok(())
    }

    /// Lowers a condition as a branch to `then_bb`/`else_bb`, with
    /// short-circuit evaluation for `&&`/`||` (each connective gets its
    /// own block, so side-effecting operands only run when reached).
    fn cond_branch(
        &mut self,
        cond: &Cond,
        negate: bool,
        then_bb: BlockId,
        else_bb: BlockId,
        span: Span,
    ) -> Result<(), FrontendError> {
        match cond {
            Cond::Not(inner) => self.cond_branch(inner, !negate, then_bb, else_bb, span),
            Cond::And(a, b) if !negate => {
                let mid = self.builder.new_block();
                self.cond_branch(a, false, mid, else_bb, span)?;
                self.builder.switch_to(mid);
                self.cond_branch(b, false, then_bb, else_bb, span)
            }
            Cond::Or(a, b) if !negate => {
                let mid = self.builder.new_block();
                self.cond_branch(a, false, then_bb, mid, span)?;
                self.builder.switch_to(mid);
                self.cond_branch(b, false, then_bb, else_bb, span)
            }
            // De Morgan under negation: swap the targets instead.
            Cond::And(..) | Cond::Or(..) => {
                self.cond_branch(cond, false, else_bb, then_bb, span)
            }
            Cond::Cmp { pred, lhs, rhs } => {
                let pred = if negate { pred.negated() } else { *pred };
                let lhs = self.operand(lhs, span)?;
                let rhs = self.operand(rhs, span)?;
                let t = self.temp();
                self.builder.assign(t.clone(), Rvalue::Cmp { pred, lhs, rhs });
                self.builder.branch(t, then_bb, else_bb);
                Ok(())
            }
            Cond::Truthy(expr) => {
                let pred = if negate { Pred::Eq } else { Pred::Ne };
                let op = self.operand(expr, span)?;
                let t = self.temp();
                self.builder
                    .assign(t.clone(), Rvalue::Cmp { pred, lhs: op, rhs: Operand::Int(0) });
                self.builder.branch(t, then_bb, else_bb);
                Ok(())
            }
        }
    }

    /// Emits an `assume` for a condition. Connective-free conditions map
    /// to a single `assume` instruction; conditions with `&&`/`||` are
    /// lowered as a branch whose failing arm is unreachable.
    fn assume(&mut self, cond: &Cond, negate: bool, span: Span) -> Result<(), FrontendError> {
        match cond {
            Cond::Not(inner) => self.assume(inner, !negate, span),
            Cond::Cmp { pred, lhs, rhs } => {
                let pred = if negate { pred.negated() } else { *pred };
                let lhs = self.operand(lhs, span)?;
                let rhs = self.operand(rhs, span)?;
                self.builder.assume(pred, lhs, rhs);
                Ok(())
            }
            Cond::Truthy(expr) => {
                let pred = if negate { Pred::Eq } else { Pred::Ne };
                let op = self.operand(expr, span)?;
                self.builder.assume(pred, op, Operand::Int(0));
                Ok(())
            }
            Cond::And(..) | Cond::Or(..) => {
                let ok = self.builder.new_block();
                let bad = self.builder.new_block();
                self.cond_branch(cond, negate, ok, bad, span)?;
                self.builder.switch_to(bad);
                self.builder.unreachable();
                self.builder.switch_to(ok);
                Ok(())
            }
        }
    }

    /// Lowers an expression to an [`Rvalue`] for direct assignment
    /// (avoiding a temp when the expression maps 1:1 onto an instruction).
    fn rvalue(&mut self, expr: &Expr, span: Span) -> Result<Rvalue, FrontendError> {
        Ok(match expr {
            Expr::Int(_) | Expr::Bool(_) | Expr::Null | Expr::Var(_) => {
                Rvalue::Use(self.operand(expr, span)?)
            }
            Expr::Random => Rvalue::Random,
            Expr::Field { base, field } => {
                let base_var = self.base_var(base, span)?;
                Rvalue::field(base_var, field.clone())
            }
            Expr::Call { callee, args } => {
                Rvalue::Call { callee: callee.as_str().into(), args: self.operands(args, span)? }
            }
            Expr::Cmp { pred, lhs, rhs } => Rvalue::Cmp {
                pred: *pred,
                lhs: self.operand(lhs, span)?,
                rhs: self.operand(rhs, span)?,
            },
            Expr::FuncRef(name) => Rvalue::Use(Operand::FuncRef(name.as_str().into())),
        })
    }

    /// Lowers an expression to an operand, materializing temps as needed.
    fn operand(&mut self, expr: &Expr, span: Span) -> Result<Operand, FrontendError> {
        Ok(match expr {
            Expr::Int(v) => Operand::Int(*v),
            Expr::Bool(b) => Operand::Bool(*b),
            Expr::Null => Operand::Null,
            Expr::Var(name) => Operand::var(name.clone()),
            Expr::FuncRef(name) => Operand::FuncRef(name.as_str().into()),
            Expr::Random | Expr::Field { .. } | Expr::Call { .. } | Expr::Cmp { .. } => {
                let rvalue = self.rvalue(expr, span)?;
                let t = self.temp();
                self.builder.assign(t.clone(), rvalue);
                Operand::var(t)
            }
        })
    }

    fn operands(&mut self, exprs: &[Expr], span: Span) -> Result<Vec<Operand>, FrontendError> {
        exprs.iter().map(|e| self.operand(e, span)).collect()
    }

    /// Lowers the base of a field access to a variable name.
    fn base_var(&mut self, base: &Expr, span: Span) -> Result<rid_ir::Sym, FrontendError> {
        match self.operand(base, span)? {
            Operand::Var(name) => Ok(name),
            _ => Err(FrontendError::at(span, "field access on a constant")),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_module;
    use rid_ir::{Inst, Rvalue, Terminator};

    #[test]
    fn figure1_foo_lowers_to_three_reachable_blocks() {
        let m = parse_module(
            r#"module fig1;
            extern fn reg_read;
            extern fn inc_pmcount;
            fn foo(dev) {
                assume dev != null;
                let v = reg_read(dev, 0x54);
                if (v <= 0) { goto exit; }
                inc_pmcount(dev);
            exit:
                return 0;
            }"#,
        )
        .unwrap();
        let foo = m.function("foo").unwrap();
        assert_eq!(foo.params(), &["dev".to_owned()]);
        assert_eq!(foo.conditional_branch_count(), 1);
        let callees: Vec<&str> = foo.callees().collect();
        assert_eq!(callees, vec!["reg_read", "inc_pmcount"]);
        // Entry has the assume.
        assert!(matches!(foo.blocks().get(0).unwrap().insts[0], Inst::Assume { .. }));
    }

    #[test]
    fn implicit_void_return() {
        let m = parse_module("module m; fn f() { g(); }").unwrap();
        let f = m.function("f").unwrap();
        assert!(matches!(f.blocks().get(0).unwrap().term, Terminator::Return(None)));
    }

    #[test]
    fn truthiness_lowering() {
        let m = parse_module("module m; fn f(x) { if (x) { return 1; } return 0; }").unwrap();
        let f = m.function("f").unwrap();
        let cmp = f.blocks().get(0).unwrap()
            .insts
            .iter()
            .find_map(|i| match i {
                Inst::Assign { rvalue: Rvalue::Cmp { pred, .. }, .. } => Some(*pred),
                _ => None,
            })
            .unwrap();
        assert_eq!(cmp, rid_ir::Pred::Ne);
    }

    #[test]
    fn negated_condition_lowering() {
        let m = parse_module("module m; fn f(x) { if (!(x < 0)) { return 1; } return 0; }")
            .unwrap();
        let f = m.function("f").unwrap();
        let cmp = f.blocks().get(0).unwrap()
            .insts
            .iter()
            .find_map(|i| match i {
                Inst::Assign { rvalue: Rvalue::Cmp { pred, .. }, .. } => Some(*pred),
                _ => None,
            })
            .unwrap();
        assert_eq!(cmp, rid_ir::Pred::Ge);
    }

    #[test]
    fn while_loop_shape() {
        let m = parse_module("module m; fn f(n) { while (n > 0) { step(); } return; }").unwrap();
        let f = m.function("f").unwrap();
        let cfg = rid_ir::Cfg::new(f);
        assert!(cfg.has_loops());
    }

    #[test]
    fn nested_field_store() {
        let m = parse_module("module m; fn f(s) { s.dev.count = 3; return; }").unwrap();
        let f = m.function("f").unwrap();
        let has_load = f
            .insts()
            .any(|(_, i)| matches!(i, Inst::Assign { rvalue: Rvalue::FieldLoad { .. }, .. }));
        let has_store = f.insts().any(|(_, i)| matches!(i, Inst::FieldStore { .. }));
        assert!(has_load && has_store);
    }

    #[test]
    fn call_args_are_flattened() {
        let m =
            parse_module("module m; fn f(x) { let a = g(h(x), x.dev); return a; }").unwrap();
        let f = m.function("f").unwrap();
        // h(x) and x.dev each get a temp before the call to g.
        let callees: Vec<&str> = f.callees().collect();
        assert_eq!(callees, vec!["h", "g"]);
    }

    #[test]
    fn semantic_errors() {
        assert!(parse_module("module m; fn f() { goto nowhere; }").is_err());
        assert!(parse_module("module m; fn f() { x: x: return; }")
            .unwrap_err()
            .to_string()
            .contains("duplicate label"));
        assert!(parse_module("module m; fn f(x) { if (x) { inner: return; } }")
            .unwrap_err()
            .to_string()
            .contains("outermost"));
        assert!(parse_module("module m; fn f() { let a = null.f; return; }").is_err());
    }

    #[test]
    fn dead_code_after_return_is_tolerated() {
        let m = parse_module("module m; fn f() { return 1; g(); return 2; }").unwrap();
        let f = m.function("f").unwrap();
        let cfg = rid_ir::Cfg::new(f);
        // Dead block exists but is unreachable.
        assert!(f.blocks().len() >= 2);
        assert!(!cfg.is_reachable(rid_ir::BlockId(1)));
    }

    #[test]
    fn short_circuit_and_lowering() {
        // `a() && b()`: b must only be called when a's result is truthy.
        let m = parse_module(
            "module m; fn f(x) { if (chk_a(x) && chk_b(x)) { act(x); } return 0; }",
        )
        .unwrap();
        let f = m.function("f").unwrap();
        // Two conditional branches: one per operand.
        assert_eq!(f.conditional_branch_count(), 2);
        // chk_b's call must be in a different block than chk_a's.
        let blocks_of: Vec<u32> = f
            .insts()
            .filter(|(_, i)| matches!(i.callee(), Some("chk_a") | Some("chk_b")))
            .map(|(id, _)| id.block.0)
            .collect();
        assert_eq!(blocks_of.len(), 2);
        assert_ne!(blocks_of[0], blocks_of[1], "short circuit requires separate blocks");
    }

    #[test]
    fn short_circuit_or_lowering() {
        let m = parse_module(
            "module m; fn f(x) { if (x < 0 || x > 10) { clamp(x); } return 0; }",
        )
        .unwrap();
        let f = m.function("f").unwrap();
        assert_eq!(f.conditional_branch_count(), 2);
    }

    #[test]
    fn assume_with_connectives_lowers_to_branch() {
        let m = parse_module("module m; fn f(x) { assume x > 0 && x < 10; return x; }")
            .unwrap();
        let f = m.function("f").unwrap();
        // An unreachable block models the failing assumption.
        assert!(f
            .blocks()
            .iter()
            .any(|b| matches!(b.term, rid_ir::Terminator::Unreachable)));
    }

    #[test]
    fn func_ref_lowering() {
        let m = parse_module(
            "module m; fn setup(dev) { request_irq(dev.irq, @handler, dev); return 0; }",
        )
        .unwrap();
        let f = m.function("setup").unwrap();
        let refs: Vec<&str> = f.referenced_functions().collect();
        assert_eq!(refs, vec!["handler"]);
        // @handler is not a *call* to handler.
        assert!(f.callees().all(|c| c != "handler"));
    }

    #[test]
    fn figure9_usb_wrapper_lowers() {
        let m = parse_module(
            r#"module usb;
            extern fn pm_runtime_get_sync;
            extern fn pm_runtime_put_sync;
            fn usb_autopm_get_interface(intf) {
                let status = pm_runtime_get_sync(intf.dev);
                if (status < 0) {
                    pm_runtime_put_sync(intf.dev);
                }
                if (status > 0) {
                    status = 0;
                }
                return status;
            }"#,
        )
        .unwrap();
        let f = m.function("usb_autopm_get_interface").unwrap();
        assert_eq!(f.conditional_branch_count(), 2);
        assert_eq!(m.externs().len(), 2);
    }
}
