//! Property-based round-trip tests: random ASTs are rendered to RIL
//! source, re-parsed, and compared structurally (ignoring spans). This
//! pins the parser and the surface grammar to each other.

#![cfg(test)]

use proptest::prelude::*;
use rid_ir::Pred;

use crate::ast::{AstFunc, AstModule, Cond, Expr, Item, Stmt};
use crate::error::Span;
use crate::lexer::lex;
use crate::parser::parse;

// ---------------------------------------------------------------- printer

fn render_expr(expr: &Expr, out: &mut String) {
    match expr {
        Expr::Int(v) => out.push_str(&v.to_string()),
        Expr::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Expr::Null => out.push_str("null"),
        Expr::Var(name) => out.push_str(name),
        Expr::Field { base, field } => {
            render_expr(base, out);
            out.push('.');
            out.push_str(field);
        }
        Expr::Random => out.push_str("random"),
        Expr::Call { callee, args } => {
            out.push_str(callee);
            out.push('(');
            for (i, arg) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(arg, out);
            }
            out.push(')');
        }
        Expr::Cmp { pred, lhs, rhs } => {
            render_expr(lhs, out);
            out.push(' ');
            out.push_str(pred.symbol());
            out.push(' ');
            render_expr(rhs, out);
        }
        Expr::FuncRef(name) => {
            out.push('@');
            out.push_str(name);
        }
    }
}

/// Composite operands are always parenthesized, leaves are bare.
fn render_cond(cond: &Cond, out: &mut String) {
    fn operand(c: &Cond, out: &mut String) {
        match c {
            Cond::And(..) | Cond::Or(..) => {
                out.push('(');
                render_cond(c, out);
                out.push(')');
            }
            _ => render_cond(c, out),
        }
    }
    match cond {
        Cond::Cmp { pred, lhs, rhs } => {
            render_expr(lhs, out);
            out.push(' ');
            out.push_str(pred.symbol());
            out.push(' ');
            render_expr(rhs, out);
        }
        Cond::Truthy(expr) => render_expr(expr, out),
        Cond::Not(inner) => {
            out.push_str("!(");
            render_cond(inner, out);
            out.push(')');
        }
        Cond::And(a, b) => {
            operand(a, out);
            out.push_str(" && ");
            operand(b, out);
        }
        Cond::Or(a, b) => {
            operand(a, out);
            out.push_str(" || ");
            operand(b, out);
        }
    }
}

fn render_stmt(stmt: &Stmt, out: &mut String) {
    match stmt {
        Stmt::Assign { name, expr, .. } => {
            // Always use `let` form; the parser treats both identically.
            out.push_str("let ");
            out.push_str(name);
            out.push_str(" = ");
            render_expr(expr, out);
            out.push(';');
        }
        Stmt::FieldStore { base, fields, value, .. } => {
            out.push_str(base);
            for f in fields {
                out.push('.');
                out.push_str(f);
            }
            out.push_str(" = ");
            render_expr(value, out);
            out.push(';');
        }
        Stmt::If { cond, then, els, .. } => {
            out.push_str("if (");
            render_cond(cond, out);
            out.push_str(") {");
            for s in then {
                render_stmt(s, out);
            }
            out.push('}');
            if !els.is_empty() {
                out.push_str(" else {");
                for s in els {
                    render_stmt(s, out);
                }
                out.push('}');
            }
        }
        Stmt::While { cond, body, .. } => {
            out.push_str("while (");
            render_cond(cond, out);
            out.push_str(") {");
            for s in body {
                render_stmt(s, out);
            }
            out.push('}');
        }
        Stmt::Return { value, .. } => {
            out.push_str("return");
            if let Some(v) = value {
                out.push(' ');
                render_expr(v, out);
            }
            out.push(';');
        }
        Stmt::Goto { label, .. } => {
            out.push_str("goto ");
            out.push_str(label);
            out.push(';');
        }
        Stmt::Label { name, .. } => {
            out.push_str(name);
            out.push(':');
        }
        Stmt::Assume { cond, .. } => {
            out.push_str("assume ");
            render_cond(cond, out);
            out.push(';');
        }
        Stmt::ExprStmt { expr, .. } => {
            render_expr(expr, out);
            out.push(';');
        }
    }
    out.push('\n');
}

fn render_module(module: &AstModule) -> String {
    let mut out = format!("module {};\n", module.name);
    for item in &module.items {
        match item {
            Item::Extern { name } => {
                out.push_str(&format!("extern fn {name};\n"));
            }
            Item::Func(f) => {
                if f.weak {
                    out.push_str("weak ");
                }
                out.push_str(&format!("fn {}({}) {{\n", f.name, f.params.join(", ")));
                for s in &f.body {
                    render_stmt(s, &mut out);
                }
                out.push_str("}\n");
            }
        }
    }
    out
}

// ------------------------------------------------------------- span strip

fn strip_expr(_expr: &mut Expr) {}

fn strip_stmt(stmt: &mut Stmt) {
    match stmt {
        Stmt::Assign { span, .. }
        | Stmt::FieldStore { span, .. }
        | Stmt::Return { span, .. }
        | Stmt::Goto { span, .. }
        | Stmt::Label { span, .. }
        | Stmt::Assume { span, .. }
        | Stmt::ExprStmt { span, .. } => *span = Span::default(),
        Stmt::If { span, then, els, .. } => {
            *span = Span::default();
            then.iter_mut().for_each(strip_stmt);
            els.iter_mut().for_each(strip_stmt);
        }
        Stmt::While { span, body, .. } => {
            *span = Span::default();
            body.iter_mut().for_each(strip_stmt);
        }
    }
}

fn strip_module(module: &mut AstModule) {
    for item in &mut module.items {
        if let Item::Func(f) = item {
            f.span = Span::default();
            f.body.iter_mut().for_each(strip_stmt);
        }
    }
}

// ------------------------------------------------------------- strategies

fn ident() -> impl Strategy<Value = String> {
    // Avoid keywords; identifiers from a small pool keep shrinking useful.
    prop_oneof![
        Just("alpha".to_owned()),
        Just("beta".to_owned()),
        Just("dev".to_owned()),
        Just("status2".to_owned()),
        Just("intf_x".to_owned()),
        Just("v_".to_owned()),
    ]
}

fn pred() -> impl Strategy<Value = Pred> {
    prop_oneof![
        Just(Pred::Eq),
        Just(Pred::Ne),
        Just(Pred::Lt),
        Just(Pred::Le),
        Just(Pred::Gt),
        Just(Pred::Ge),
    ]
}

/// Expressions without comparisons (operand position).
fn simple_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(Expr::Int),
        any::<bool>().prop_map(Expr::Bool),
        Just(Expr::Null),
        ident().prop_map(Expr::Var),
        Just(Expr::Random),
        ident().prop_map(Expr::FuncRef),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            // Field access on variables or calls only (lowering rejects
            // constants; the grammar is what we test here, but keep the
            // sources plausible).
            (ident().prop_map(Expr::Var), ident()).prop_map(|(base, field)| Expr::Field {
                base: Box::new(base),
                field,
            }),
            (ident(), prop::collection::vec(inner, 0..3))
                .prop_map(|(callee, args)| Expr::Call { callee, args }),
        ]
    })
}

/// Full expressions: a simple expression or one top-level comparison.
fn expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        simple_expr(),
        (pred(), simple_expr(), simple_expr()).prop_map(|(p, l, r)| Expr::Cmp {
            pred: p,
            lhs: Box::new(l),
            rhs: Box::new(r),
        }),
    ]
}

fn cond() -> impl Strategy<Value = Cond> {
    let leaf = prop_oneof![
        (pred(), simple_expr(), simple_expr())
            .prop_map(|(p, l, r)| Cond::Cmp { pred: p, lhs: l, rhs: r }),
        simple_expr().prop_map(Cond::Truthy),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|c| Cond::Not(Box::new(c))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Cond::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner)
                .prop_map(|(a, b)| Cond::Or(Box::new(a), Box::new(b))),
        ]
    })
}

fn stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (ident(), expr()).prop_map(|(name, e)| Stmt::Assign {
            name,
            expr: e,
            span: Span::default(),
        }),
        (ident(), prop::collection::vec(ident(), 1..3), simple_expr()).prop_map(
            |(base, fields, value)| Stmt::FieldStore {
                base,
                fields,
                value,
                span: Span::default(),
            }
        ),
        prop::option::of(expr())
            .prop_map(|value| Stmt::Return { value, span: Span::default() }),
        cond().prop_map(|c| Stmt::Assume { cond: c, span: Span::default() }),
        (ident(), prop::collection::vec(simple_expr(), 0..3)).prop_map(|(callee, args)| {
            Stmt::ExprStmt {
                expr: Expr::Call { callee, args },
                span: Span::default(),
            }
        }),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            (cond(), prop::collection::vec(inner.clone(), 0..3),
             prop::collection::vec(inner.clone(), 0..2))
                .prop_map(|(c, then, els)| Stmt::If {
                    cond: c,
                    then,
                    els,
                    span: Span::default(),
                }),
            (cond(), prop::collection::vec(inner, 0..3)).prop_map(|(c, body)| Stmt::While {
                cond: c,
                body,
                span: Span::default(),
            }),
        ]
    })
}

fn module() -> impl Strategy<Value = AstModule> {
    (
        ident(),
        prop::collection::vec(
            prop_oneof![
                ident().prop_map(|name| Item::Extern { name }),
                (
                    ident(),
                    prop::collection::vec(ident(), 0..3),
                    any::<bool>(),
                    prop::collection::vec(stmt(), 0..5),
                )
                    .prop_map(|(name, mut params, weak, body)| {
                        params.dedup();
                        Item::Func(AstFunc {
                            name,
                            params,
                            weak,
                            body,
                            span: Span::default(),
                        })
                    }),
            ],
            0..4,
        ),
    )
        .prop_map(|(name, items)| AstModule { name, items })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Rendering an AST to RIL source and parsing it back yields the same
    /// AST (modulo spans).
    #[test]
    fn ast_roundtrips_through_source(m in module()) {
        let source = render_module(&m);
        let tokens = lex(&source)
            .unwrap_or_else(|e| panic!("lex failed: {e}\nsource:\n{source}"));
        let mut reparsed = parse(&tokens)
            .unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{source}"));
        strip_module(&mut reparsed);
        let mut original = m.clone();
        strip_module(&mut original);
        prop_assert_eq!(reparsed, original, "source:\n{}", source);
        let _ = strip_expr; // silence: expressions carry no spans
    }
}
