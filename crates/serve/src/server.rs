//! Transports that feed the [`Engine`]: stdio for tests and editor
//! pipes, a Unix domain socket for long-lived daemons.

use std::io::{self, BufRead, BufReader, Write};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use crate::engine::{Engine, ServerConfig};
use crate::signal::install_term_handler;

/// Serves the protocol over an arbitrary reader/writer pair — in
/// production that is stdin/stdout (`rid serve --stdio`), in tests any
/// in-memory buffer.
///
/// Returns after a `shutdown` request has been answered or the input
/// reaches EOF; on EOF the queue is drained first so accepted deferred
/// requests are never lost.
pub fn serve_stdio<R: BufRead, W: Write>(
    input: R,
    mut output: W,
    config: ServerConfig,
) -> io::Result<()> {
    let mut engine: Engine<()> = Engine::new(config);
    for line in input.lines() {
        let line = line?;
        for ((), response) in engine.handle_line((), &line) {
            writeln!(output, "{response}")?;
        }
        output.flush()?;
        if engine.is_shutting_down() {
            return Ok(());
        }
    }
    for ((), response) in engine.drain() {
        writeln!(output, "{response}")?;
    }
    output.flush()
}

/// Serves the protocol on a Unix domain socket at `path`.
///
/// One reader thread per connection feeds a shared engine; responses
/// are routed back by connection id, so coalesced batches answer every
/// connection that contributed a request. The accept loop polls a
/// SIGTERM/SIGINT latch and the engine's shutdown state; on either it
/// stops accepting, drains the queue, and removes the socket file.
#[cfg(unix)]
pub fn serve_unix(path: &std::path::Path, config: ServerConfig) -> io::Result<()> {
    use std::collections::HashMap;
    use std::os::unix::net::{UnixListener, UnixStream};

    // A stale socket from a crashed daemon would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let term = install_term_handler();

    let engine: Arc<Mutex<Engine<usize>>> = Arc::new(Mutex::new(Engine::new(config)));
    let writers: Arc<Mutex<HashMap<usize, UnixStream>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut next_conn = 0usize;

    loop {
        if term.load(Ordering::Relaxed) {
            break;
        }
        if engine.lock().expect("engine lock").is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let conn = next_conn;
                next_conn += 1;
                writers
                    .lock()
                    .expect("writers lock")
                    .insert(conn, stream.try_clone()?);
                let engine = Arc::clone(&engine);
                let writers = Arc::clone(&writers);
                std::thread::spawn(move || {
                    let reader = BufReader::new(stream);
                    for line in reader.lines() {
                        let Ok(line) = line else { break };
                        let responses =
                            engine.lock().expect("engine lock").handle_line(conn, &line);
                        route(&writers, responses);
                    }
                    writers.lock().expect("writers lock").remove(&conn);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            Err(e) => return Err(e),
        }
    }

    // Graceful drain: answer everything accepted before we stop.
    let responses = engine.lock().expect("engine lock").drain();
    route(&writers, responses);
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Writes each response to its connection's stream; connections that
/// went away simply miss their reply (the daemon must not die for a
/// disconnected client).
#[cfg(unix)]
fn route(
    writers: &Arc<Mutex<std::collections::HashMap<usize, std::os::unix::net::UnixStream>>>,
    responses: Vec<(usize, String)>,
) {
    let mut writers = writers.lock().expect("writers lock");
    for (conn, response) in responses {
        if let Some(stream) = writers.get_mut(&conn) {
            let _ = writeln!(stream, "{response}");
            let _ = stream.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdio_drains_deferred_requests_at_eof() {
        let input = concat!(
            r#"{"id":1,"op":"stats","defer":true}"#,
            "\n",
            r#"{"id":2,"op":"stats","defer":true}"#,
            "\n",
        );
        let mut out = Vec::new();
        serve_stdio(input.as_bytes(), &mut out, ServerConfig::default()).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert_eq!(out.lines().count(), 2, "EOF answered both deferred requests");
    }

    #[test]
    fn stdio_stops_after_shutdown_reply() {
        let input = concat!(
            r#"{"id":1,"op":"shutdown"}"#,
            "\n",
            r#"{"id":2,"op":"stats"}"#,
            "\n",
        );
        let mut out = Vec::new();
        serve_stdio(input.as_bytes(), &mut out, ServerConfig::default()).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1, "nothing is read past shutdown");
        let reply: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(reply["id"].as_i64(), Some(1));
        assert_eq!(reply["ok"].as_bool(), Some(true));
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip_and_shutdown() {
        let dir = std::env::temp_dir().join(format!("rid-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rid.sock");
        let server_path = path.clone();
        let handle = std::thread::spawn(move || {
            serve_unix(&server_path, ServerConfig::default()).unwrap();
        });
        // Wait for the socket to appear, then talk to it.
        let mut client = None;
        for _ in 0..200 {
            match crate::client::Client::connect(&path) {
                Ok(c) => {
                    client = Some(c);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        let mut client = client.expect("daemon came up");
        let reply = client.roundtrip(r#"{"id":1,"op":"stats"}"#).unwrap();
        let reply: serde_json::Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(reply["ok"].as_bool(), Some(true));
        let bye = client.roundtrip(r#"{"id":2,"op":"shutdown"}"#).unwrap();
        let bye: serde_json::Value = serde_json::from_str(&bye).unwrap();
        assert_eq!(bye["id"].as_i64(), Some(2));
        handle.join().unwrap();
        assert!(!path.exists(), "socket removed on exit");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
