//! Transports that feed the [`Engine`]: stdio for tests and editor
//! pipes, a Unix domain socket for long-lived daemons.
//!
//! Both transports read *bounded* NDJSON frames: a request line longer
//! than [`ServerConfig::max_frame_bytes`] is discarded up to its
//! newline and answered with a `bad-request` error, and the connection
//! keeps serving — an oversized (or garbage) frame costs its sender one
//! request, never the daemon or the other clients. Both construct their
//! engine through [`Engine::recover`], so a daemon started with a
//! `state_dir` resumes from its snapshot + journal.

use std::io::{self, BufRead, BufReader, Write};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use crate::engine::{Engine, ServerConfig};
use crate::protocol::error_line;
use crate::signal::install_term_handler;

/// One framing step's outcome.
enum Frame {
    /// A complete line within the size cap (newline stripped).
    Line(String),
    /// A line that blew the cap; payload is the number of bytes
    /// discarded. The stream is positioned after the offending newline.
    Oversized(usize),
    /// Clean end of input.
    Eof,
}

/// Reads one newline-delimited frame, enforcing `max` bytes per line.
/// An over-long line is consumed (so the stream stays line-aligned) but
/// never buffered whole — memory use is bounded by the reader's chunk
/// size, not by what a hostile client sends.
fn read_frame<R: BufRead>(reader: &mut R, max: usize) -> io::Result<Frame> {
    let mut line: Vec<u8> = Vec::new();
    let mut discarded = 0usize;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            if discarded > 0 {
                return Ok(Frame::Oversized(discarded));
            }
            if line.is_empty() {
                return Ok(Frame::Eof);
            }
            return frame_line(line);
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                if discarded == 0 && line.len() + nl <= max {
                    line.extend_from_slice(&chunk[..nl]);
                    reader.consume(nl + 1);
                    return frame_line(line);
                }
                discarded += line.len() + nl;
                reader.consume(nl + 1);
                return Ok(Frame::Oversized(discarded));
            }
            None => {
                let len = chunk.len();
                if discarded == 0 && line.len() + len <= max {
                    line.extend_from_slice(chunk);
                } else {
                    discarded += line.len() + len;
                    line.clear();
                }
                reader.consume(len);
            }
        }
    }
}

fn frame_line(bytes: Vec<u8>) -> io::Result<Frame> {
    String::from_utf8(bytes)
        .map(Frame::Line)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "request line is not UTF-8"))
}

/// The `bad-request` reply for an oversized frame.
fn oversized_line(discarded: usize, max: usize) -> String {
    let message =
        format!("request line exceeds the {max}-byte frame limit ({discarded} bytes discarded)");
    error_line(None, "bad-request", &message)
}

/// Serves the protocol over an arbitrary reader/writer pair — in
/// production that is stdin/stdout (`rid serve --stdio`), in tests any
/// in-memory buffer.
///
/// Returns after a `shutdown` request has been answered or the input
/// reaches EOF; on EOF the queue is drained first so accepted deferred
/// requests are never lost.
pub fn serve_stdio<R: BufRead, W: Write>(
    input: R,
    mut output: W,
    config: ServerConfig,
) -> io::Result<()> {
    let max = config.max_frame_bytes.max(1);
    let mut engine: Engine<()> = Engine::recover(config)?;
    let mut input = input;
    loop {
        match read_frame(&mut input, max)? {
            Frame::Eof => break,
            Frame::Oversized(discarded) => {
                writeln!(output, "{}", oversized_line(discarded, max))?;
                output.flush()?;
            }
            Frame::Line(line) => {
                for ((), response) in engine.handle_line((), &line) {
                    writeln!(output, "{response}")?;
                }
                output.flush()?;
                if engine.is_shutting_down() {
                    return Ok(());
                }
            }
        }
    }
    for ((), response) in engine.drain() {
        writeln!(output, "{response}")?;
    }
    output.flush()
}

/// Serves the protocol on a Unix domain socket at `path`.
///
/// One reader thread per connection feeds a shared engine; responses
/// are routed back by connection id, so coalesced batches answer every
/// connection that contributed a request. The accept loop polls a
/// SIGTERM/SIGINT latch and the engine's shutdown state; on either it
/// stops accepting, drains the queue, and removes the socket file.
#[cfg(unix)]
pub fn serve_unix(path: &std::path::Path, config: ServerConfig) -> io::Result<()> {
    use std::collections::HashMap;
    use std::os::unix::net::{UnixListener, UnixStream};

    // A stale socket from a crashed daemon would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let term = install_term_handler();

    let max = config.max_frame_bytes.max(1);
    let engine: Arc<Mutex<Engine<usize>>> = Arc::new(Mutex::new(Engine::recover(config)?));
    // The flight recorder outlives the engine lock on purpose: the
    // panic hook and the fatal-error path below persist from it without
    // ever taking the engine mutex (the panicking thread may hold it).
    let black_box = engine.lock().expect("engine lock").black_box().cloned();
    if let Some(black_box) = &black_box {
        crate::flightrec::install_panic_hook(black_box);
    }
    let writers: Arc<Mutex<HashMap<usize, UnixStream>>> = Arc::new(Mutex::new(HashMap::new()));
    // Connection 0 is reserved: journal replay tags its discarded
    // responses with `usize::default()`, so live connections start at 1.
    let mut next_conn = 1usize;

    loop {
        if term.load(Ordering::Relaxed) {
            break;
        }
        if engine.lock().expect("engine lock").is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let conn = next_conn;
                next_conn += 1;
                writers
                    .lock()
                    .expect("writers lock")
                    .insert(conn, stream.try_clone()?);
                let engine = Arc::clone(&engine);
                let writers = Arc::clone(&writers);
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream);
                    loop {
                        match read_frame(&mut reader, max) {
                            Ok(Frame::Line(line)) => {
                                let responses =
                                    engine.lock().expect("engine lock").handle_line(conn, &line);
                                route(&writers, responses);
                            }
                            Ok(Frame::Oversized(discarded)) => {
                                route(&writers, vec![(conn, oversized_line(discarded, max))]);
                            }
                            // A mid-frame disconnect or non-UTF-8 junk
                            // ends this connection only.
                            Ok(Frame::Eof) | Err(_) => break,
                        }
                    }
                    writers.lock().expect("writers lock").remove(&conn);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            Err(e) => {
                // A fatal accept error is a crash the panic hook never
                // sees; write the post-mortem ourselves.
                if let Some(black_box) = &black_box {
                    let _ = black_box.persist(&format!("fatal: accept failed: {e}"), "");
                }
                return Err(e);
            }
        }
    }

    // Graceful drain: answer everything accepted before we stop.
    let responses = engine.lock().expect("engine lock").drain();
    route(&writers, responses);
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Writes each response to its connection's stream; connections that
/// went away simply miss their reply (the daemon must not die for a
/// disconnected client).
#[cfg(unix)]
fn route(
    writers: &Arc<Mutex<std::collections::HashMap<usize, std::os::unix::net::UnixStream>>>,
    responses: Vec<(usize, String)>,
) {
    let mut writers = writers.lock().expect("writers lock");
    for (conn, response) in responses {
        if let Some(stream) = writers.get_mut(&conn) {
            let _ = writeln!(stream, "{response}");
            let _ = stream.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdio_drains_deferred_requests_at_eof() {
        let input = concat!(
            r#"{"id":1,"op":"stats","defer":true}"#,
            "\n",
            r#"{"id":2,"op":"stats","defer":true}"#,
            "\n",
        );
        let mut out = Vec::new();
        serve_stdio(input.as_bytes(), &mut out, ServerConfig::default()).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert_eq!(out.lines().count(), 2, "EOF answered both deferred requests");
    }

    #[test]
    fn stdio_stops_after_shutdown_reply() {
        let input = concat!(
            r#"{"id":1,"op":"shutdown"}"#,
            "\n",
            r#"{"id":2,"op":"stats"}"#,
            "\n",
        );
        let mut out = Vec::new();
        serve_stdio(input.as_bytes(), &mut out, ServerConfig::default()).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1, "nothing is read past shutdown");
        let reply: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(reply["id"].as_i64(), Some(1));
        assert_eq!(reply["ok"].as_bool(), Some(true));
    }

    #[test]
    fn oversized_frame_is_rejected_and_the_stream_survives() {
        let huge = "x".repeat(4096);
        let input = format!(
            "{}\n{}\n",
            format_args!(r#"{{"id":1,"op":"stats","project":"{huge}"}}"#),
            r#"{"id":2,"op":"stats"}"#,
        );
        let config = ServerConfig { max_frame_bytes: 256, ..ServerConfig::default() };
        let mut out = Vec::new();
        serve_stdio(input.as_bytes(), &mut out, config).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["error"]["kind"].as_str(), Some("bad-request"));
        let second: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second["ok"].as_bool(), Some(true), "later requests still served");
        assert_eq!(second["id"].as_i64(), Some(2));
    }

    #[test]
    fn frame_reader_handles_boundaries_and_eof() {
        // Exactly at the cap: accepted. One past: rejected.
        let at_cap = "a".repeat(8);
        let input = format!("{at_cap}\n{}over\nrest\n", "b".repeat(8));
        let mut reader = std::io::BufReader::with_capacity(4, input.as_bytes());
        match read_frame(&mut reader, 8).unwrap() {
            Frame::Line(line) => assert_eq!(line, at_cap),
            _ => panic!("cap-sized line must pass"),
        }
        match read_frame(&mut reader, 8).unwrap() {
            Frame::Oversized(discarded) => assert_eq!(discarded, 12),
            _ => panic!("cap+4 line must be rejected"),
        }
        match read_frame(&mut reader, 8).unwrap() {
            Frame::Line(line) => assert_eq!(line, "rest", "stream stays line-aligned"),
            _ => panic!("line after oversized must pass"),
        }
        assert!(matches!(read_frame(&mut reader, 8).unwrap(), Frame::Eof));
        // A final line without a trailing newline is still a line.
        let mut reader = std::io::BufReader::new(&b"tail"[..]);
        match read_frame(&mut reader, 8).unwrap() {
            Frame::Line(line) => assert_eq!(line, "tail"),
            _ => panic!("unterminated final line must pass"),
        }
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip_and_shutdown() {
        let dir = std::env::temp_dir().join(format!("rid-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rid.sock");
        let server_path = path.clone();
        let handle = std::thread::spawn(move || {
            serve_unix(&server_path, ServerConfig::default()).unwrap();
        });
        // Wait for the socket to appear, then talk to it.
        let mut client = None;
        for _ in 0..200 {
            match crate::client::Client::connect(&path) {
                Ok(c) => {
                    client = Some(c);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        let mut client = client.expect("daemon came up");
        let reply = client.roundtrip(r#"{"id":1,"op":"stats"}"#).unwrap();
        let reply: serde_json::Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(reply["ok"].as_bool(), Some(true));
        let bye = client.roundtrip(r#"{"id":2,"op":"shutdown"}"#).unwrap();
        let bye: serde_json::Value = serde_json::from_str(&bye).unwrap();
        assert_eq!(bye["id"].as_i64(), Some(2));
        handle.join().unwrap();
        assert!(!path.exists(), "socket removed on exit");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
