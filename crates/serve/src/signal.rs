//! Minimal SIGTERM/SIGINT latch for graceful drain.
//!
//! The socket server polls [`install_term_handler`]'s flag between
//! accepts; when a termination signal arrives it stops accepting,
//! drains the queue (answering every accepted request), and removes the
//! socket. No external crate: the handler is installed through the
//! C `signal(2)` entry point directly, and only stores into an atomic —
//! the one async-signal-safe thing a handler may do.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::{AtomicBool, Ordering, TERM};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::Relaxed);
    }

    pub fn install() -> &'static AtomicBool {
        // SAFETY: `signal` is the libc entry point; the handler only
        // performs a relaxed atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
            signal(SIGINT, on_term as *const () as usize);
        }
        &TERM
    }
}

#[cfg(not(unix))]
mod imp {
    use super::AtomicBool;

    pub fn install() -> &'static AtomicBool {
        // No signal delivery on this platform; the flag simply never
        // trips and shutdown happens via the protocol only.
        &super::TERM
    }
}

/// Installs SIGTERM/SIGINT handlers (idempotent) and returns the flag
/// they set. Callers poll it with [`AtomicBool::load`].
pub fn install_term_handler() -> &'static AtomicBool {
    imp::install()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn installing_does_not_trip_the_flag() {
        let flag = install_term_handler();
        assert!(!flag.load(Ordering::Relaxed));
        // Idempotent: installing again is fine and still clear.
        assert!(!install_term_handler().load(Ordering::Relaxed));
    }
}
