//! Write-ahead patch journal: the half of crash safety that covers the
//! window *between* snapshots.
//!
//! Every state-mutating request the engine accepts (`register`,
//! `analyze`, `patch`, `explain`) is appended to an NDJSON journal —
//! one raw request line per entry, exactly as received — and fsynced
//! *before* the request executes. On restart, the engine restores the
//! last snapshot and replays the journal suffix past the snapshot's
//! recorded offset, re-deriving the in-memory state the crash
//! destroyed. `kill -9` at any byte boundary therefore loses at most
//! the request whose append had not completed.
//!
//! ## Torn-tail rule
//!
//! A crash mid-append leaves a torn last line. Replay accepts exactly
//! the prefix of entries that are (a) newline-terminated and (b) valid
//! JSON objects; the first entry failing either test ends the replay
//! and everything after it is discarded. Interior corruption thus
//! cannot be skipped over silently — state never jumps a gap in the
//! history.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of the journal inside a `--state-dir`.
pub const JOURNAL_FILE: &str = "journal.ndjson";

/// An append-only, fsync-per-entry NDJSON journal.
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Opens (creating if absent) the journal inside `state_dir`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be opened for append.
    pub fn open(state_dir: &Path) -> io::Result<Journal> {
        let path = state_dir.join(JOURNAL_FILE);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal { path, file })
    }

    /// Current journal length in bytes — the offset a snapshot records
    /// so restore replays only entries the snapshot does not already
    /// contain.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file metadata cannot be read.
    pub fn offset(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// Appends one request line (newline added here) and fsyncs before
    /// returning — the write-ahead contract: the entry is durable
    /// before the request it records is allowed to execute.
    ///
    /// `torn_after` is the fault-injection hook: when `Some(n)`, only
    /// the first `n` bytes of the framed entry are written (no fsync)
    /// and the append reports failure — exactly what a crash mid-append
    /// leaves on disk.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the write or fsync fails, or if a torn
    /// write was injected.
    pub fn append(&mut self, line: &str, torn_after: Option<usize>) -> io::Result<()> {
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        if let Some(n) = torn_after {
            let n = n.min(framed.len().saturating_sub(1));
            self.file.write_all(&framed[..n])?;
            let _ = self.file.sync_data();
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected torn journal append",
            ));
        }
        self.file.write_all(&framed)?;
        self.file.sync_data()
    }

    /// Entries to replay: every newline-terminated, valid-JSON line
    /// starting at byte `from`. Reading stops at the first torn or
    /// corrupt entry (see the module docs' torn-tail rule). A `from`
    /// at or beyond EOF replays nothing — that is the normal state
    /// right after a snapshot truncation.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the journal cannot be read.
    pub fn replayable(&self, from: u64) -> io::Result<Vec<String>> {
        replayable_at(&self.path, from)
    }

    /// Truncates the journal to empty (post-snapshot garbage
    /// collection) and fsyncs the truncation.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if truncation or fsync fails.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()
    }

    /// The journal's on-disk path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// [`Journal::replayable`] without an open handle — the restore path
/// reads the journal before deciding whether to keep appending to it.
///
/// # Errors
///
/// Returns an I/O error if the journal exists but cannot be read; a
/// missing journal replays nothing.
pub fn replayable_at(path: &Path, from: u64) -> io::Result<Vec<String>> {
    let mut file = match File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let len = file.metadata()?.len();
    if from >= len {
        return Ok(Vec::new());
    }
    file.seek(SeekFrom::Start(from))?;
    let mut bytes = Vec::with_capacity((len - from) as usize);
    file.read_to_end(&mut bytes)?;

    let mut entries = Vec::new();
    let mut start = 0usize;
    while let Some(nl) = bytes[start..].iter().position(|&b| b == b'\n') {
        let line = &bytes[start..start + nl];
        start += nl + 1;
        let Ok(text) = std::str::from_utf8(line) else { break };
        if serde_json::from_str::<serde_json::Value>(text).is_err() {
            break;
        }
        entries.push(text.to_owned());
    }
    // Bytes after the last newline are a torn tail: dropped.
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rid-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_replay_truncate_cycle() {
        let dir = tempdir("cycle");
        let mut j = Journal::open(&dir).unwrap();
        assert_eq!(j.offset().unwrap(), 0);
        j.append(r#"{"id":1,"op":"analyze","project":"p"}"#, None).unwrap();
        j.append(r#"{"id":2,"op":"stats"}"#, None).unwrap();
        let entries = j.replayable(0).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].contains("analyze"));

        // Replay from an offset skips what a snapshot already holds.
        let after_first = entries[0].len() as u64 + 1;
        let tail = j.replayable(after_first).unwrap();
        assert_eq!(tail.len(), 1);
        assert!(tail[0].contains("stats"));

        j.truncate().unwrap();
        assert_eq!(j.offset().unwrap(), 0);
        assert!(j.replayable(0).unwrap().is_empty());

        // Appends after truncation land at the start, not a sparse hole.
        j.append(r#"{"id":3,"op":"stats"}"#, None).unwrap();
        assert_eq!(j.replayable(0).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_at_every_byte_offset() {
        let dir = tempdir("torn");
        let mut j = Journal::open(&dir).unwrap();
        let full = r#"{"id":1,"op":"analyze","project":"p"}"#;
        j.append(full, None).unwrap();
        let whole = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();

        // Truncate the on-disk journal at every byte offset: only the
        // full frame (line + newline) replays the entry.
        for cut in 0..=whole.len() {
            std::fs::write(dir.join(JOURNAL_FILE), &whole[..cut]).unwrap();
            let entries = replayable_at(&dir.join(JOURNAL_FILE), 0).unwrap();
            if cut == whole.len() {
                assert_eq!(entries, vec![full.to_owned()], "cut={cut}");
            } else {
                assert!(entries.is_empty(), "cut={cut} must be a torn tail");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_append_reports_failure_and_replays_nothing() {
        let dir = tempdir("inject");
        let mut j = Journal::open(&dir).unwrap();
        j.append(r#"{"id":1,"op":"stats"}"#, None).unwrap();
        let before = j.offset().unwrap();
        let err = j.append(r#"{"id":2,"op":"analyze","project":"p"}"#, Some(5));
        assert!(err.is_err());
        // The torn suffix poisons only itself: entry 1 still replays.
        let entries = j.replayable(0).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(j.offset().unwrap() > before, "torn bytes are on disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interior_corruption_ends_replay() {
        let dir = tempdir("corrupt");
        let path = dir.join(JOURNAL_FILE);
        std::fs::write(
            &path,
            "{\"id\":1,\"op\":\"stats\"}\nNOT JSON\n{\"id\":2,\"op\":\"stats\"}\n",
        )
        .unwrap();
        let entries = replayable_at(&path, 0).unwrap();
        assert_eq!(entries.len(), 1, "replay must not skip over corruption");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_replays_nothing() {
        let dir = tempdir("missing");
        assert!(replayable_at(&dir.join(JOURNAL_FILE), 0).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
