//! The daemon's deterministic core: a bounded request queue, one
//! resident project state per registered project, and a drain loop that
//! coalesces overlapping `patch` requests into a single driver run.
//!
//! The engine is transport-agnostic: [`serve_stdio`](crate::serve_stdio)
//! and [`serve_unix`](crate::serve_unix) both feed request lines into
//! [`Engine::handle_line`] and route the `(tag, response)` pairs it
//! returns back to the right client. The tag type `T` is whatever the
//! transport needs to find the client again — `()` for stdio, a
//! connection id for the socket server.
//!
//! ## Batching semantics
//!
//! Requests are accepted into a bounded FIFO queue (full queue ⇒ an
//! explicit `backpressure` error reply, never a silent drop). A request
//! with `defer: true` only enqueues; the next non-deferred request (or
//! EOF / `shutdown`) drains the whole queue. During a drain, when the
//! head of the queue is a `patch`, every other queued `patch` for the
//! same project is pulled forward and merged with it — later requests
//! win per module — so the union of their edits costs **one**
//! re-analysis: an incremental pass ([`reanalyze_with_graph`]) that
//! re-executes exactly the union of the affected-function cones and
//! reuses the previous run's summaries for everything else, and every
//! coalesced request receives its own response carrying the shared
//! result.
//!
//! [`reanalyze_with_graph`]: rid_core::incremental::reanalyze_with_graph

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rid_core::cache::content_hash;
use rid_core::incremental::{CallerIndex, ReanalyzePlan};
use rid_core::persist::AnalysisState;
use rid_core::{AnalysisOptions, AnalysisResult, FaultPlan, SummaryCache, SummaryDb};
use rid_ir::{Module, Program};
use serde_json::Value;

use crate::fault::ServeFaultPlan;
use crate::flightrec::BlackBox;
use crate::journal::{self, Journal};
use crate::protocol::{error_line, ok_line, ProjectOptions, Request};
use crate::snapshot::{
    self, read_snapshot, snap_file_name, write_snapshot, Manifest, ProjectSnapshot, SNAP_SCHEMA,
};

/// How many `(idempotency key → response)` pairs the engine remembers.
/// Old entries are evicted FIFO; a retry arriving after eviction simply
/// re-executes, which is safe for every idempotent op and merely
/// re-runs the analysis for the rest.
const IDEM_CACHE_CAP: usize = 256;

/// Server-wide configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Accepted-but-unexecuted request capacity; a request arriving at a
    /// full queue is answered with a `backpressure` error.
    pub queue_cap: usize,
    /// Crash-safety directory: when set, accepted mutating requests are
    /// write-ahead journaled here before executing, `snapshot` requests
    /// serialize every resident project here, and startup restores from
    /// the latest snapshot + journal suffix instead of requiring
    /// re-registration. `None` keeps the daemon purely in-memory.
    pub state_dir: Option<PathBuf>,
    /// Maximum accepted request-line length in bytes; transports answer
    /// longer frames with a `bad-request` error and keep the connection
    /// alive. The default is generous because `register` ships a whole
    /// corpus in one line.
    pub max_frame_bytes: usize,
    /// Chaos-harness fault plan for the durability paths (torn journal
    /// appends, snapshot fsync failures). [`ServeFaultPlan::none`] in
    /// production.
    pub fault: ServeFaultPlan,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_cap: 64,
            state_dir: None,
            max_frame_bytes: 64 << 20,
            fault: ServeFaultPlan::none(),
        }
    }
}

/// One registered project's resident state.
struct Project {
    /// The linked program, kept resident across requests. `patch` swaps
    /// individual modules in place via [`Program::replace_module`];
    /// nothing is re-parsed, re-cloned, or re-linked wholesale — that
    /// per-request rebuild is exactly the cost the daemon exists to
    /// avoid.
    program: Program,
    /// Protocol file key → declared module name, for routing `patch`
    /// sources (keyed by file) to the linked module they replace.
    files: BTreeMap<String, String>,
    /// Resident reverse call index, updated per patched module so the
    /// affected cone and its re-analysis order cost O(edit), not a full
    /// O(program) call-graph rebuild per request. Lazily decoded after
    /// a restore, like `cache` — only `patch` walks it.
    callers: LazyCallers,
    /// Predefined API summaries chosen at registration.
    apis: SummaryDb,
    /// Analysis configuration chosen at registration.
    options: AnalysisOptions,
    /// The content-addressed summary cache backing full `analyze` runs:
    /// a warm re-analyze answers every unchanged function from here.
    /// After a restore this may still be encoded section bytes; the
    /// first run that consults it decodes it.
    cache: LazyCache,
    /// Result of the most recent run (reports, summaries, stats).
    /// `explain` serves from it without re-running, and `patch` seeds
    /// its incremental pass with these summaries so only the affected
    /// cone re-executes. Lazily decoded after a restore, like `cache`.
    last: LastRun,
    /// Driver runs executed for this project.
    analyses: u64,
    /// The raw registration options, kept verbatim so a snapshot can
    /// store them and restore can re-resolve them through the exact
    /// same path `register` used.
    options_raw: Option<ProjectOptions>,
}

/// The summary cache, possibly still in encoded snapshot-section form.
///
/// [`Engine::recover`] keeps the heavyweight sections as the
/// checksum-verified bytes it read: startup pays only for program
/// residency (what request routing and the patch path need
/// immediately), and the first request that actually consults the
/// cache decodes it. A section still raw at the next snapshot passes
/// through byte-for-byte — its logical value cannot have changed.
enum LazyCache {
    Ready(SummaryCache),
    Raw(Vec<u8>),
}

impl LazyCache {
    /// The decoded cache, decoding on first call. The bytes came out of
    /// a checksummed container written by this codec, so a decode
    /// failure is a codec bug, not bad input — panic, don't limp.
    fn force(&mut self) -> &mut SummaryCache {
        if let LazyCache::Raw(bytes) = self {
            let cache = snapshot::decode_cache(bytes)
                .expect("checksum-verified cache section must decode");
            *self = LazyCache::Ready(cache);
        }
        match self {
            LazyCache::Ready(cache) => cache,
            LazyCache::Raw(_) => unreachable!("just decoded"),
        }
    }

    /// The `cache`-section bytes for a snapshot write.
    fn encoded(&self) -> io::Result<Vec<u8>> {
        match self {
            LazyCache::Ready(cache) => snapshot::encode_cache(cache),
            LazyCache::Raw(bytes) => Ok(bytes.clone()),
        }
    }
}

/// The last run's result, possibly still in encoded snapshot-section
/// form. Same laziness contract as [`LazyCache`].
///
/// One value lives per project (never a collection), so the size gap
/// between the `Ready` and `Raw` variants costs nothing worth boxing.
#[allow(clippy::large_enum_variant)]
enum LastRun {
    None,
    Ready(AnalysisResult),
    Raw(Vec<u8>),
}

impl LastRun {
    fn is_none(&self) -> bool {
        matches!(self, LastRun::None)
    }

    /// The decoded result, decoding on first call (see
    /// [`LazyCache::force`] for why decode failures panic).
    fn force(&mut self) -> Option<&AnalysisResult> {
        if let LastRun::Raw(bytes) = self {
            let state = snapshot::decode_state(bytes)
                .expect("checksum-verified state section must decode");
            *self = LastRun::Ready(state.into());
        }
        match self {
            LastRun::None => None,
            LastRun::Ready(result) => Some(result),
            LastRun::Raw(_) => unreachable!("just decoded"),
        }
    }

    /// Takes the result out (for the incremental pass), leaving `None`.
    fn take_result(&mut self) -> Option<AnalysisResult> {
        self.force();
        match std::mem::replace(self, LastRun::None) {
            LastRun::Ready(result) => Some(result),
            _ => None,
        }
    }

    /// The `state`-section bytes for a snapshot write, `None` when the
    /// project was never analyzed.
    fn encoded(&self) -> io::Result<Option<Vec<u8>>> {
        match self {
            LastRun::None => Ok(None),
            LastRun::Ready(result) => {
                Ok(Some(snapshot::encode_state(&AnalysisState::from(result))?))
            }
            LastRun::Raw(bytes) => Ok(Some(bytes.clone())),
        }
    }
}

/// The reverse call index, possibly still in encoded snapshot-section
/// form. Same laziness contract as [`LazyCache`]: only the patch path
/// walks the index, so restore defers the decode and an untouched index
/// passes through to the next snapshot byte-for-byte.
enum LazyCallers {
    Ready(CallerIndex),
    Raw(Vec<u8>),
}

impl LazyCallers {
    /// The decoded index, decoding on first call (see
    /// [`LazyCache::force`] for why decode failures panic).
    fn force(&mut self) -> &mut CallerIndex {
        if let LazyCallers::Raw(bytes) = self {
            let edges = snapshot::decode_callers(bytes)
                .expect("checksum-verified callers section must decode");
            *self = LazyCallers::Ready(CallerIndex::from_edges(edges));
        }
        match self {
            LazyCallers::Ready(callers) => callers,
            LazyCallers::Raw(_) => unreachable!("just decoded"),
        }
    }

    /// The `callers`-section bytes for a snapshot write.
    fn encoded(&self) -> Vec<u8> {
        match self {
            LazyCallers::Ready(callers) => {
                let edges: Vec<(String, BTreeSet<String>)> = callers
                    .edges()
                    .into_iter()
                    .map(|(callee, names)| (callee.to_owned(), names.clone()))
                    .collect();
                snapshot::encode_callers(&edges)
            }
            LazyCallers::Raw(bytes) => bytes.clone(),
        }
    }
}

/// A parsed, validated, accepted request waiting in the queue.
struct Pending<T> {
    tag: T,
    id: u64,
    project: String,
    deadline_ms: Option<u64>,
    /// Idempotency key, if the request carried one; the response is
    /// remembered under it after execution.
    idem: Option<String>,
    /// Journal offset *before* this request's entry was appended, when
    /// it was journaled. `snapshot` uses the minimum over the queue to
    /// know how much journal its snapshot generation covers.
    journal_start: Option<u64>,
    op: Op,
}

enum Op {
    Register { sources: BTreeMap<String, String>, options: Option<ProjectOptions> },
    Analyze,
    Patch { sources: BTreeMap<String, String> },
    Explain { function: Option<String> },
    Diff { baseline: Vec<String> },
    Stats { format: StatsFormat },
    Snapshot,
    Shutdown,
}

/// Encoding of the `stats` telemetry payload.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StatsFormat {
    /// Registry embedded as a structured `telemetry` object (default).
    Json,
    /// Registry rendered as a Prometheus text exposition string.
    Prometheus,
}

impl Op {
    /// Whether this op is write-ahead journaled. Everything that goes
    /// through the queue is — including read-only `stats` and
    /// `snapshot` — because queued entries are also *drain triggers*:
    /// replay must reproduce the exact batching boundaries of the
    /// original run or coalescing counters drift. Only `shutdown`
    /// (terminal) and `ping` (never queued) stay out.
    fn journaled(&self) -> bool {
        !matches!(self, Op::Shutdown)
    }

    /// The op name as it appears in `serve.op.{label}.us` latency
    /// histogram keys.
    fn label(&self) -> &'static str {
        match self {
            Op::Register { .. } => "register",
            Op::Analyze => "analyze",
            Op::Patch { .. } => "patch",
            Op::Explain { .. } => "explain",
            Op::Diff { .. } => "diff",
            Op::Stats { .. } => "stats",
            Op::Snapshot => "snapshot",
            Op::Shutdown => "shutdown",
        }
    }
}

#[derive(Default)]
struct EngineStats {
    accepted: u64,
    batches: u64,
    coalesced: u64,
    backpressure: u64,
    idem_hits: u64,
}

/// The transport-agnostic daemon core. See the module docs for the
/// queueing and batching semantics.
pub struct Engine<T> {
    projects: BTreeMap<String, Project>,
    queue: VecDeque<Pending<T>>,
    cap: usize,
    stats: EngineStats,
    draining: bool,
    /// Crash-safety state; all `None`/default when the daemon runs
    /// without `--state-dir`.
    state_dir: Option<PathBuf>,
    journal: Option<Journal>,
    /// Committed snapshot generation (0 = never snapshotted).
    gen: u64,
    fault: ServeFaultPlan,
    /// True while [`Engine::recover`] is replaying the journal:
    /// suppresses re-journaling and snapshot side effects so replay is
    /// a pure re-derivation of in-memory state.
    replaying: bool,
    /// During replay: the journal offset of the entry currently being
    /// fed to [`Engine::handle_line`], so a replayed entry that stays
    /// queued (a trailing deferred request) keeps its real
    /// `journal_start` and a later snapshot cannot truncate the bytes
    /// it still needs.
    replay_offset: Option<u64>,
    /// FIFO `(idempotency key, response line)` memory.
    idem_cache: VecDeque<(String, String)>,
    /// `(projects restored, journal entries replayed)` from startup.
    restore_info: Option<(usize, usize)>,
    /// Live runtime telemetry: per-op/per-project latency histograms,
    /// journal and degradation counters, queue-depth distribution.
    /// Scalar [`EngineStats`] counters are injected only at read time
    /// (see [`Engine::telemetry_registry`]) so nothing is double-kept.
    registry: rid_obs::Registry,
    /// Crash flight recorder shared with the panic hook; `None` without
    /// a `state_dir`.
    black_box: Option<Arc<BlackBox>>,
    /// When the black box last persisted a heartbeat artifact, so busy
    /// drain loops do not write one file per request.
    last_heartbeat: Option<Instant>,
}

impl<T> Engine<T> {
    /// Creates an engine with no registered projects and no durability
    /// (requests are not journaled even if `config.state_dir` is set —
    /// use [`Engine::recover`] for the crash-safe constructor).
    #[must_use]
    pub fn new(config: ServerConfig) -> Engine<T> {
        Engine {
            projects: BTreeMap::new(),
            queue: VecDeque::new(),
            cap: config.queue_cap.max(1),
            stats: EngineStats::default(),
            draining: false,
            state_dir: None,
            journal: None,
            gen: 0,
            fault: config.fault,
            replaying: false,
            replay_offset: None,
            idem_cache: VecDeque::new(),
            restore_info: None,
            registry: rid_obs::Registry::new(),
            black_box: None,
            last_heartbeat: None,
        }
    }

    /// The crash flight recorder, when the engine runs with a
    /// `state_dir`. Transports hand this to
    /// [`crate::flightrec::install_panic_hook`] and persist a final
    /// record on fatal errors.
    #[must_use]
    pub fn black_box(&self) -> Option<&Arc<BlackBox>> {
        self.black_box.as_ref()
    }

    /// A point-in-time telemetry registry: the live histograms and
    /// counters plus the scalar engine stats injected as counters and
    /// gauges. This is what `stats` serves and the black box persists.
    #[must_use]
    pub fn telemetry_registry(&self) -> rid_obs::Registry {
        let mut registry = self.registry.clone();
        registry.count("serve.accepted", self.stats.accepted);
        registry.count("serve.batches", self.stats.batches);
        registry.count("serve.coalesced", self.stats.coalesced);
        registry.count("serve.backpressure", self.stats.backpressure);
        registry.count("serve.idem_hits", self.stats.idem_hits);
        registry.gauge("serve.queue.cap", self.cap as i64);
        registry.gauge("serve.queue.depth.now", self.queue.len() as i64);
        registry.gauge("serve.projects", self.projects.len() as i64);
        registry.gauge("serve.draining", i64::from(self.draining));
        if self.state_dir.is_some() {
            registry.gauge("serve.snapshot.gen", self.gen as i64);
        }
        registry
    }

    /// Records one executed request into the per-op and per-project
    /// latency histograms.
    fn observe_request(&mut self, op: &'static str, project: &str, started: Instant) {
        let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.registry.observe(&format!("serve.op.{op}.us"), us);
        if !project.is_empty() {
            self.registry.observe(&format!("serve.project.{project}.us"), us);
        }
    }

    /// How many analysis runs a project has executed; the drain loop
    /// diffs this across a request to tell "ran the driver" from
    /// "answered from resident state", so degradation counters tally
    /// per executed run.
    fn run_count(&self, project: &str) -> u64 {
        self.projects.get(project).map_or(0, |p| p.analyses)
    }

    /// Counts the degradations of a project's most recent run into
    /// `serve.degrade.{reason}` counters. Called once per executed run,
    /// so the counters tally degradation *events*, not resident state.
    fn record_degradations(&mut self, project: &str) {
        let mut reasons: Vec<String> = Vec::new();
        if let Some(p) = self.projects.get_mut(project) {
            if let Some(result) = p.last.force() {
                reasons.extend(result.degraded.values().map(|d| d.reason.label().to_owned()));
            }
        }
        for reason in reasons {
            self.registry.count(&format!("serve.degrade.{reason}"), 1);
        }
    }

    /// Whether a `shutdown` request has been executed; once true, new
    /// requests are rejected with a `shutting-down` error and the
    /// transport should exit after flushing.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.draining
    }

    /// Accepts one request line and returns the `(tag, response-line)`
    /// pairs it produced. A deferred request returns nothing (it waits
    /// in the queue); a non-deferred request triggers a full drain, so
    /// the returned responses may answer earlier deferred requests from
    /// other tags too.
    pub fn handle_line(&mut self, tag: T, line: &str) -> Vec<(T, String)> {
        if line.trim().is_empty() {
            return Vec::new();
        }
        let request: Request = match serde_json::from_str(line) {
            Ok(request) => request,
            Err(e) => return vec![(tag, error_line(None, "parse", &e.to_string()))],
        };
        // `ping` is the liveness probe: answered inline, before the
        // draining/backpressure checks, so a health checker can tell a
        // wedged daemon from a busy or draining one.
        if request.op == "ping" {
            let result = serde_json::json!({
                "pong": true,
                "draining": self.draining,
                "projects": self.projects.len(),
                "queued": self.queue.len(),
            });
            return vec![(tag, ok_line(request.id, result, Value::Seq(Vec::new())))];
        }
        // An idempotency-key hit answers from memory: the original
        // executed, only its reply was lost in transit.
        if let Some(key) = &request.idem {
            if let Some((_, reply)) = self.idem_cache.iter().find(|(k, _)| k == key) {
                self.stats.idem_hits += 1;
                return vec![(tag, reply.clone())];
            }
        }
        if self.draining {
            let reply =
                error_line(Some(request.id), "shutting-down", "server is draining; retry later");
            return vec![(tag, reply)];
        }
        let op = match parse_op(&request) {
            Ok(op) => op,
            Err((kind, message)) => {
                return vec![(tag, error_line(Some(request.id), kind, &message))]
            }
        };
        if self.queue.len() >= self.cap {
            self.stats.backpressure += 1;
            let message =
                format!("queue full ({} pending, cap {}); retry later", self.queue.len(), self.cap);
            return vec![(tag, error_line(Some(request.id), "backpressure", &message))];
        }
        // Write-ahead: the accepted line is durable before it executes,
        // so a crash at any later point can re-derive its effects. An
        // append failure rejects the request — accepted must mean
        // recoverable.
        let mut journal_start = None;
        if self.replaying {
            // The entry is already in the journal at this offset; keep
            // it so coverage bookkeeping treats a replayed-but-queued
            // entry exactly like a live one.
            journal_start = self.replay_offset.take();
        } else if op.journaled() {
            if let Some(journal) = self.journal.as_mut() {
                let start = match journal.offset() {
                    Ok(offset) => offset,
                    Err(e) => {
                        let message = format!("journal unavailable: {e}");
                        return vec![(tag, error_line(Some(request.id), "journal", &message))];
                    }
                };
                let torn = self.fault.torn_prefix_len(line, line.len() + 1);
                if let Err(e) = journal.append(line, torn) {
                    let message = format!("write-ahead append failed: {e}");
                    return vec![(tag, error_line(Some(request.id), "journal", &message))];
                }
                journal_start = Some(start);
                // One durable append is one fsync (see Journal::append);
                // counting both keeps the exposition honest if that
                // coupling ever changes.
                self.registry.count("serve.journal.appends", 1);
                self.registry.count("serve.journal.fsyncs", 1);
            }
        }
        self.stats.accepted += 1;
        let defer = request.defer;
        self.queue.push_back(Pending {
            tag,
            id: request.id,
            project: request.project,
            deadline_ms: request.deadline_ms,
            idem: request.idem,
            journal_start,
            op,
        });
        self.registry.observe("serve.queue.depth", self.queue.len() as u64);
        if defer {
            Vec::new()
        } else {
            self.drain()
        }
    }

    /// Executes everything in the queue and returns the responses in
    /// completion order. Transports call this on EOF so accepted
    /// deferred requests are never lost.
    pub fn drain(&mut self) -> Vec<(T, String)> {
        let mut out = Vec::new();
        let mut shutdown: Option<(T, u64)> = None;
        while let Some(head) = self.queue.pop_front() {
            match head.op {
                Op::Shutdown => {
                    // Stop accepting, but keep draining: every request
                    // accepted before (or queued behind) the shutdown
                    // still gets its answer; the shutdown reply goes
                    // out last.
                    self.draining = true;
                    shutdown = Some((head.tag, head.id));
                }
                Op::Patch { .. } => {
                    let mut batch = vec![head];
                    let mut rest = VecDeque::new();
                    // A queued `snapshot` is a coalescing barrier:
                    // patches accepted after it must not execute before
                    // it, or the snapshot would capture effects whose
                    // journal entries lie past its recorded offset and
                    // replay would apply them twice.
                    let mut barrier = false;
                    while let Some(pending) = self.queue.pop_front() {
                        barrier = barrier || matches!(pending.op, Op::Snapshot);
                        let same_project = !barrier
                            && pending.project == batch[0].project
                            && matches!(pending.op, Op::Patch { .. });
                        if same_project {
                            batch.push(pending);
                        } else {
                            rest.push_back(pending);
                        }
                    }
                    self.queue = rest;
                    let keys: Vec<Option<String>> =
                        batch.iter().map(|p| p.idem.clone()).collect();
                    let project = batch[0].project.clone();
                    let runs_before = self.run_count(&project);
                    let started = Instant::now();
                    let replies = self.execute_patch_batch(batch);
                    self.observe_request("patch", &project, started);
                    if self.run_count(&project) != runs_before {
                        self.record_degradations(&project);
                    }
                    for (key, (_, reply)) in keys.iter().zip(&replies) {
                        if let Some(key) = key {
                            self.remember_idem(key, reply);
                        }
                    }
                    out.extend(replies);
                }
                _ => {
                    let key = head.idem.clone();
                    let label = head.op.label();
                    let project = head.project.clone();
                    let runs_before = self.run_count(&project);
                    let started = Instant::now();
                    let reply = self.execute_single(head);
                    self.observe_request(label, &project, started);
                    if self.run_count(&project) != runs_before {
                        self.record_degradations(&project);
                    }
                    if let Some(key) = key {
                        self.remember_idem(&key, &reply.1);
                    }
                    out.push(reply);
                }
            }
        }
        if shutdown.is_some() && !self.replaying {
            // Graceful shutdown parts with a fresh snapshot: the next
            // start restores without replaying a single journal entry.
            if let Some(state_dir) = self.state_dir.clone() {
                let mut span = rid_obs::span(rid_obs::SpanKind::Snapshot, "snapshot:shutdown");
                if let Ok((_, bytes, _, _)) = self.snapshot_now(&state_dir) {
                    span.set_value(bytes);
                }
            }
        }
        if let Some((tag, id)) = shutdown {
            let result = serde_json::json!({ "drained": out.len() });
            out.push((tag, ok_line(id, result, Value::Seq(Vec::new()))));
        }
        self.heartbeat(!out.is_empty());
        out
    }

    /// Refreshes the black box after a drain and, at most once per
    /// second, persists a best-effort `heartbeat` artifact — this is
    /// what guarantees a `kill -9` (no hook runs at all) still leaves a
    /// decodable flight record behind. Skipped during journal replay:
    /// replay re-derives old state and must not overwrite the crash's
    /// own record.
    fn heartbeat(&mut self, executed_work: bool) {
        if self.replaying || !executed_work {
            return;
        }
        let Some(black_box) = self.black_box.clone() else { return };
        black_box.update(self.telemetry_registry());
        let due = self.last_heartbeat.is_none_or(|at| at.elapsed().as_secs() >= 1);
        if due {
            let _ = black_box.persist("heartbeat", "");
            self.last_heartbeat = Some(Instant::now());
        }
    }

    /// Remembers a response under its idempotency key, evicting the
    /// oldest entry past [`IDEM_CACHE_CAP`].
    fn remember_idem(&mut self, key: &str, reply: &str) {
        if self.idem_cache.len() >= IDEM_CACHE_CAP {
            self.idem_cache.pop_front();
        }
        self.idem_cache.push_back((key.to_owned(), reply.to_owned()));
    }

    /// Executes a non-patch, non-shutdown request.
    fn execute_single(&mut self, pending: Pending<T>) -> (T, String) {
        match pending.op {
            Op::Register { .. } => self.execute_register(pending),
            Op::Analyze => self.execute_analyze(pending),
            Op::Explain { .. } => self.execute_explain(pending),
            Op::Diff { .. } => self.execute_diff(pending),
            Op::Stats { .. } => self.execute_stats(pending),
            Op::Snapshot => self.execute_snapshot(pending),
            Op::Patch { .. } | Op::Shutdown => unreachable!("handled by drain"),
        }
    }

    fn execute_register(&mut self, pending: Pending<T>) -> (T, String) {
        let Op::Register { sources, options } = pending.op else { unreachable!() };
        let mut span =
            rid_obs::span(rid_obs::SpanKind::Serve, &format!("register:{}", pending.project));
        span.set_value(1);
        let (analysis_options, apis) = match resolve_options(options.as_ref()) {
            Ok(resolved) => resolved,
            Err(message) => return (pending.tag, error_line(Some(pending.id), "usage", &message)),
        };
        let mut files = BTreeMap::new();
        let mut program = Program::new();
        for (name, text) in &sources {
            let module = match rid_frontend::parse_module(text) {
                Ok(module) => module,
                Err(e) => {
                    let message = format!("{name}: {e}");
                    return (pending.tag, error_line(Some(pending.id), "frontend", &message));
                }
            };
            files.insert(name.clone(), module.name.as_str().to_owned());
            if let Err(e) = program.link(module) {
                return (pending.tag, error_line(Some(pending.id), "link", &e.to_string()));
            }
        }
        let functions = program.function_count();
        let callers = LazyCallers::Ready(CallerIndex::build(&program));
        self.projects.insert(
            pending.project,
            Project {
                program,
                files,
                callers,
                apis,
                options: analysis_options,
                cache: LazyCache::Ready(SummaryCache::new()),
                last: LastRun::None,
                analyses: 0,
                options_raw: options,
            },
        );
        let result = serde_json::json!({ "modules": sources.len(), "functions": functions });
        (pending.tag, ok_line(pending.id, result, Value::Seq(Vec::new())))
    }

    fn execute_analyze(&mut self, pending: Pending<T>) -> (T, String) {
        self.stats.batches += 1;
        let Some(project) = self.projects.get_mut(&pending.project) else {
            return (pending.tag, unknown_project(pending.id, &pending.project));
        };
        let mut span =
            rid_obs::span(rid_obs::SpanKind::Serve, &format!("analyze:{}", pending.project));
        span.set_value(1);
        run_analysis(project, pending.deadline_ms);
        let result = project.last.force().expect("analysis just ran");
        let payload = analysis_payload(result, true);
        (pending.tag, ok_line(pending.id, payload, degraded_value(result)))
    }

    /// One driver run answering every coalesced `patch` in `batch`.
    fn execute_patch_batch(&mut self, batch: Vec<Pending<T>>) -> Vec<(T, String)> {
        self.stats.batches += 1;
        self.stats.coalesced += batch.len() as u64 - 1;
        let project_name = batch[0].project.clone();
        if !self.projects.contains_key(&project_name) {
            return batch
                .into_iter()
                .map(|p| {
                    let reply = unknown_project(p.id, &p.project);
                    (p.tag, reply)
                })
                .collect();
        }

        // Union of the batch's edits; later requests win per module.
        // The most conservative deadline in the batch governs the run:
        // no coalesced request waits longer than it asked to.
        let mut merged: BTreeMap<String, String> = BTreeMap::new();
        for pending in &batch {
            if let Op::Patch { sources } = &pending.op {
                for (name, text) in sources {
                    merged.insert(name.clone(), text.clone());
                }
            }
        }
        let deadline_ms = batch.iter().filter_map(|p| p.deadline_ms).min();

        let mut span =
            rid_obs::span(rid_obs::SpanKind::Serve, &format!("patch:{project_name}"));
        span.set_value(batch.len() as u64);

        // Parse replacements before touching resident state: a bad
        // module leaves the project exactly as it was.
        let mut replacements: Vec<(String, Module)> = Vec::new();
        for (name, text) in &merged {
            match rid_frontend::parse_module(text) {
                Ok(module) => replacements.push((name.clone(), module)),
                Err(e) => {
                    let message = format!("{name}: {e}");
                    return batch
                        .into_iter()
                        .map(|p| {
                            let reply = error_line(Some(p.id), "frontend", &message);
                            (p.tag, reply)
                        })
                        .collect();
                }
            }
        }

        let project = self.projects.get_mut(&project_name).expect("checked above");

        // A patched file must keep its declared module name — a rename
        // would orphan the old module inside the resident program.
        for (file, module) in &replacements {
            if let Some(declared) = project.files.get(file) {
                if declared != &module.name {
                    let message = format!(
                        "{file}: patch renames module `{declared}` to `{}`; \
                         re-register the project instead",
                        module.name
                    );
                    return batch
                        .into_iter()
                        .map(|p| {
                            let reply = error_line(Some(p.id), "usage", &message);
                            (p.tag, reply)
                        })
                        .collect();
                }
            }
        }

        // The changed-function set: a per-function content-hash diff of
        // every replaced module against its resident version. Functions
        // whose lowered IR is identical (whitespace/comment edits) are
        // not changed; deleted functions are.
        let mut changed: BTreeSet<String> = BTreeSet::new();
        for (_file, module) in &replacements {
            let old = project.program.modules().iter().find(|m| m.name == module.name);
            for func in module.functions() {
                let before = old.and_then(|m| m.function(func.name())).map(content_hash);
                if before != Some(content_hash(func)) {
                    changed.insert(func.name().to_owned());
                }
            }
            if let Some(old) = old {
                for func in old.functions() {
                    if module.function(func.name()).is_none() {
                        changed.insert(func.name().to_owned());
                    }
                }
            }
        }

        // Resident caller-index maintenance, part one: retire the old
        // winners' call edges before they are swapped out. When an edit
        // does anything subtler than replacing bodies — changes the
        // module's defined-name/weakness signature, or touches a
        // function shadowed by (or shadowing) another module — winners
        // of the weak-symbol resolution can move between modules, so we
        // mark the index dirty and rebuild it outright after the swap.
        let mut dirty = false;
        for (_file, module) in &replacements {
            match project.program.modules().iter().find(|m| m.name == module.name) {
                Some(old) if same_signature(old, module) => {
                    for func in old.functions() {
                        match project.program.function(func.name()) {
                            Some(winner) if std::ptr::eq(winner, func) => {
                                project.callers.force().remove_function(func);
                            }
                            _ => dirty = true,
                        }
                    }
                }
                _ => dirty = true,
            }
        }

        // Swap the modules in place, remembering enough to roll back if
        // a later replacement fails to link: a failed batch leaves the
        // project exactly as it was.
        enum Undo {
            Restore(Module),
            Remove { file: String, module: String },
        }
        let mut undo: Vec<Undo> = Vec::new();
        let mut link_error = None;
        for (file, module) in &replacements {
            let old = project
                .program
                .modules()
                .iter()
                .find(|m| m.name == module.name)
                .cloned();
            match project.program.replace_module(module.clone()) {
                Ok(()) => {
                    undo.push(match old {
                        Some(previous) => Undo::Restore(previous),
                        None => {
                            Undo::Remove { file: file.clone(), module: module.name.as_str().to_owned() }
                        }
                    });
                    project.files.insert(file.clone(), module.name.as_str().to_owned());
                }
                Err(e) => {
                    link_error = Some(e.to_string());
                    break;
                }
            }
        }
        if let Some(message) = link_error {
            for step in undo.into_iter().rev() {
                match step {
                    Undo::Restore(previous) => {
                        project
                            .program
                            .replace_module(previous)
                            .expect("restoring the previous module relinks");
                    }
                    Undo::Remove { file, module } => {
                        project.program.remove_module(&module);
                        project.files.remove(&file);
                    }
                }
            }
            // The pre-swap removals above already mutated the index;
            // rebuild it from the restored program (error path, so the
            // O(program) cost is acceptable).
            project.callers = LazyCallers::Ready(CallerIndex::build(&project.program));
            return batch
                .into_iter()
                .map(|p| {
                    let reply = error_line(Some(p.id), "link", &message);
                    (p.tag, reply)
                })
                .collect();
        }

        // Caller-index maintenance, part two: record the new winners'
        // call edges, or rebuild from scratch if the edit moved winners.
        if !dirty {
            for (_file, module) in &replacements {
                let resident = project
                    .program
                    .modules()
                    .iter()
                    .find(|m| m.name == module.name)
                    .expect("module was just swapped in");
                for func in resident.functions() {
                    match project.program.function(func.name()) {
                        Some(winner) if std::ptr::eq(winner, func) => {
                            project.callers.force().add_function(func);
                        }
                        _ => dirty = true,
                    }
                }
            }
        }
        if dirty {
            project.callers = LazyCallers::Ready(CallerIndex::build(&project.program));
        }

        let changed_refs: Vec<&str> = changed.iter().map(String::as_str).collect();
        let plan = project.callers.force().plan(&project.program, &changed_refs);
        let mut affected: Vec<String> = plan.affected.iter().cloned().collect();
        affected.sort_unstable();

        run_patch(project, deadline_ms, &changed_refs, &plan);
        let result = project.last.force().expect("patch run just completed");
        let mut payload = analysis_payload(result, false);
        push_field(&mut payload, "batched", serde_json::json!(batch.len()));
        push_field(
            &mut payload,
            "changed",
            serde_json::json!(changed.iter().cloned().collect::<Vec<String>>()),
        );
        push_field(&mut payload, "affected", serde_json::json!(affected));
        push_field(
            &mut payload,
            "reexecuted",
            serde_json::json!(result.stats.functions_analyzed),
        );
        let degraded = degraded_value(result);
        batch
            .into_iter()
            .map(|p| {
                let reply = ok_line(p.id, payload.clone(), degraded.clone());
                (p.tag, reply)
            })
            .collect()
    }

    fn execute_explain(&mut self, pending: Pending<T>) -> (T, String) {
        let Op::Explain { function } = &pending.op else { unreachable!() };
        let function = function.clone();
        let Some(project) = self.projects.get_mut(&pending.project) else {
            return (pending.tag, unknown_project(pending.id, &pending.project));
        };
        let mut span =
            rid_obs::span(rid_obs::SpanKind::Serve, &format!("explain:{}", pending.project));
        span.set_value(1);
        if project.last.is_none() {
            // First touch of a freshly registered project: run once so
            // there is something to explain (warm thereafter).
            run_analysis(project, pending.deadline_ms);
        }
        let last = project.last.force().expect("analysis just ran");
        let reports: Vec<_> = match &function {
            Some(name) => {
                last.reports.iter().filter(|r| &r.function == name).cloned().collect()
            }
            None => last.reports.clone(),
        };
        let text = rid_core::render_explanations(&reports, Some(&project.program));
        let result = serde_json::json!({ "report_count": reports.len(), "text": text });
        (pending.tag, ok_line(pending.id, result, degraded_value(last)))
    }

    /// `diff`: classify the project's resident reports against a
    /// client-supplied baseline hash list (see `REPORTS.md`). Like
    /// `explain`, a freshly registered project is analyzed once so
    /// there is something to diff; a warm project answers from its
    /// resident result without re-running. Suppression (`.ridignore`)
    /// is a client-side concern — the daemon reports the raw
    /// classification and the CLI filters it.
    fn execute_diff(&mut self, pending: Pending<T>) -> (T, String) {
        let Op::Diff { baseline } = &pending.op else { unreachable!() };
        let baseline = baseline.clone();
        let Some(project) = self.projects.get_mut(&pending.project) else {
            return (pending.tag, unknown_project(pending.id, &pending.project));
        };
        let mut span =
            rid_obs::span(rid_obs::SpanKind::Serve, &format!("diff:{}", pending.project));
        span.set_value(1);
        if project.last.is_none() {
            run_analysis(project, pending.deadline_ms);
        }
        let last = project.last.force().expect("analysis just ran");
        let diff = rid_core::classify_reports(&baseline, &last.reports);
        let entry = |(hash, idx): &(String, usize)| {
            serde_json::json!({
                "hash": hash,
                "function": last.reports[*idx].function,
                "refcount": last.reports[*idx].refcount.to_string(),
            })
        };
        let result = serde_json::json!({
            "new": diff.new.iter().map(entry).collect::<Vec<_>>(),
            "unchanged": diff.unchanged.iter().map(entry).collect::<Vec<_>>(),
            "resolved": diff.resolved,
            "new_count": diff.new.len(),
            "report_count": last.reports.len(),
        });
        (pending.tag, ok_line(pending.id, result, degraded_value(last)))
    }

    fn execute_stats(&mut self, pending: Pending<T>) -> (T, String) {
        let Op::Stats { format } = pending.op else { unreachable!() };
        let mut span = rid_obs::span(rid_obs::SpanKind::Serve, "stats");
        span.set_value(1);
        let projects = Value::Map(
            self.projects
                .iter_mut()
                .map(|(name, project)| {
                    // Counting entries hydrates lazily restored
                    // sections; `stats` promises exact numbers.
                    let cache_entries = project.cache.force().len();
                    let reports = project.last.force().map_or(0, |r| r.reports.len());
                    let value = serde_json::json!({
                        "modules": project.files.len(),
                        "functions": project.program.function_count(),
                        "analyses": project.analyses,
                        "cache_entries": cache_entries,
                        "reports": reports,
                    });
                    (name.clone(), value)
                })
                .collect(),
        );
        let mut server = serde_json::json!({
            "accepted": self.stats.accepted,
            "batches": self.stats.batches,
            "coalesced": self.stats.coalesced,
            "backpressure": self.stats.backpressure,
            "idem_hits": self.stats.idem_hits,
            "queue_cap": self.cap,
            "draining": self.draining,
        });
        if self.state_dir.is_some() {
            push_field(&mut server, "snapshot_gen", serde_json::json!(self.gen));
            if let Some((restored, replayed)) = self.restore_info {
                push_field(&mut server, "restored_projects", serde_json::json!(restored));
                push_field(&mut server, "replayed_entries", serde_json::json!(replayed));
            }
        }
        let mut result = serde_json::json!({ "server": server, "projects": projects });
        let telemetry = self.telemetry_registry();
        match format {
            StatsFormat::Json => {
                // Round-trip the registry through its own JSON encoding
                // so the reply embeds it structurally, not as a string.
                let parsed = serde_json::from_str::<Value>(&telemetry.to_json())
                    .unwrap_or(Value::Null);
                push_field(&mut result, "telemetry", parsed);
            }
            StatsFormat::Prometheus => {
                push_field(&mut result, "prometheus", Value::Str(telemetry.to_prometheus()));
            }
        }
        (pending.tag, ok_line(pending.id, result, Value::Seq(Vec::new())))
    }

    fn execute_snapshot(&mut self, pending: Pending<T>) -> (T, String) {
        if self.replaying {
            // A replayed snapshot entry is a drain boundary, not a disk
            // write: the on-disk generation it produced (or failed to)
            // is already settled history.
            let result = serde_json::json!({ "skipped": "journal replay" });
            return (pending.tag, ok_line(pending.id, result, Value::Seq(Vec::new())));
        }
        let Some(state_dir) = self.state_dir.clone() else {
            let reply = error_line(
                Some(pending.id),
                "usage",
                "op `snapshot` requires the daemon to run with --state-dir",
            );
            return (pending.tag, reply);
        };
        let mut span = rid_obs::span(rid_obs::SpanKind::Snapshot, "snapshot");
        match self.snapshot_now(&state_dir) {
            Ok((gen, bytes, covered, truncated)) => {
                span.set_value(bytes);
                let result = serde_json::json!({
                    "gen": gen,
                    "projects": self.projects.len(),
                    "bytes": bytes,
                    "journal_offset": if truncated { 0 } else { covered },
                    "journal_truncated": truncated,
                });
                (pending.tag, ok_line(pending.id, result, Value::Seq(Vec::new())))
            }
            Err(e) => {
                let message = format!("snapshot failed (previous generation intact): {e}");
                (pending.tag, error_line(Some(pending.id), "snapshot", &message))
            }
        }
    }

    /// Writes one snapshot generation and commits it. The order is the
    /// crash-safety argument:
    ///
    /// 1. every project's `.snap` for generation `gen+1` (staged +
    ///    renamed; a failure leaves the committed generation whole),
    /// 2. the manifest naming generation `gen+1` with the journal
    ///    offset it covers — the atomic commit point,
    /// 3. if no queued request still depends on the journal, truncate
    ///    it and re-commit the manifest with offset 0.
    ///
    /// A crash between any two steps restores consistently: before 2
    /// the old manifest + old snaps + full journal win; between 2 and 3
    /// the new snaps + journal suffix win; mid-3 the manifest's offset
    /// is at or past EOF, so replay is empty — exactly right, because
    /// the snapshot already contains everything.
    ///
    /// Returns `(generation, bytes written, journal offset covered,
    /// journal truncated)`.
    fn snapshot_now(&mut self, state_dir: &Path) -> io::Result<(u64, u64, u64, bool)> {
        let next = self.gen + 1;
        let mut total = 0u64;
        let mut snap_files: BTreeMap<String, String> = BTreeMap::new();
        for (name, project) in &self.projects {
            let snap = ProjectSnapshot {
                project: name.clone(),
                files: project.files.clone(),
                options: project.options_raw.clone(),
                analyses: project.analyses,
                modules: project.program.modules().to_vec(),
                callers: project.callers.encoded(),
                state: project.last.encoded()?,
                cache: project.cache.encoded()?,
            };
            let file = snap_file_name(name, next);
            let inject = self.fault.should_fail_fsync(name);
            total += write_snapshot(&state_dir.join(&file), &snap, inject)?;
            snap_files.insert(name.clone(), file);
        }
        let journal_len = match self.journal.as_ref() {
            Some(journal) => journal.offset()?,
            None => 0,
        };
        // The generation covers every journal entry already executed:
        // everything before the earliest still-queued entry (queued
        // requests were journaled at accept but have not run yet).
        let covered = self
            .queue
            .iter()
            .filter_map(|p| p.journal_start)
            .min()
            .unwrap_or(journal_len);
        let mut manifest = Manifest {
            schema: SNAP_SCHEMA.to_owned(),
            gen: next,
            journal_offset: covered,
            projects: snap_files.clone(),
        };
        manifest.store(state_dir)?;
        self.gen = next;
        let mut truncated = false;
        let journal_idle = self.queue.iter().all(|p| p.journal_start.is_none());
        if journal_idle && covered == journal_len {
            if let Some(journal) = self.journal.as_mut() {
                journal.truncate()?;
                manifest.journal_offset = 0;
                manifest.store(state_dir)?;
                truncated = true;
            }
        }
        // Retired generations' snap files are garbage now that the
        // manifest no longer names them; collection is best-effort.
        if let Ok(entries) = std::fs::read_dir(state_dir) {
            let live: BTreeSet<&String> = snap_files.values().collect();
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.ends_with(".snap") && !live.contains(&name) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok((next, total, covered, truncated))
    }
}

impl<T: Default> Engine<T> {
    /// The crash-safe constructor: restores every project named by the
    /// committed snapshot manifest in `config.state_dir`, replays the
    /// journal suffix the manifest does not cover, and opens the
    /// journal for write-ahead appends. Without a `state_dir` this is
    /// [`Engine::new`].
    ///
    /// The `T: Default` bound exists because replayed requests need a
    /// tag; their responses are discarded, so any tag does.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the state directory cannot be created
    /// or the manifest, a named snapshot, or the journal cannot be
    /// read — corrupt durable state stops the daemon loudly instead of
    /// silently cold-starting over it. (A *torn journal tail* is not an
    /// error: it is trimmed, per the write-ahead contract.)
    pub fn recover(config: ServerConfig) -> io::Result<Engine<T>> {
        let Some(state_dir) = config.state_dir.clone() else {
            return Ok(Engine::new(config));
        };
        std::fs::create_dir_all(&state_dir)?;
        let mut engine: Engine<T> = Engine::new(config);
        engine.state_dir = Some(state_dir.clone());
        engine.black_box = Some(Arc::new(BlackBox::new(&state_dir)));

        let invalid = |message: String| io::Error::new(io::ErrorKind::InvalidData, message);
        let manifest = Manifest::load(&state_dir)?;
        let mut restored = 0usize;
        let mut offset = 0u64;
        if let Some(manifest) = &manifest {
            engine.gen = manifest.gen;
            offset = manifest.journal_offset;
            for (name, file) in &manifest.projects {
                let path = state_dir.join(file);
                let restore_started = Instant::now();
                let mut span =
                    rid_obs::span(rid_obs::SpanKind::Restore, &format!("restore:{name}"));
                span.set_value(std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0));
                let snap = read_snapshot(&path)?;
                let (options, apis) = resolve_options(snap.options.as_ref()).map_err(invalid)?;
                let mut program = Program::new();
                program.reserve(
                    snap.modules.len(),
                    snap.modules.iter().map(|m| m.functions().len()).sum(),
                );
                for module in snap.modules {
                    program.link(module).map_err(|e| invalid(e.to_string()))?;
                }
                // The reverse call index, summary cache, and last
                // result stay encoded until a request consults them —
                // startup is program residency, not a full rehydration.
                engine.projects.insert(
                    name.clone(),
                    Project {
                        program,
                        files: snap.files,
                        callers: LazyCallers::Raw(snap.callers),
                        apis,
                        options,
                        cache: LazyCache::Raw(snap.cache),
                        last: snap.state.map_or(LastRun::None, LastRun::Raw),
                        analyses: snap.analyses,
                        options_raw: snap.options,
                    },
                );
                restored += 1;
                let us = u64::try_from(restore_started.elapsed().as_micros()).unwrap_or(u64::MAX);
                engine.registry.observe("serve.op.restore.us", us);
            }
        }

        let journal_path = state_dir.join(journal::JOURNAL_FILE);
        let journal_len = std::fs::metadata(&journal_path).map(|m| m.len()).unwrap_or(0);
        if journal_len < offset {
            // The snapshot truncated the journal but crashed before
            // recording offset 0; finish its commit now.
            if let Some(mut manifest) = manifest {
                manifest.journal_offset = 0;
                manifest.store(&state_dir)?;
            }
            offset = 0;
        }
        let entries = journal::replayable_at(&journal_path, offset)?;
        // Trim the torn tail (if any) so new appends extend a valid
        // prefix instead of hiding behind garbage bytes forever.
        let valid_end = offset + entries.iter().map(|e| e.len() as u64 + 1).sum::<u64>();
        if journal_len > valid_end {
            let file = std::fs::OpenOptions::new().write(true).open(&journal_path)?;
            file.set_len(valid_end)?;
            file.sync_all()?;
        }
        engine.journal = Some(Journal::open(&state_dir)?);

        let mut span = rid_obs::span(rid_obs::SpanKind::JournalReplay, "journal-replay");
        span.set_value(entries.len() as u64);
        let replay_started = Instant::now();
        engine.replaying = true;
        let mut cursor = offset;
        for line in &entries {
            engine.replay_offset = Some(cursor);
            cursor += line.len() as u64 + 1;
            let _ = engine.handle_line(T::default(), line);
        }
        engine.replay_offset = None;
        if !entries.is_empty() {
            let us = u64::try_from(replay_started.elapsed().as_micros()).unwrap_or(u64::MAX);
            engine.registry.observe("serve.op.journal_replay.us", us);
        }
        // Deliberately no drain here: a trailing deferred entry stays
        // queued, exactly as it was at crash time, so the next live
        // drain trigger coalesces it the same way the original run
        // would have. Transports still drain at EOF.
        engine.replaying = false;
        engine.restore_info = Some((restored, entries.len()));
        Ok(engine)
    }
}

/// Validates a request into an executable [`Op`].
fn parse_op(request: &Request) -> Result<Op, (&'static str, String)> {
    let needs_project =
        matches!(request.op.as_str(), "register" | "analyze" | "patch" | "explain" | "diff");
    if needs_project && request.project.is_empty() {
        return Err(("usage", format!("op `{}` requires a `project`", request.op)));
    }
    match request.op.as_str() {
        "register" => Ok(Op::Register {
            sources: request.sources.clone(),
            options: request.options.clone(),
        }),
        "analyze" => Ok(Op::Analyze),
        "patch" => {
            if request.sources.is_empty() {
                return Err(("usage", "op `patch` requires non-empty `sources`".to_owned()));
            }
            Ok(Op::Patch { sources: request.sources.clone() })
        }
        "explain" => Ok(Op::Explain { function: request.function.clone() }),
        "diff" => Ok(Op::Diff { baseline: request.baseline.clone().unwrap_or_default() }),
        "stats" => match request.format.as_deref() {
            None | Some("json") => Ok(Op::Stats { format: StatsFormat::Json }),
            Some("prometheus") => Ok(Op::Stats { format: StatsFormat::Prometheus }),
            Some(other) => Err((
                "usage",
                format!("unknown stats format `{other}` (expected `json` or `prometheus`)"),
            )),
        },
        "snapshot" => Ok(Op::Snapshot),
        "shutdown" => Ok(Op::Shutdown),
        other => Err(("usage", format!("unknown op `{other}`"))),
    }
}

/// Applies registration options over the driver defaults.
fn resolve_options(
    options: Option<&ProjectOptions>,
) -> Result<(AnalysisOptions, SummaryDb), String> {
    let mut resolved = AnalysisOptions::default();
    let mut apis = rid_core::apis::linux_dpm_apis();
    if let Some(options) = options {
        if let Some(threads) = options.threads {
            resolved.threads = threads.max(1);
        }
        if let Some(selective) = options.selective {
            resolved.selective = selective;
        }
        if let Some(callbacks) = options.callbacks {
            resolved.check_callbacks = callbacks;
        }
        if let Some(ms) = options.func_deadline_ms {
            resolved.budget.func_deadline = Some(Duration::from_millis(ms));
        }
        if let Some(fuel) = options.fuel {
            resolved.budget.solver_fuel = Some(fuel);
        }
        if let Some(refute) = options.refute {
            resolved.refute = refute;
        }
        match options.apis.as_deref() {
            None | Some("dpm") => {}
            Some("python") => apis = rid_core::apis::python_c_apis(),
            Some("none") => apis = SummaryDb::new(),
            Some(other) => return Err(format!("unknown apis value `{other}`")),
        }
    }
    Ok((resolved, apis))
}

/// The project's configured options with the per-request deadline (if
/// any) mapped onto the budget's global deadline.
fn options_for(project: &Project, deadline_ms: Option<u64>) -> AnalysisOptions {
    let mut options = project.options;
    if let Some(ms) = deadline_ms {
        options.budget.global_deadline = Some(Duration::from_millis(ms));
    }
    options
}

/// One full driver run over the resident program and cache. The result
/// becomes the project's `last` state — responses borrow it from there;
/// it is never cloned per request.
fn run_analysis(project: &mut Project, deadline_ms: Option<u64>) {
    let options = options_for(project, deadline_ms);
    let result = rid_core::analyze_program_cached(
        &project.program,
        &project.apis,
        &options,
        &FaultPlan::none(),
        Some(project.cache.force()),
    );
    project.analyses += 1;
    project.last = LastRun::Ready(result);
}

/// Whether two modules define the same (name, weakness) signature with
/// no internal duplicates — the precondition for updating the resident
/// caller index in place instead of rebuilding it.
fn same_signature(a: &Module, b: &Module) -> bool {
    fn signature(m: &Module) -> Option<std::collections::HashMap<&str, bool>> {
        let sig: std::collections::HashMap<&str, bool> =
            m.functions().iter().map(|f| (f.name(), f.weak)).collect();
        (sig.len() == m.functions().len()).then_some(sig)
    }
    matches!((signature(a), signature(b)), (Some(a), Some(b)) if a == b)
}

/// One incremental run for a patch: with a previous result resident,
/// [`reanalyze_with_plan`](rid_core::incremental::reanalyze_with_plan)
/// re-executes only the affected cone and reuses the previous result's
/// summaries (and classification) for everything else — this is what
/// makes warm `patch` latency a fraction of a cold analyze. A patch
/// arriving before the project's first `analyze` falls back to a full
/// cached run.
fn run_patch(
    project: &mut Project,
    deadline_ms: Option<u64>,
    changed: &[&str],
    plan: &ReanalyzePlan,
) {
    let Some(previous) = project.last.take_result() else {
        run_analysis(project, deadline_ms);
        return;
    };
    let options = options_for(project, deadline_ms);
    let result = rid_core::incremental::reanalyze_with_plan(
        &project.program,
        &project.apis,
        previous,
        changed,
        &options,
        plan,
    );
    project.analyses += 1;
    project.last = LastRun::Ready(result);
}

/// The op-independent analysis payload shared by `analyze` and `patch`.
/// Cache hit/miss counters only describe full cached runs, so `patch`
/// (which reuses the previous result's summaries directly instead of
/// probing the cache) omits them.
fn analysis_payload(result: &AnalysisResult, include_cache: bool) -> Value {
    let mut payload = serde_json::json!({
        "report_count": result.reports.len(),
        "reports": compact_reports(result),
        "functions_total": result.stats.functions_total,
        "functions_analyzed": result.stats.functions_analyzed,
    });
    if include_cache {
        let cache = serde_json::json!({
            "hits": result.stats.cache_hits,
            "misses": result.stats.cache_misses,
            "invalidated": result.stats.cache_invalidated,
        });
        push_field(&mut payload, "cache", cache);
    }
    payload
}

/// Compact report list: enough to triage without the full provenance
/// payload (`explain` renders that on demand).
fn compact_reports(result: &AnalysisResult) -> Value {
    Value::Seq(
        result
            .reports
            .iter()
            .map(|report| {
                serde_json::json!({
                    "function": report.function,
                    "refcount": report.refcount.to_string(),
                    "change_a": report.change_a,
                    "change_b": report.change_b,
                    "path_a": report.path_a,
                    "path_b": report.path_b,
                    "callback": report.callback,
                })
            })
            .collect(),
    )
}

/// The envelope's `degraded` array: every function the run degraded,
/// with the reason and its analysis cost — degradation is surfaced, not
/// swallowed.
fn degraded_value(result: &AnalysisResult) -> Value {
    Value::Seq(
        result
            .degraded
            .iter()
            .map(|(name, degradation)| {
                serde_json::json!({
                    "function": name,
                    "reason": degradation.reason.label(),
                    "wall_ms": degradation.cost.wall_ms,
                })
            })
            .collect(),
    )
}

fn unknown_project(id: u64, project: &str) -> String {
    error_line(Some(id), "unknown-project", &format!("no project `{project}` registered"))
}

/// Appends a field to an object payload.
fn push_field(payload: &mut Value, key: &str, value: Value) {
    if let Value::Map(pairs) = payload {
        pairs.push((key.to_owned(), value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 8 shape: the error path leaks the reference and its
    /// return value overlaps the success path's, so the pair is
    /// inconsistent.
    const BUGGY: &str = r#"module m;
        fn probe(dev) {
            let ret = pm_runtime_get_sync(dev);
            if (ret < 0) { return ret; }
            ret = helper_update(dev);
            pm_runtime_put(dev);
            return ret;
        }"#;

    fn line(value: Value) -> String {
        serde_json::to_string(&value).unwrap()
    }

    fn parse(response: &str) -> Value {
        serde_json::from_str(response).unwrap()
    }

    fn register_line(id: u64) -> String {
        line(serde_json::json!({
            "id": id, "op": "register", "project": "p",
            "sources": serde_json::json!({ "m.ril": BUGGY }),
        }))
    }

    #[test]
    fn register_then_analyze_reports_the_bug() {
        let mut engine: Engine<()> = Engine::new(ServerConfig::default());
        let replies = engine.handle_line((), &register_line(1));
        assert_eq!(replies.len(), 1);
        let reply = parse(&replies[0].1);
        assert_eq!(reply["ok"].as_bool(), Some(true));
        assert_eq!(reply["result"]["functions"].as_i64(), Some(1));

        let replies = engine
            .handle_line((), &line(serde_json::json!({ "id": 2, "op": "analyze", "project": "p" })));
        let reply = parse(&replies[0].1);
        assert_eq!(reply["id"].as_i64(), Some(2));
        assert_eq!(reply["result"]["report_count"].as_i64(), Some(1));
        assert_eq!(
            reply["result"]["reports"][0]["function"].as_str(),
            Some("probe")
        );
    }

    #[test]
    fn unknown_op_and_unknown_project_are_usage_errors() {
        let mut engine: Engine<()> = Engine::new(ServerConfig::default());
        let replies = engine.handle_line((), r#"{"id":1,"op":"frobnicate"}"#);
        assert_eq!(parse(&replies[0].1)["error"]["kind"].as_str(), Some("usage"));
        let replies =
            engine.handle_line((), r#"{"id":2,"op":"analyze","project":"nope"}"#);
        assert_eq!(
            parse(&replies[0].1)["error"]["kind"].as_str(),
            Some("unknown-project")
        );
        let replies = engine.handle_line((), "{not json");
        let reply = parse(&replies[0].1);
        assert_eq!(reply["error"]["kind"].as_str(), Some("parse"));
        assert!(reply["id"].is_null());
    }

    #[test]
    fn full_queue_answers_backpressure() {
        let mut engine: Engine<()> =
            Engine::new(ServerConfig { queue_cap: 1, ..ServerConfig::default() });
        let mut deferred = serde_json::from_str::<Request>(
            r#"{"id":1,"op":"stats"}"#,
        )
        .unwrap();
        deferred.defer = true;
        assert!(engine.handle_line((), &deferred.to_line()).is_empty());
        deferred.id = 2;
        let replies = engine.handle_line((), &deferred.to_line());
        let reply = parse(&replies[0].1);
        assert_eq!(reply["error"]["kind"].as_str(), Some("backpressure"));
        assert_eq!(reply["id"].as_i64(), Some(2));
        // The queued request is still answered by the next drain.
        let drained = engine.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(parse(&drained[0].1)["id"].as_i64(), Some(1));
    }

    #[test]
    fn deferred_patches_coalesce_into_one_run() {
        let mut engine: Engine<()> = Engine::new(ServerConfig::default());
        engine.handle_line((), &register_line(1));
        engine.handle_line((), &line(serde_json::json!({ "id": 2, "op": "analyze", "project": "p" })));

        let fixed = BUGGY.replace("{ return ret; }", "{ pm_runtime_put(dev); return ret; }");
        let patch1 = line(serde_json::json!({
            "id": 3, "op": "patch", "project": "p", "defer": true,
            "sources": serde_json::json!({ "m.ril": fixed }),
        }));
        let patch2 = line(serde_json::json!({
            "id": 4, "op": "patch", "project": "p", "defer": true,
            "sources": serde_json::json!({ "m.ril": BUGGY }),
        }));
        assert!(engine.handle_line((), &patch1).is_empty());
        assert!(engine.handle_line((), &patch2).is_empty());
        let replies =
            engine.handle_line((), &line(serde_json::json!({ "id": 5, "op": "stats" })));
        assert_eq!(replies.len(), 3, "two patch replies + stats");
        let first = parse(&replies[0].1);
        let second = parse(&replies[1].1);
        assert_eq!(first["result"]["batched"].as_i64(), Some(2));
        assert_eq!(second["result"]["batched"].as_i64(), Some(2));
        // Later patch wins: the module is back to the buggy version.
        assert_eq!(first["result"]["report_count"].as_i64(), Some(1));
        let stats = parse(&replies[2].1);
        assert_eq!(stats["result"]["server"]["coalesced"].as_i64(), Some(1));
    }

    #[test]
    fn stats_embeds_telemetry_histograms_with_tail_quantiles() {
        let mut engine: Engine<()> = Engine::new(ServerConfig::default());
        engine.handle_line((), &register_line(1));
        engine
            .handle_line((), &line(serde_json::json!({ "id": 2, "op": "analyze", "project": "p" })));
        let replies =
            engine.handle_line((), &line(serde_json::json!({ "id": 3, "op": "stats" })));
        let reply = parse(&replies[0].1);
        let telemetry = &reply["result"]["telemetry"];
        assert_eq!(telemetry["counters"]["serve.accepted"].as_i64(), Some(3));
        assert_eq!(telemetry["gauges"]["serve.projects"].as_i64(), Some(1));
        for op in ["register", "analyze"] {
            let h = &telemetry["histograms"][format!("serve.op.{op}.us").as_str()];
            assert_eq!(h["count"].as_i64(), Some(1), "one timed `{op}` request");
            for q in ["p50", "p99", "p999"] {
                assert!(!h[q].is_null(), "`{op}` histogram carries {q}");
            }
        }
        let per_project = &telemetry["histograms"]["serve.project.p.us"];
        assert_eq!(per_project["count"].as_i64(), Some(2), "register + analyze");
    }

    #[test]
    fn stats_prometheus_format_returns_a_text_exposition() {
        let mut engine: Engine<()> = Engine::new(ServerConfig::default());
        engine.handle_line((), &register_line(1));
        let replies = engine.handle_line(
            (),
            &line(serde_json::json!({ "id": 2, "op": "stats", "format": "prometheus" })),
        );
        let reply = parse(&replies[0].1);
        assert!(reply["result"]["telemetry"].is_null(), "prometheus replaces the JSON embed");
        let text = reply["result"]["prometheus"].as_str().expect("exposition string");
        assert!(text.contains("# TYPE rid_serve_accepted counter"));
        assert!(text.contains("# TYPE rid_serve_op_register_us summary"));
        assert!(text.contains("rid_serve_op_register_us{quantile=\"0.999\"}"));
        assert!(text.contains("rid_serve_op_register_us_count 1"));

        let replies = engine.handle_line(
            (),
            &line(serde_json::json!({ "id": 3, "op": "stats", "format": "xml" })),
        );
        assert_eq!(parse(&replies[0].1)["error"]["kind"].as_str(), Some("usage"));
    }

    #[test]
    fn shutdown_drains_accepted_requests_first() {
        let mut engine: Engine<()> = Engine::new(ServerConfig::default());
        engine.handle_line((), &register_line(1));
        let deferred = line(serde_json::json!({
            "id": 2, "op": "analyze", "project": "p", "defer": true,
        }));
        assert!(engine.handle_line((), &deferred).is_empty());
        let replies = engine.handle_line((), r#"{"id":3,"op":"shutdown"}"#);
        assert_eq!(replies.len(), 2);
        assert_eq!(parse(&replies[0].1)["id"].as_i64(), Some(2), "queued work answered");
        let bye = parse(&replies[1].1);
        assert_eq!(bye["id"].as_i64(), Some(3));
        assert_eq!(bye["result"]["drained"].as_i64(), Some(1));
        assert!(engine.is_shutting_down());
        let rejected = engine.handle_line((), r#"{"id":4,"op":"stats"}"#);
        assert_eq!(
            parse(&rejected[0].1)["error"]["kind"].as_str(),
            Some("shutting-down")
        );
    }

    fn tempdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rid-engine-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn durable_config(dir: &Path) -> ServerConfig {
        ServerConfig { state_dir: Some(dir.to_path_buf()), ..ServerConfig::default() }
    }

    #[test]
    fn ping_answers_inline_even_while_draining() {
        let mut engine: Engine<()> = Engine::new(ServerConfig::default());
        engine.handle_line((), r#"{"id":1,"op":"shutdown"}"#);
        assert!(engine.is_shutting_down());
        let replies = engine.handle_line((), r#"{"id":2,"op":"ping"}"#);
        let reply = parse(&replies[0].1);
        assert_eq!(reply["ok"].as_bool(), Some(true));
        assert_eq!(reply["result"]["pong"].as_bool(), Some(true));
        assert_eq!(reply["result"]["draining"].as_bool(), Some(true));
    }

    #[test]
    fn idempotency_key_answers_retries_from_memory() {
        let mut engine: Engine<()> = Engine::new(ServerConfig::default());
        engine.handle_line((), &register_line(1));
        let analyze = r#"{"id":2,"op":"analyze","project":"p","idem":"k-1"}"#;
        let first = engine.handle_line((), analyze);
        let retry = engine.handle_line((), analyze);
        assert_eq!(first[0].1, retry[0].1, "retry must be the remembered reply");
        let stats =
            engine.handle_line((), &line(serde_json::json!({ "id": 3, "op": "stats" })));
        let stats = parse(&stats[0].1);
        assert_eq!(
            stats["result"]["projects"]["p"]["analyses"].as_i64(),
            Some(1),
            "the retry must not have re-executed"
        );
        assert_eq!(stats["result"]["server"]["idem_hits"].as_i64(), Some(1));
    }

    #[test]
    fn snapshot_then_recover_restores_projects_without_reregistration() {
        let dir = tempdir("snap-recover");
        {
            let mut engine: Engine<()> = Engine::recover(durable_config(&dir)).unwrap();
            engine.handle_line((), &register_line(1));
            engine.handle_line(
                (),
                &line(serde_json::json!({ "id": 2, "op": "analyze", "project": "p" })),
            );
            let replies = engine.handle_line((), r#"{"id":3,"op":"snapshot"}"#);
            let reply = parse(&replies[0].1);
            assert_eq!(reply["ok"].as_bool(), Some(true), "snapshot reply: {reply:?}");
            assert_eq!(reply["result"]["gen"].as_i64(), Some(1));
            assert_eq!(reply["result"]["journal_truncated"].as_bool(), Some(true));
        }
        let mut engine: Engine<()> = Engine::recover(durable_config(&dir)).unwrap();
        let replies = engine
            .handle_line((), &line(serde_json::json!({ "id": 4, "op": "analyze", "project": "p" })));
        let reply = parse(&replies[0].1);
        assert_eq!(reply["result"]["report_count"].as_i64(), Some(1), "{reply:?}");
        let stats = engine.handle_line((), r#"{"id":5,"op":"stats"}"#);
        let stats = parse(&stats[0].1);
        assert_eq!(stats["result"]["server"]["restored_projects"].as_i64(), Some(1));
        assert_eq!(stats["result"]["server"]["replayed_entries"].as_i64(), Some(0));
        assert_eq!(stats["result"]["projects"]["p"]["analyses"].as_i64(), Some(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_replay_recovers_unsnapshotted_work_after_hard_crash() {
        let dir = tempdir("replay");
        {
            let mut engine: Engine<()> = Engine::recover(durable_config(&dir)).unwrap();
            engine.handle_line((), &register_line(1));
            engine.handle_line(
                (),
                &line(serde_json::json!({ "id": 2, "op": "analyze", "project": "p" })),
            );
            // No snapshot, no shutdown: dropping the engine here is the
            // kill -9.
        }
        let mut engine: Engine<()> = Engine::recover(durable_config(&dir)).unwrap();
        let stats = engine.handle_line((), r#"{"id":3,"op":"stats"}"#);
        let stats = parse(&stats[0].1);
        assert_eq!(stats["result"]["server"]["replayed_entries"].as_i64(), Some(2));
        assert_eq!(stats["result"]["projects"]["p"]["analyses"].as_i64(), Some(1));
        assert_eq!(stats["result"]["projects"]["p"]["reports"].as_i64(), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_append_rejects_the_request_and_survives_restart() {
        let dir = tempdir("torn-accept");
        let config = ServerConfig {
            state_dir: Some(dir.clone()),
            fault: ServeFaultPlan { seed: 1, torn_journal_rate: 1.0, fsync_fail_rate: 0.0 },
            ..ServerConfig::default()
        };
        let mut engine: Engine<()> = Engine::recover(config).unwrap();
        let replies = engine.handle_line((), &register_line(1));
        let reply = parse(&replies[0].1);
        assert_eq!(reply["error"]["kind"].as_str(), Some("journal"));
        drop(engine);
        // Restart without faults: the torn tail is trimmed, nothing
        // replays, and the journal accepts appends again.
        let mut engine: Engine<()> = Engine::recover(durable_config(&dir)).unwrap();
        let replies = engine.handle_line((), &register_line(2));
        assert_eq!(parse(&replies[0].1)["ok"].as_bool(), Some(true));
        let stats = engine.handle_line((), r#"{"id":3,"op":"stats"}"#);
        assert_eq!(
            parse(&stats[0].1)["result"]["server"]["replayed_entries"].as_i64(),
            Some(0)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_without_state_dir_is_a_usage_error() {
        let mut engine: Engine<()> = Engine::new(ServerConfig::default());
        let replies = engine.handle_line((), r#"{"id":1,"op":"snapshot"}"#);
        assert_eq!(parse(&replies[0].1)["error"]["kind"].as_str(), Some("usage"));
    }

    #[test]
    fn patch_with_unparsable_module_leaves_project_intact() {
        let mut engine: Engine<()> = Engine::new(ServerConfig::default());
        engine.handle_line((), &register_line(1));
        let bad = line(serde_json::json!({
            "id": 2, "op": "patch", "project": "p",
            "sources": serde_json::json!({ "m.ril": "module m; fn broken(" }),
        }));
        let replies = engine.handle_line((), &bad);
        assert_eq!(parse(&replies[0].1)["error"]["kind"].as_str(), Some("frontend"));
        // The resident module still analyzes as before.
        let replies = engine
            .handle_line((), &line(serde_json::json!({ "id": 3, "op": "analyze", "project": "p" })));
        assert_eq!(parse(&replies[0].1)["result"]["report_count"].as_i64(), Some(1));
    }
}
