//! Thin line-oriented client for the Unix-socket daemon; `rid client`
//! is a direct wrapper around it.

use std::io::{self, BufRead, BufReader, Write};

use crate::protocol::Request;

/// A blocking, single-connection protocol client.
#[cfg(unix)]
pub struct Client {
    reader: BufReader<std::os::unix::net::UnixStream>,
    writer: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl Client {
    /// Connects to a daemon listening at `path`.
    pub fn connect(path: &std::path::Path) -> io::Result<Client> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sends one raw request line and blocks for the matching response
    /// line. A deferred request gets no immediate response — use a
    /// plain write (or a follow-up non-deferred request) for those.
    pub fn roundtrip(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Ok(response.trim_end().to_owned())
    }

    /// Serializes `request` and performs a [`Client::roundtrip`].
    pub fn request(&mut self, request: &Request) -> io::Result<String> {
        self.roundtrip(&request.to_line())
    }
}
