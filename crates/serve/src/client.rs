//! Thin line-oriented client for the Unix-socket daemon; `rid client`
//! is a direct wrapper around it.
//!
//! Resilience lives here, not in the daemon: [`RetryPolicy`] gives
//! requests bounded retries with deterministic jittered exponential
//! backoff on *transient* failures (queue-full backpressure, a draining
//! daemon, a reset connection), read timeouts so a wedged daemon cannot
//! hang the client forever, and automatic idempotency keys so a retry
//! after a lost reply is answered from the engine's memory instead of
//! executing twice.

use std::io::{self, BufRead, BufReader, Write};
use std::time::Duration;

use crate::protocol::Request;

/// Bounded-retry configuration for [`Client::request_retrying`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = one attempt, no retry).
    pub retries: u32,
    /// Backoff base in milliseconds; attempt `n` waits roughly
    /// `base_ms << n`, jittered.
    pub base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub max_ms: u64,
    /// Per-read timeout; `None` blocks indefinitely.
    pub timeout_ms: Option<u64>,
    /// Seed for the deterministic jitter (and auto-generated
    /// idempotency keys) — same seed, same delays, reproducible tests.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { retries: 4, base_ms: 20, max_ms: 2_000, timeout_ms: None, seed: 0x5eed }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (0-based) of the request
    /// salted by `salt` (typically the request id): exponential in the
    /// attempt, clamped to `max_ms`, multiplied by a deterministic
    /// jitter in [0.5, 1.5) so synchronized clients do not stampede a
    /// recovering daemon in lockstep.
    #[must_use]
    pub fn backoff_ms(&self, attempt: u32, salt: u64) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_ms.max(1));
        // xorshift64* on (seed, salt, attempt): cheap, deterministic,
        // good enough for spreading retry instants.
        let mut x = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(salt)
            .wrapping_add(u64::from(attempt) << 32)
            | 1;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let unit = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = exp as f64 * (0.5 + unit);
        jittered as u64
    }
}

/// Response error kinds that mean "try again later", not "you are
/// wrong": the daemon is briefly full or going away and a healthy
/// replacement (or a freed queue slot) will take the same request.
fn transient_reply_kind(reply: &str) -> Option<String> {
    let value: serde_json::Value = serde_json::from_str(reply).ok()?;
    let kind = value["error"]["kind"].as_str()?;
    matches!(kind, "backpressure" | "shutting-down" | "journal").then(|| kind.to_owned())
}

/// I/O failures worth a reconnect + retry: the connection died or the
/// read timed out, neither of which condemns the request itself.
fn transient_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotFound
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
    )
}

/// A blocking, single-connection protocol client.
#[cfg(unix)]
pub struct Client {
    reader: BufReader<std::os::unix::net::UnixStream>,
    writer: std::os::unix::net::UnixStream,
    path: std::path::PathBuf,
    timeout: Option<Duration>,
    /// Set when the transport failed mid-request; the next retrying
    /// request reconnects before resending.
    broken: bool,
}

#[cfg(unix)]
impl Client {
    /// Connects to a daemon listening at `path`.
    pub fn connect(path: &std::path::Path) -> io::Result<Client> {
        Client::connect_with(path, None)
    }

    /// [`Client::connect`] with a per-read timeout: a read that exceeds
    /// it fails with a transient (retryable) error instead of blocking
    /// forever on a wedged daemon.
    pub fn connect_with(
        path: &std::path::Path,
        timeout: Option<Duration>,
    ) -> io::Result<Client> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        stream.set_read_timeout(timeout)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            path: path.to_path_buf(),
            timeout,
            broken: false,
        })
    }

    /// Sends one raw request line and blocks for the matching response
    /// line. A deferred request gets no immediate response — use a
    /// plain write (or a follow-up non-deferred request) for those.
    pub fn roundtrip(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Ok(response.trim_end().to_owned())
    }

    /// Serializes `request` and performs a [`Client::roundtrip`].
    pub fn request(&mut self, request: &Request) -> io::Result<String> {
        self.roundtrip(&request.to_line())
    }

    /// One protocol `ping` round-trip — the liveness probe the daemon
    /// answers inline even while draining or backlogged.
    pub fn ping(&mut self, id: u64) -> io::Result<String> {
        let mut request = Request::new(id, "ping", "");
        request.project = String::new();
        self.request(&request)
    }

    /// [`Client::request`] with bounded retry under `policy`.
    ///
    /// Transient failures — a `backpressure`/`shutting-down`/`journal`
    /// error reply, a reset or closed connection, a read timeout — are
    /// retried up to `policy.retries` times with jittered exponential
    /// backoff, reconnecting when the transport died. Every attempt
    /// resends the *identical* line with an idempotency key (one is
    /// derived from the policy seed and request id when the caller did
    /// not set one), so a request whose reply was lost in transit is
    /// answered from the daemon's memory, never executed twice.
    ///
    /// Non-transient errors (usage, parse, unknown-project, analysis
    /// failures) return immediately: retrying cannot fix a wrong
    /// request.
    pub fn request_retrying(
        &mut self,
        request: &Request,
        policy: &RetryPolicy,
    ) -> io::Result<String> {
        let mut request = request.clone();
        if request.idem.is_none() {
            request.idem = Some(format!("idem-{:016x}-{}", policy.seed, request.id));
        }
        let line = request.to_line();
        let mut last_err =
            io::Error::other("request_retrying: no attempt made");
        for attempt in 0..=policy.retries {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(
                    policy.backoff_ms(attempt - 1, request.id),
                ));
            }
            if self.broken {
                match Client::connect_with(&self.path, self.timeout) {
                    Ok(fresh) => *self = fresh,
                    Err(e) => {
                        last_err = e;
                        continue;
                    }
                }
            }
            match self.roundtrip(&line) {
                Ok(reply) => match transient_reply_kind(&reply) {
                    Some(kind) => {
                        last_err = io::Error::new(
                            io::ErrorKind::WouldBlock,
                            format!("daemon answered `{kind}`; retrying"),
                        );
                    }
                    None => return Ok(reply),
                },
                Err(e) if transient_io(&e) => {
                    self.broken = true;
                    last_err = e;
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            last_err.kind(),
            format!("request failed after {} attempts: {last_err}", policy.retries + 1),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let policy = RetryPolicy { base_ms: 10, max_ms: 500, seed: 42, ..RetryPolicy::default() };
        for attempt in 0..12 {
            let a = policy.backoff_ms(attempt, 7);
            let b = policy.backoff_ms(attempt, 7);
            assert_eq!(a, b, "same inputs, same delay");
            // Jitter range: [0.5, 1.5) of the clamped exponential.
            let exp = (10u64 << attempt.min(20)).min(500);
            assert!(a >= exp / 2 && a < exp + exp, "attempt {attempt}: {a} vs exp {exp}");
        }
        // Different salts (request ids) spread out.
        let delays: Vec<u64> = (0..32).map(|salt| policy.backoff_ms(3, salt)).collect();
        let distinct: std::collections::BTreeSet<u64> = delays.iter().copied().collect();
        assert!(distinct.len() > 8, "jitter must actually jitter: {distinct:?}");
        // Seed changes the schedule.
        let other = RetryPolicy { seed: 43, ..policy };
        assert_ne!(
            (0..8).map(|a| policy.backoff_ms(a, 7)).collect::<Vec<_>>(),
            (0..8).map(|a| other.backoff_ms(a, 7)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn transient_classification_is_precise() {
        let transient =
            r#"{"id":1,"ok":false,"error":{"kind":"backpressure","message":"full"}}"#;
        assert_eq!(transient_reply_kind(transient).as_deref(), Some("backpressure"));
        let draining =
            r#"{"id":1,"ok":false,"error":{"kind":"shutting-down","message":"bye"}}"#;
        assert_eq!(transient_reply_kind(draining).as_deref(), Some("shutting-down"));
        let fatal = r#"{"id":1,"ok":false,"error":{"kind":"usage","message":"bad"}}"#;
        assert!(transient_reply_kind(fatal).is_none());
        let ok = r#"{"id":1,"ok":true,"result":{}}"#;
        assert!(transient_reply_kind(ok).is_none());
        assert!(transient_reply_kind("not json").is_none());

        assert!(transient_io(&io::Error::new(io::ErrorKind::ConnectionReset, "x")));
        assert!(transient_io(&io::Error::new(io::ErrorKind::TimedOut, "x")));
        assert!(!transient_io(&io::Error::new(io::ErrorKind::InvalidData, "x")));
    }
}
