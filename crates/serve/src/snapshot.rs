//! Snapshot files: one resident project serialized to disk, restorable
//! without re-running the driver.
//!
//! ## Container format
//!
//! A `.snap` file is a checksummed section container:
//!
//! ```text
//! "RIDSNAP3"                        8-byte magic/version
//! u32        section count
//! per section:
//!   u32      name length, name bytes (UTF-8)
//!   u64      payload length, payload bytes
//! u64        FNV-1a-64 over 8-byte words of every preceding byte
//! ```
//!
//! Sections: `meta` (JSON: project name, file→module map, registration
//! options, run counter), `modules` (the resident program's modules in
//! link order, via the [`rid_ir::codec`] binary format), `callers` (the
//! resident reverse call index, so restore inserts edges instead of
//! re-walking every function body), `state` (the last run's
//! [`AnalysisState`] — reports, summaries, classification,
//! degradations — as a binary-encoded value tree; absent when the
//! project was never analyzed), and `cache` (the content-addressed
//! summary cache as a RIDSS1 indexed container — see `rid_core::store` —
//! so restore parses only the entry index and each cached record is
//! decoded the first time a probe hits it).
//!
//! The `state`/`cache` sections deliberately avoid JSON text: restore
//! must land well under the cold-analyze budget, and at corpus scale
//! text parsing alone would blow it. The value-tree codec here is a
//! direct binary walk — no tokenizing, no escape handling, no float
//! round-tripping through decimal. [`ProjectSnapshot`] carries these
//! two sections as *encoded bytes*, for the same budget reason: the
//! engine restores them lazily (first analytical use decodes), and a
//! restored-but-untouched section flows back into the next snapshot
//! verbatim. The checksum hashes 8-byte words rather than bytes —
//! byte-at-a-time FNV costs a serial multiply per byte, milliseconds of
//! pure checksum at corpus scale.
//!
//! Writers go through [`write_snapshot`], which stages to a temp
//! sibling, fsyncs, and renames — a crash mid-write leaves the previous
//! snapshot intact. Readers verify the trailing checksum before parsing
//! a single section, so torn or bit-flipped files fail loudly.
//!
//! ## The manifest
//!
//! `MANIFEST.json` names the snapshot generation that is *committed*:
//! which `.snap` file holds each project and the journal byte offset
//! the generation covers. Snapshot files for a newer, uncommitted
//! generation are ignored by restore — the manifest flips atomically,
//! so every crash point yields either the old consistent view (plus
//! journal replay) or the new one.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use rid_core::persist::{atomic_write, AnalysisState};
use rid_core::SummaryCache;
use rid_ir::Module;
use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::protocol::ProjectOptions;

/// Version header of a `.snap` container; bump on layout changes.
pub const SNAP_MAGIC: &[u8; 8] = b"RIDSNAP3";

/// Schema tag carried in the `meta` section and the manifest.
pub const SNAP_SCHEMA: &str = "rid-serve-snap/v3";

/// File name of the manifest inside a `--state-dir`.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// Everything needed to rebuild one resident project.
pub struct ProjectSnapshot {
    /// Project name (protocol `project` field).
    pub project: String,
    /// Protocol file key → declared module name.
    pub files: BTreeMap<String, String>,
    /// Raw registration options; restore re-resolves them through the
    /// same path `register` used.
    pub options: Option<ProjectOptions>,
    /// Driver runs executed for this project before the snapshot.
    pub analyses: u64,
    /// The resident program's modules, in link order.
    pub modules: Vec<Module>,
    /// The reverse call index's edges, encoded via [`encode_callers`].
    /// Kept as bytes because only the patch path needs the index: restore
    /// defers the decode, and an untouched index passes through to the
    /// next snapshot verbatim.
    pub callers: Vec<u8>,
    /// The last run's persistable [`AnalysisState`], already encoded via
    /// [`encode_state`], if the project was analyzed. Kept as bytes so
    /// the engine can defer decoding and pass untouched sections through
    /// to the next snapshot verbatim.
    pub state: Option<Vec<u8>>,
    /// The content-addressed summary cache, encoded via
    /// [`encode_cache`]; same byte-level contract as `state`.
    pub cache: Vec<u8>,
}

#[derive(Serialize, Deserialize)]
struct SnapshotMeta {
    schema: String,
    project: String,
    files: BTreeMap<String, String>,
    options: Option<ProjectOptions>,
    analyses: u64,
}

/// The committed-generation record: restore trusts only what this file
/// names. Stored as JSON because it is tiny and hand-inspectable.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Manifest {
    /// Schema tag ([`SNAP_SCHEMA`]); foreign tags fail restore loudly.
    pub schema: String,
    /// Monotonic snapshot generation.
    pub gen: u64,
    /// Journal byte offset this generation covers: restore replays only
    /// entries past it.
    pub journal_offset: u64,
    /// Project name → `.snap` file name (relative to the state dir).
    pub projects: BTreeMap<String, String>,
}

impl Manifest {
    /// Loads the manifest from `state_dir`, or `None` when the
    /// directory has no committed snapshot generation yet.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on unreadable or schema-foreign manifests —
    /// a corrupt manifest must stop the daemon, not silently cold-start
    /// it over data it failed to read.
    pub fn load(state_dir: &Path) -> io::Result<Option<Manifest>> {
        let path = state_dir.join(MANIFEST_FILE);
        let json = match fs::read_to_string(&path) {
            Ok(json) => json,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let manifest: Manifest = serde_json::from_str(&json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if manifest.schema != SNAP_SCHEMA {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "manifest schema mismatch: found {:?}, expected {:?}",
                    manifest.schema, SNAP_SCHEMA
                ),
            ));
        }
        Ok(Some(manifest))
    }

    /// Atomically commits the manifest to `state_dir`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the write fails.
    pub fn store(&self, state_dir: &Path) -> io::Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        atomic_write(&state_dir.join(MANIFEST_FILE), json.as_bytes())
    }
}

/// The `.snap` file name for a project at a generation. The name embeds
/// a hash of the project name (names are arbitrary protocol strings,
/// not safe file names) plus the generation, so an uncommitted newer
/// generation never overwrites the committed one in place.
#[must_use]
pub fn snap_file_name(project: &str, gen: u64) -> String {
    let stem: String = project
        .chars()
        .take(24)
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    let hash = rid_core::fault::selection_hash(0, project);
    format!("{stem}-{hash:016x}.{gen}.snap")
}

/// Serializes `snapshot` to `path` atomically. Returns the snapshot
/// size in bytes (the obs span payload).
///
/// `inject_fsync_failure` is the chaos-harness hook: when true, the
/// staged temp file is abandoned and the write reports an fsync
/// failure — the committed snapshot (if any) is untouched, exactly as
/// with a real fsync error.
///
/// # Errors
///
/// Returns an I/O error if staging, fsync, or rename fails, or when a
/// failure was injected.
pub fn write_snapshot(
    path: &Path,
    snapshot: &ProjectSnapshot,
    inject_fsync_failure: bool,
) -> io::Result<u64> {
    let meta = SnapshotMeta {
        schema: SNAP_SCHEMA.to_owned(),
        project: snapshot.project.clone(),
        files: snapshot.files.clone(),
        options: snapshot.options.clone(),
        analyses: snapshot.analyses,
    };
    let meta_json = serde_json::to_string(&meta)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;

    let module_refs: Vec<&Module> = snapshot.modules.iter().collect();
    let modules_bytes = rid_ir::encode_modules(&module_refs);

    let mut sections: Vec<(&str, &[u8])> = vec![
        ("meta", meta_json.as_bytes()),
        ("modules", &modules_bytes),
    ];
    sections.push(("callers", &snapshot.callers));
    sections.push(("cache", &snapshot.cache));
    if let Some(state) = &snapshot.state {
        sections.push(("state", state));
    }

    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(SNAP_MAGIC);
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (name, payload) in &sections {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
    }
    let checksum = checksum64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());

    if inject_fsync_failure {
        // Leave realistic debris: the staged temp exists, the target is
        // untouched.
        let debris = path.with_extension("snap.tmp-failed");
        let _ = fs::File::create(&debris).and_then(|mut f| f.write_all(&out[..out.len() / 2]));
        return Err(io::Error::other("injected fsync failure during snapshot"));
    }

    atomic_write(path, &out)?;
    Ok(out.len() as u64)
}

/// Reads and verifies a snapshot written by [`write_snapshot`].
///
/// # Errors
///
/// Returns an I/O error on checksum mismatch, foreign magic/schema, or
/// any malformed section — a snapshot that fails any check restores
/// nothing rather than something subtly wrong.
pub fn read_snapshot(path: &Path) -> io::Result<ProjectSnapshot> {
    let bytes = fs::read(path)?;
    let bad = |message: String| io::Error::new(io::ErrorKind::InvalidData, message);

    if bytes.len() < SNAP_MAGIC.len() + 4 + 8 {
        return Err(bad("snapshot too short".to_owned()));
    }
    let (body, checksum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(checksum_bytes.try_into().expect("8 bytes"));
    if checksum64(body) != stored {
        return Err(bad("snapshot checksum mismatch (torn or corrupt file)".to_owned()));
    }
    if &body[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(bad("not a rid snapshot (bad magic)".to_owned()));
    }

    let mut at = SNAP_MAGIC.len();
    let take = |at: &mut usize, n: usize| -> io::Result<&[u8]> {
        let end = at.checked_add(n).filter(|&e| e <= body.len());
        let end = end.ok_or_else(|| bad("snapshot truncated".to_owned()))?;
        let slice = &body[*at..end];
        *at = end;
        Ok(slice)
    };
    let count =
        u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) as usize;
    let mut sections: BTreeMap<String, &[u8]> = BTreeMap::new();
    for _ in 0..count {
        let name_len =
            u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) as usize;
        let name = std::str::from_utf8(take(&mut at, name_len)?)
            .map_err(|_| bad("section name is not UTF-8".to_owned()))?
            .to_owned();
        let payload_len =
            u64::from_le_bytes(take(&mut at, 8)?.try_into().expect("8 bytes")) as usize;
        let payload = take(&mut at, payload_len)?;
        sections.insert(name, payload);
    }

    let section = |name: &str| -> io::Result<&[u8]> {
        sections
            .get(name)
            .copied()
            .ok_or_else(|| bad(format!("snapshot is missing its `{name}` section")))
    };

    let meta_text = std::str::from_utf8(section("meta")?)
        .map_err(|_| bad("meta section is not UTF-8".to_owned()))?;
    let meta: SnapshotMeta = serde_json::from_str(meta_text)
        .map_err(|e| bad(format!("bad meta section: {e}")))?;
    if meta.schema != SNAP_SCHEMA {
        return Err(bad(format!(
            "snapshot schema mismatch: found {:?}, expected {:?}",
            meta.schema, SNAP_SCHEMA
        )));
    }

    // The checksum above covered every section byte, so the module
    // decode can skip re-validating each function — the bytes are what
    // `write_snapshot` produced from already-validated functions.
    let modules = rid_ir::decode_modules_trusted(section("modules")?)
        .map_err(|e| bad(format!("bad modules section: {e}")))?;
    let callers = section("callers")?.to_vec();
    let cache = section("cache")?.to_vec();
    let state = sections.get("state").map(|payload| payload.to_vec());

    Ok(ProjectSnapshot {
        project: meta.project,
        files: meta.files,
        options: meta.options,
        analyses: meta.analyses,
        modules,
        callers,
        state,
        cache,
    })
}

/// FNV-1a-64 over 8-byte little-endian words (tail zero-padded, length
/// folded in last so padding is unambiguous). Classic byte-at-a-time
/// FNV is one serial multiply per byte — at snapshot scale that alone
/// costs milliseconds of restore latency, so the container hashes words
/// with the same constants instead. Corruption-detection strength is
/// what matters here (torn writes, bit rot), not collision resistance
/// against an adversary: the file lives in the daemon's own state dir.
pub(crate) fn checksum64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut words = bytes.chunks_exact(8);
    for word in &mut words {
        hash ^= u64::from_le_bytes(word.try_into().expect("8 bytes"));
        hash = hash.wrapping_mul(PRIME);
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        let mut padded = [0u8; 8];
        padded[..tail.len()].copy_from_slice(tail);
        hash ^= u64::from_le_bytes(padded);
        hash = hash.wrapping_mul(PRIME);
    }
    hash ^= bytes.len() as u64;
    hash.wrapping_mul(PRIME)
}

/// Encodes a summary cache into `cache`-section bytes: a RIDSS1 indexed
/// container (see `rid_core::store`). Entries still lazily held in the
/// cache's backing store are copied through as verified raw bytes.
///
/// # Errors
///
/// Returns an I/O error if the cache cannot be serialized.
pub fn encode_cache(cache: &SummaryCache) -> io::Result<Vec<u8>> {
    rid_core::store::write_store_bytes(&cache.schema, &cache.entries, cache.backing_store())
}

/// Decodes `cache`-section bytes written by [`encode_cache`]: the
/// container's header and index are parsed here; entry payloads are
/// decoded only when a probe hits them.
///
/// # Errors
///
/// Returns an I/O error on malformed bytes.
pub fn decode_cache(bytes: &[u8]) -> io::Result<SummaryCache> {
    Ok(SummaryCache::from_store(rid_core::SummaryStore::from_bytes(bytes.to_vec())?))
}

/// Encodes an analysis state into `state`-section bytes.
///
/// # Errors
///
/// Returns an I/O error if the state cannot be serialized.
pub fn encode_state(state: &AnalysisState) -> io::Result<Vec<u8>> {
    encode_section_value(state)
}

/// Decodes `state`-section bytes written by [`encode_state`].
///
/// # Errors
///
/// Returns an I/O error on malformed bytes.
pub fn decode_state(bytes: &[u8]) -> io::Result<AnalysisState> {
    decode_section_value(bytes)
}

/// Typed codec for the `callers` section: `u32` pair count, then per
/// pair a length-prefixed callee name and its length-prefixed caller
/// names. A direct decode into the index's shape — the generic value
/// tree would pay an allocation per node for what is just strings.
/// Encoding callee-sorted edges (the [`CallerIndex::edges`] shape) is
/// deterministic, so an index that did not change between snapshots
/// re-encodes to the identical bytes.
///
/// [`CallerIndex::edges`]: rid_core::incremental::CallerIndex::edges
#[must_use]
pub fn encode_callers(callers: &[(String, BTreeSet<String>)]) -> Vec<u8> {
    fn put_str(out: &mut Vec<u8>, s: &str) {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(&(callers.len() as u32).to_le_bytes());
    for (callee, names) in callers {
        put_str(&mut out, callee);
        out.extend_from_slice(&(names.len() as u32).to_le_bytes());
        for name in names {
            put_str(&mut out, name);
        }
    }
    out
}

/// Decodes `callers`-section bytes written by [`encode_callers`].
///
/// # Errors
///
/// Returns an I/O error on malformed bytes.
pub fn decode_callers(bytes: &[u8]) -> io::Result<Vec<(String, BTreeSet<String>)>> {
    let bad = |message: &str| io::Error::new(io::ErrorKind::InvalidData, message.to_owned());
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> io::Result<&[u8]> {
        let end = at.checked_add(n).filter(|&e| e <= bytes.len());
        let end = end.ok_or_else(|| bad("truncated callers section"))?;
        let slice = &bytes[*at..end];
        *at = end;
        Ok(slice)
    };
    let u32_at = |at: &mut usize| -> io::Result<usize> {
        Ok(u32::from_le_bytes(take(at, 4)?.try_into().expect("4 bytes")) as usize)
    };
    let string = |at: &mut usize| -> io::Result<String> {
        let len = u32_at(at)?;
        String::from_utf8(take(at, len)?.to_vec())
            .map_err(|_| bad("non-UTF-8 name in callers section"))
    };
    let count = u32_at(&mut at)?;
    let mut callers = Vec::with_capacity(count.min(65536));
    for _ in 0..count {
        let callee = string(&mut at)?;
        let names = u32_at(&mut at)?;
        let mut set = BTreeSet::new();
        for _ in 0..names {
            set.insert(string(&mut at)?);
        }
        callers.push((callee, set));
    }
    if at != bytes.len() {
        return Err(bad("trailing bytes after callers section"));
    }
    Ok(callers)
}

fn encode_section_value<T: serde::Serialize>(value: &T) -> io::Result<Vec<u8>> {
    let tree = serde_json::to_value(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut out = Vec::with_capacity(1024);
    encode_value(&tree, &mut out);
    Ok(out)
}

fn decode_section_value<T: serde::DeserializeOwned>(bytes: &[u8]) -> io::Result<T> {
    let mut at = 0usize;
    let tree = decode_value(bytes, &mut at)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if at != bytes.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trailing bytes after value tree",
        ));
    }
    serde_json::from_value(tree)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Binary value-tree encoding: one tag byte per node, little-endian
/// scalars, u32 length prefixes. Purely internal to the snapshot file.
fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(3);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Seq(items) => {
            out.push(5);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(pairs) => {
            out.push(6);
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for (key, item) in pairs {
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key.as_bytes());
                encode_value(item, out);
            }
        }
    }
}

fn decode_value(bytes: &[u8], at: &mut usize) -> Result<Value, String> {
    fn take<'a>(bytes: &'a [u8], at: &mut usize, n: usize) -> Result<&'a [u8], String> {
        let end = at.checked_add(n).filter(|&e| e <= bytes.len());
        let end = end.ok_or_else(|| "truncated value tree".to_owned())?;
        let slice = &bytes[*at..end];
        *at = end;
        Ok(slice)
    }
    fn string(bytes: &[u8], at: &mut usize) -> Result<String, String> {
        let len = u32::from_le_bytes(take(bytes, at, 4)?.try_into().expect("4 bytes")) as usize;
        String::from_utf8(take(bytes, at, len)?.to_vec())
            .map_err(|_| "non-UTF-8 string in value tree".to_owned())
    }
    let tag = take(bytes, at, 1)?[0];
    Ok(match tag {
        0 => Value::Null,
        1 => Value::Bool(take(bytes, at, 1)?[0] != 0),
        2 => Value::Int(i64::from_le_bytes(take(bytes, at, 8)?.try_into().expect("8 bytes"))),
        3 => Value::Float(f64::from_le_bytes(take(bytes, at, 8)?.try_into().expect("8 bytes"))),
        4 => Value::Str(string(bytes, at)?),
        5 => {
            let len =
                u32::from_le_bytes(take(bytes, at, 4)?.try_into().expect("4 bytes")) as usize;
            let mut items = Vec::with_capacity(len.min(65536));
            for _ in 0..len {
                items.push(decode_value(bytes, at)?);
            }
            Value::Seq(items)
        }
        6 => {
            let len =
                u32::from_le_bytes(take(bytes, at, 4)?.try_into().expect("4 bytes")) as usize;
            let mut pairs = Vec::with_capacity(len.min(65536));
            for _ in 0..len {
                let key = string(bytes, at)?;
                pairs.push((key, decode_value(bytes, at)?));
            }
            Value::Map(pairs)
        }
        other => return Err(format!("unknown value tag {other:#04x}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rid_core::{analyze_program_cached, AnalysisOptions, FaultPlan};
    use std::path::PathBuf;

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rid-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// `(snapshot, state, cache)`: the snapshot holds the encoded
    /// sections, the typed values ride along for roundtrip asserts.
    fn sample_snapshot() -> (ProjectSnapshot, AnalysisState, SummaryCache) {
        let src = r#"module m;
            fn probe(dev) {
                let ret = pm_runtime_get_sync(dev);
                if (ret < 0) { return ret; }
                ret = helper_update(dev);
                pm_runtime_put(dev);
                return ret;
            }"#;
        let program = rid_frontend::parse_program([src]).unwrap();
        let apis = rid_core::apis::linux_dpm_apis();
        let mut cache = SummaryCache::new();
        let result = analyze_program_cached(
            &program,
            &apis,
            &AnalysisOptions::default(),
            &FaultPlan::none(),
            Some(&mut cache),
        );
        let state = AnalysisState::from(&result);
        let edges: Vec<(String, BTreeSet<String>)> =
            rid_core::incremental::CallerIndex::build(&program)
                .edges()
                .into_iter()
                .map(|(callee, names)| (callee.to_owned(), names.clone()))
                .collect();
        let callers = encode_callers(&edges);
        let snapshot = ProjectSnapshot {
            project: "p".to_owned(),
            files: [("m.ril".to_owned(), "m".to_owned())].into(),
            options: Some(ProjectOptions { threads: Some(2), ..ProjectOptions::default() }),
            analyses: 3,
            modules: program.modules().to_vec(),
            callers,
            state: Some(encode_state(&state).unwrap()),
            cache: encode_cache(&cache).unwrap(),
        };
        (snapshot, state, cache)
    }

    #[test]
    fn value_tree_codec_roundtrips() {
        let tree = serde_json::json!({
            "null": Value::Null,
            "bool": true,
            "int": -42i64,
            "float": 1.5f64,
            "str": "héllo\nworld",
            "seq": serde_json::json!([1i64, "two", Value::Null]),
            "map": serde_json::json!({"nested": serde_json::json!([])}),
        });
        let mut bytes = Vec::new();
        encode_value(&tree, &mut bytes);
        let mut at = 0;
        let back = decode_value(&bytes, &mut at).unwrap();
        assert_eq!(at, bytes.len());
        assert_eq!(back, tree);
        // Truncations fail, never panic.
        for end in 0..bytes.len() {
            let mut at = 0;
            let result = decode_value(&bytes[..end], &mut at);
            assert!(result.is_err() || at <= end);
        }
    }

    #[test]
    fn snapshot_roundtrips_full_project() {
        let dir = tempdir("roundtrip");
        let (snapshot, state, cache) = sample_snapshot();
        let path = dir.join(snap_file_name("p", 1));
        let bytes = write_snapshot(&path, &snapshot, false).unwrap();
        assert!(bytes > 0);

        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.project, "p");
        assert_eq!(back.files, snapshot.files);
        assert_eq!(back.analyses, 3);
        assert_eq!(back.options.as_ref().unwrap().threads, Some(2));
        assert_eq!(back.modules, snapshot.modules);
        assert_eq!(back.callers, snapshot.callers);
        assert!(
            !decode_callers(&back.callers).unwrap().is_empty(),
            "probe's call edges must be indexed"
        );
        // The encoded sections pass through byte-for-byte AND decode
        // back to the exact values that were encoded.
        assert_eq!(back.cache, snapshot.cache);
        assert_eq!(back.state, snapshot.state);
        assert_eq!(
            serde_json::to_string(&decode_state(back.state.as_ref().unwrap()).unwrap()).unwrap(),
            serde_json::to_string(&state).unwrap(),
            "analysis state must round-trip exactly"
        );
        let decoded_cache = decode_cache(&back.cache).unwrap();
        assert_eq!(decoded_cache.len(), cache.len());
        assert_eq!(
            serde_json::to_string(&decoded_cache).unwrap(),
            serde_json::to_string(&cache).unwrap(),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn callers_codec_roundtrips_and_rejects_truncation() {
        let callers = vec![
            ("helper".to_owned(), ["a".to_owned(), "probe".to_owned()].into()),
            ("pm_runtime_put".to_owned(), ["probe".to_owned()].into()),
            ("éxotic".to_owned(), BTreeSet::new()),
        ];
        let bytes = encode_callers(&callers);
        assert_eq!(decode_callers(&bytes).unwrap(), callers);
        for end in 0..bytes.len() {
            assert!(decode_callers(&bytes[..end]).is_err(), "truncation at {end}");
        }
    }

    #[test]
    fn corrupt_and_truncated_snapshots_fail_loudly() {
        let dir = tempdir("corrupt");
        let (snapshot, _, _) = sample_snapshot();
        let path = dir.join("p.snap");
        write_snapshot(&path, &snapshot, false).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // Every truncation is rejected by the checksum.
        for end in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..end]).unwrap();
            assert!(read_snapshot(&path).is_err(), "truncation at {end}");
        }
        // A single flipped bit anywhere is rejected.
        for &i in &[0usize, 9, bytes.len() / 3, bytes.len() - 9] {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1;
            std::fs::write(&path, &corrupt).unwrap();
            assert!(read_snapshot(&path).is_err(), "bit flip at {i}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_fsync_failure_preserves_previous_snapshot() {
        let dir = tempdir("fsync");
        let (snapshot, _, _) = sample_snapshot();
        let path = dir.join("p.snap");
        write_snapshot(&path, &snapshot, false).unwrap();
        let committed = std::fs::read(&path).unwrap();

        let err = write_snapshot(&path, &snapshot, true);
        assert!(err.is_err());
        assert_eq!(std::fs::read(&path).unwrap(), committed, "old snapshot intact");
        assert!(read_snapshot(&path).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_roundtrip_and_schema_check() {
        let dir = tempdir("manifest");
        assert!(Manifest::load(&dir).unwrap().is_none());
        let manifest = Manifest {
            schema: SNAP_SCHEMA.to_owned(),
            gen: 4,
            journal_offset: 123,
            projects: [("p".to_owned(), snap_file_name("p", 4))].into(),
        };
        manifest.store(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap().unwrap();
        assert_eq!(back.gen, 4);
        assert_eq!(back.journal_offset, 123);
        assert_eq!(back.projects, manifest.projects);

        let text = std::fs::read_to_string(dir.join(MANIFEST_FILE))
            .unwrap()
            .replace(SNAP_SCHEMA, "rid-serve-snap/v0");
        std::fs::write(dir.join(MANIFEST_FILE), text).unwrap();
        assert!(Manifest::load(&dir).is_err(), "foreign schema fails loudly");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snap_file_names_are_distinct_and_safe() {
        let a = snap_file_name("p", 1);
        let b = snap_file_name("p", 2);
        let c = snap_file_name("../../etc/passwd", 1);
        assert_ne!(a, b, "generations must not collide");
        assert!(!c.contains('/'), "project names are sanitized: {c}");
        assert_ne!(snap_file_name("a/b", 1), snap_file_name("a_b", 1), "hash disambiguates");
    }
}
