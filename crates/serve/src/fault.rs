//! Deterministic fault injection for the serve layer's durability
//! machinery — the chaos harness's control surface.
//!
//! [`ServeFaultPlan`] mirrors the core [`rid_core::fault::FaultPlan`]
//! idiom: selection is a seeded hash of a stable key, so the same plan
//! tears the same journal appends and fails the same snapshot fsyncs on
//! every run. That determinism is what lets the differential chaos
//! tests assert byte-identical state after crash + restore.
//!
//! The plan is `Copy` (seed plus rates, no allocations) so
//! [`crate::ServerConfig`] stays `Copy`.

use rid_core::fault::{rate_selects, selection_hash};

/// Salt for torn-journal-append selection.
const SALT_TORN: u64 = 0x746f_726e; // "torn"
/// Salt for snapshot-fsync-failure selection.
const SALT_FSYNC: u64 = 0x6673_796e; // "fsyn"

/// A deterministic fault plan for serve-layer durability paths.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServeFaultPlan {
    /// Seed for every selection hash in this plan.
    pub seed: u64,
    /// Fraction (0.0–1.0) of journal appends written torn: a prefix of
    /// the frame lands on disk, the append reports failure, and the
    /// request is rejected — what a crash mid-append leaves behind.
    pub torn_journal_rate: f64,
    /// Fraction (0.0–1.0) of per-project snapshot writes whose fsync
    /// fails, abandoning the staged temp file and keeping the previous
    /// committed snapshot.
    pub fsync_fail_rate: f64,
}

impl ServeFaultPlan {
    /// The empty plan: injects nothing anywhere.
    #[must_use]
    pub fn none() -> ServeFaultPlan {
        ServeFaultPlan::default()
    }

    /// Whether this plan can inject anything at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.torn_journal_rate <= 0.0 && self.fsync_fail_rate <= 0.0
    }

    /// For a journal append keyed by `key` (the raw request line) of
    /// `frame_len` bytes: `Some(n)` to tear the write after `n` bytes,
    /// `None` to let it through. The tear point is derived from the
    /// same hash as the selection, so a given entry always tears at the
    /// same byte.
    #[must_use]
    pub fn torn_prefix_len(&self, key: &str, frame_len: usize) -> Option<usize> {
        if !rate_selects(self.seed, SALT_TORN, key, self.torn_journal_rate) {
            return None;
        }
        if frame_len == 0 {
            return Some(0);
        }
        Some((selection_hash(self.seed ^ SALT_TORN, key) as usize) % frame_len)
    }

    /// Whether the snapshot write for `project` should fail at fsync.
    #[must_use]
    pub fn should_fail_fsync(&self, project: &str) -> bool {
        rate_selects(self.seed, SALT_FSYNC, project, self.fsync_fail_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_selects_nothing() {
        let plan = ServeFaultPlan::none();
        assert!(plan.is_none());
        assert!(plan.torn_prefix_len("anything", 100).is_none());
        assert!(!plan.should_fail_fsync("p"));
    }

    #[test]
    fn selection_is_deterministic_and_bounded() {
        let plan = ServeFaultPlan { seed: 11, torn_journal_rate: 0.5, fsync_fail_rate: 0.5 };
        let keys: Vec<String> = (0..200).map(|i| format!("{{\"id\":{i}}}")).collect();
        let picks: Vec<Option<usize>> =
            keys.iter().map(|k| plan.torn_prefix_len(k, k.len() + 1)).collect();
        let again: Vec<Option<usize>> =
            keys.iter().map(|k| plan.torn_prefix_len(k, k.len() + 1)).collect();
        assert_eq!(picks, again, "same plan, same tears");
        let hit = picks.iter().filter(|p| p.is_some()).count();
        assert!((50..=150).contains(&hit), "~50% of 200 expected, got {hit}");
        for (key, pick) in keys.iter().zip(&picks) {
            if let Some(n) = pick {
                assert!(*n < key.len() + 1, "tear point inside the frame");
            }
        }
        let fsync_hits = keys.iter().filter(|k| plan.should_fail_fsync(k)).count();
        assert!((50..=150).contains(&fsync_hits));
        let other = ServeFaultPlan { seed: 12, ..plan };
        let other_picks: Vec<Option<usize>> =
            keys.iter().map(|k| other.torn_prefix_len(k, k.len() + 1)).collect();
        assert_ne!(picks, other_picks, "seed changes the selection");
    }

    #[test]
    fn full_rate_selects_everything() {
        let plan = ServeFaultPlan { seed: 0, torn_journal_rate: 1.0, fsync_fail_rate: 1.0 };
        assert!(plan.torn_prefix_len("x", 10).is_some());
        assert!(plan.should_fail_fsync("p"));
        assert_eq!(plan.torn_prefix_len("x", 0), Some(0), "empty frame tears at zero");
    }
}
