//! Wire types of the serve protocol.
//!
//! The transport is newline-delimited JSON: one request object per line
//! in, one response object per line out, every response carrying the
//! `id` of the request it answers. `PROTOCOL.md` at the repository root
//! is the normative description of every message; this module is the
//! implementation the daemon and the thin client share.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use serde_json::Value;

/// Protocol identifier echoed in every response envelope.
///
/// Clients must check the prefix `rid-serve/`; the integer after the
/// slash bumps on any breaking change to request or response shapes
/// (additive, ignorable fields do not bump it).
pub const PROTOCOL_VERSION: &str = "rid-serve/1";

/// One request line, as sent by a client.
///
/// `op` selects the operation (`register`, `analyze`, `patch`,
/// `explain`, `diff`, `stats`, `ping`, `snapshot`, `shutdown`); the
/// other fields are op-specific and default to empty when omitted. See
/// `PROTOCOL.md` for which fields each op requires.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    #[serde(default)]
    pub id: u64,
    /// Operation name.
    pub op: String,
    /// Target project (required by every op except `stats` and
    /// `shutdown`).
    #[serde(default)]
    pub project: String,
    /// Module sources keyed by module file name. `register` sends the
    /// full set; `patch` sends only changed or added modules.
    #[serde(default)]
    pub sources: BTreeMap<String, String>,
    /// `explain` only: restrict to reports of this function.
    #[serde(default)]
    pub function: Option<String>,
    /// Per-request wall-clock deadline in milliseconds, mapped onto the
    /// analysis [`rid_core::Budget`]'s global deadline. Functions that
    /// blow the deadline degrade and are listed in the response
    /// envelope's `degraded` array — never silently dropped.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// When true the request is accepted and queued but not executed
    /// until the next non-deferred request (or EOF / `shutdown`)
    /// triggers a drain. Deferring is how clients opt into batching:
    /// queued `patch` requests for the same project coalesce into one
    /// driver run.
    #[serde(default)]
    pub defer: bool,
    /// `register` only: per-project analysis configuration.
    #[serde(default)]
    pub options: Option<ProjectOptions>,
    /// Client-chosen idempotency key. When set, the engine remembers
    /// the response under this key: a later request carrying the same
    /// key (a retry after a lost reply) is answered from that memory
    /// without executing again. Keys must be unique per logical
    /// request; retries resend the identical line.
    #[serde(default)]
    pub idem: Option<String>,
    /// `stats` only: response encoding for the telemetry payload.
    /// `"json"` (the default when omitted) embeds the registry as a
    /// structured `telemetry` object; `"prometheus"` adds a
    /// `prometheus` string holding a text exposition instead.
    #[serde(default)]
    pub format: Option<String>,
    /// `diff` only: the baseline report-hash list (see `REPORTS.md`)
    /// the project's resident reports are compared against. Omitted or
    /// empty means everything resident is `new`.
    #[serde(default)]
    pub baseline: Option<Vec<String>>,
}

impl Request {
    /// A minimal request with the given id, op, and project; the other
    /// fields start empty.
    #[must_use]
    pub fn new(id: u64, op: &str, project: &str) -> Request {
        Request {
            id,
            op: op.to_owned(),
            project: project.to_owned(),
            sources: BTreeMap::new(),
            function: None,
            deadline_ms: None,
            defer: false,
            options: None,
            idem: None,
            format: None,
            baseline: None,
        }
    }

    /// Serializes the request as one protocol line (no trailing
    /// newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        serde_json::to_string(self)
            .unwrap_or_else(|e| fallback_line(Some(self.id), &e.to_string()))
    }
}

/// Per-project analysis configuration, set at `register` time.
///
/// Unset fields keep the driver defaults ([`rid_core::AnalysisOptions`]).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ProjectOptions {
    /// Worker threads for the work-stealing driver (default 1).
    #[serde(default)]
    pub threads: Option<usize>,
    /// §5.2 selective analysis (default true).
    #[serde(default)]
    pub selective: Option<bool>,
    /// Callback-contract extension (default false).
    #[serde(default)]
    pub callbacks: Option<bool>,
    /// Per-function wall-clock deadline in milliseconds.
    #[serde(default)]
    pub func_deadline_ms: Option<u64>,
    /// Solver fuel budget per function.
    #[serde(default)]
    pub fuel: Option<u64>,
    /// Predefined API database: `"dpm"` (default), `"python"`, or
    /// `"none"`.
    #[serde(default)]
    pub apis: Option<String>,
    /// Second-stage refutation pass (default true; see `DESIGN.md` §17).
    #[serde(default)]
    pub refute: Option<bool>,
}

/// Builds a success response line: `{id, ok:true, protocol, result,
/// degraded}`.
///
/// Serialization failure (a payload carrying a non-finite float, say)
/// degrades to a hand-assembled `internal` error envelope instead of
/// panicking — one bad payload must cost one request, not the daemon.
#[must_use]
pub fn ok_line(id: u64, result: Value, degraded: Value) -> String {
    let envelope = serde_json::json!({
        "id": id,
        "ok": true,
        "protocol": PROTOCOL_VERSION,
        "result": result,
        "degraded": degraded,
    });
    serde_json::to_string(&envelope).unwrap_or_else(|e| fallback_line(Some(id), &e.to_string()))
}

/// Builds an error response line: `{id, ok:false, protocol, error:{kind,
/// message}}`. `id` is `null` when the request line could not be parsed
/// far enough to recover one. Falls back like [`ok_line`] rather than
/// panicking.
#[must_use]
pub fn error_line(id: Option<u64>, kind: &str, message: &str) -> String {
    let envelope = serde_json::json!({
        "id": id,
        "ok": false,
        "protocol": PROTOCOL_VERSION,
        "error": serde_json::json!({ "kind": kind, "message": message }),
    });
    serde_json::to_string(&envelope).unwrap_or_else(|e| fallback_line(id, &e.to_string()))
}

/// A hand-assembled error envelope that cannot fail to serialize: the
/// last-resort reply when the real envelope would not. Every byte of
/// `detail` is escaped by hand, so the line is valid JSON no matter
/// what the serializer choked on.
fn fallback_line(id: Option<u64>, detail: &str) -> String {
    let id = id.map_or_else(|| "null".to_owned(), |id| id.to_string());
    let mut message = String::with_capacity(detail.len() + 40);
    message.push_str("response serialization failed: ");
    for c in detail.chars() {
        match c {
            '"' => message.push_str("\\\""),
            '\\' => message.push_str("\\\\"),
            '\n' => message.push_str("\\n"),
            '\r' => message.push_str("\\r"),
            '\t' => message.push_str("\\t"),
            c if (c as u32) < 0x20 => message.push_str(&format!("\\u{:04x}", c as u32)),
            c => message.push(c),
        }
    }
    format!(
        "{{\"id\":{id},\"ok\":false,\"protocol\":\"{PROTOCOL_VERSION}\",\
         \"error\":{{\"kind\":\"internal\",\"message\":\"{message}\"}}}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_with_defaults() {
        let line = r#"{"id":7,"op":"analyze","project":"p"}"#;
        let req: Request = serde_json::from_str(line).unwrap();
        assert_eq!(req.id, 7);
        assert_eq!(req.op, "analyze");
        assert_eq!(req.project, "p");
        assert!(req.sources.is_empty());
        assert!(!req.defer);
        assert!(req.deadline_ms.is_none());
        let back: Request = serde_json::from_str(&req.to_line()).unwrap();
        assert_eq!(back.op, "analyze");
    }

    #[test]
    fn missing_op_is_a_parse_error() {
        assert!(serde_json::from_str::<Request>(r#"{"id":1}"#).is_err());
    }

    #[test]
    fn envelopes_carry_protocol_and_id() {
        let ok: Value =
            serde_json::from_str(&ok_line(3, serde_json::json!({"n": 1}), Value::Seq(vec![])))
                .unwrap();
        assert_eq!(ok["id"].as_i64(), Some(3));
        assert_eq!(ok["ok"].as_bool(), Some(true));
        assert_eq!(ok["protocol"].as_str(), Some(PROTOCOL_VERSION));
        assert_eq!(ok["result"]["n"].as_i64(), Some(1));

        let err: Value = serde_json::from_str(&error_line(None, "parse", "bad json")).unwrap();
        assert!(err["id"].is_null());
        assert_eq!(err["ok"].as_bool(), Some(false));
        assert_eq!(err["error"]["kind"].as_str(), Some("parse"));
    }

    #[test]
    fn idem_key_roundtrips_and_defaults_to_none() {
        let req: Request =
            serde_json::from_str(r#"{"id":1,"op":"analyze","project":"p"}"#).unwrap();
        assert!(req.idem.is_none());
        let req: Request = serde_json::from_str(
            r#"{"id":1,"op":"analyze","project":"p","idem":"k-1"}"#,
        )
        .unwrap();
        assert_eq!(req.idem.as_deref(), Some("k-1"));
        let back: Request = serde_json::from_str(&req.to_line()).unwrap();
        assert_eq!(back.idem.as_deref(), Some("k-1"));
    }

    #[test]
    fn fallback_envelope_is_valid_json_for_hostile_details() {
        let line = fallback_line(Some(9), "quote \" slash \\ newline \n ctl \u{1}");
        let parsed: Value = serde_json::from_str(&line).expect("fallback must parse");
        assert_eq!(parsed["id"].as_i64(), Some(9));
        assert_eq!(parsed["error"]["kind"].as_str(), Some("internal"));
        let none = fallback_line(None, "x");
        let parsed: Value = serde_json::from_str(&none).unwrap();
        assert!(parsed["id"].is_null());
    }
}
