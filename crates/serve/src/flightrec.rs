//! Crash flight recorder: the daemon's black box.
//!
//! A [`BlackBox`] keeps the most recent telemetry registry snapshot in
//! memory (updated by the engine at quiescent points, never on the hot
//! path), and on a panic or fatal error persists it — together with the
//! drained span ring and the degradation census — into
//! `state_dir/flightrec/` as a generation-numbered `RIDFR1` container.
//!
//! The container reuses the snapshot discipline from
//! [`crate::snapshot`]: named sections, a trailing word-FNV checksum
//! verified *before* any parsing, and an atomic staged write. A reader
//! therefore observes either no artifact or a fully-decodable one,
//! never a torn file — the chaos harness sweeps every byte prefix to
//! pin this down.
//!
//! Rendering lives here too (`rid explain --flight-recorder` calls
//! [`render_flight_record`]) so a post-mortem needs only the artifact,
//! not a live daemon.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use rid_core::persist::atomic_write;
use rid_obs::Registry;

use crate::snapshot::checksum64;

/// Magic prefix of a flight-recorder container file.
pub const FLIGHTREC_MAGIC: &[u8; 8] = b"RIDFR1\0\0";
/// Schema tag carried in the `meta` section.
pub const FLIGHTREC_SCHEMA: &str = "rid-serve-flightrec/v1";
/// Subdirectory of the daemon's `--state-dir` that holds artifacts.
pub const FLIGHTREC_DIR: &str = "flightrec";
/// How many generations are kept; older artifacts are garbage-collected
/// on each write.
pub const FLIGHTREC_KEEP: usize = 3;

/// One decoded flight-recorder artifact.
#[derive(Clone, Debug)]
pub struct FlightRecord {
    /// Why the record was written (`panic: …`, `fatal: …`, or
    /// `heartbeat` for the periodic best-effort snapshot).
    pub reason: String,
    /// Telemetry registry JSON (as produced by [`Registry::to_json`]).
    pub registry_json: String,
    /// The registry rendered as a plain-text table, so the artifact is
    /// readable even without the `rid` binary that wrote it.
    pub table: String,
    /// Degradation census JSON: `{reason: count}` from the
    /// `serve.degrade.*` counters at persist time.
    pub census_json: String,
    /// The last-N span ring as trace JSONL (one event per line); empty
    /// when tracing was disabled.
    pub spans_jsonl: String,
}

impl FlightRecord {
    /// Builds a record from a registry snapshot plus the drained span
    /// ring. The degradation census is derived from the registry's
    /// `serve.degrade.*` counters.
    #[must_use]
    pub fn from_registry(reason: &str, registry: &Registry, spans_jsonl: &str) -> FlightRecord {
        let census: BTreeMap<&str, u64> = registry
            .counters()
            .filter_map(|(name, v)| name.strip_prefix("serve.degrade.").map(|r| (r, v)))
            .collect();
        let mut census_json = String::from("{");
        for (i, (reason, count)) in census.iter().enumerate() {
            if i > 0 {
                census_json.push(',');
            }
            census_json.push_str(&format!("{:?}:{count}", reason));
        }
        census_json.push('}');
        FlightRecord {
            reason: reason.to_owned(),
            registry_json: registry.to_json(),
            table: registry.render_table(),
            census_json,
            spans_jsonl: spans_jsonl.to_owned(),
        }
    }
}

/// Serializes a record into `RIDFR1` container bytes.
fn encode(record: &FlightRecord) -> Vec<u8> {
    let meta = format!(
        "{{\"schema\":{:?},\"reason\":{:?}}}",
        FLIGHTREC_SCHEMA, record.reason
    );
    let sections: [(&str, &[u8]); 5] = [
        ("meta", meta.as_bytes()),
        ("registry", record.registry_json.as_bytes()),
        ("table", record.table.as_bytes()),
        ("census", record.census_json.as_bytes()),
        ("spans", record.spans_jsonl.as_bytes()),
    ];
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(FLIGHTREC_MAGIC);
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (name, payload) in sections {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
    }
    let checksum = checksum64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decodes `RIDFR1` container bytes, verifying the checksum before any
/// parsing so a torn or corrupt file fails loudly instead of yielding a
/// half-record.
///
/// # Errors
///
/// Returns `InvalidData` on any truncation, checksum mismatch, foreign
/// magic, or malformed section.
pub fn decode_flight_record(bytes: &[u8]) -> io::Result<FlightRecord> {
    let bad = |m: String| io::Error::new(io::ErrorKind::InvalidData, m);
    if bytes.len() < FLIGHTREC_MAGIC.len() + 4 + 8 {
        return Err(bad("flight record too short".to_owned()));
    }
    let (body, checksum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(checksum_bytes.try_into().expect("8 bytes"));
    if checksum64(body) != stored {
        return Err(bad("flight record checksum mismatch (torn or corrupt file)".to_owned()));
    }
    if &body[..FLIGHTREC_MAGIC.len()] != FLIGHTREC_MAGIC {
        return Err(bad("not a rid flight record (bad magic)".to_owned()));
    }

    let mut at = FLIGHTREC_MAGIC.len();
    let take = |at: &mut usize, n: usize| -> io::Result<&[u8]> {
        let end = at.checked_add(n).filter(|&e| e <= body.len());
        let end = end.ok_or_else(|| bad("flight record truncated".to_owned()))?;
        let slice = &body[*at..end];
        *at = end;
        Ok(slice)
    };
    let count = u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) as usize;
    let mut sections: BTreeMap<String, &[u8]> = BTreeMap::new();
    for _ in 0..count {
        let name_len = u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) as usize;
        let name = std::str::from_utf8(take(&mut at, name_len)?)
            .map_err(|_| bad("section name is not UTF-8".to_owned()))?
            .to_owned();
        let payload_len =
            u64::from_le_bytes(take(&mut at, 8)?.try_into().expect("8 bytes")) as usize;
        sections.insert(name, take(&mut at, payload_len)?);
    }
    let text = |name: &str| -> io::Result<String> {
        let payload = sections
            .get(name)
            .copied()
            .ok_or_else(|| bad(format!("flight record is missing its `{name}` section")))?;
        String::from_utf8(payload.to_vec())
            .map_err(|_| bad(format!("`{name}` section is not UTF-8")))
    };

    let meta = text("meta")?;
    let meta: serde_json::Value = serde_json::from_str(&meta)
        .map_err(|e| bad(format!("bad meta section: {e}")))?;
    let schema = meta["schema"].as_str().unwrap_or_default();
    if schema != FLIGHTREC_SCHEMA {
        return Err(bad(format!(
            "flight record schema mismatch: found {schema:?}, expected {FLIGHTREC_SCHEMA:?}"
        )));
    }
    Ok(FlightRecord {
        reason: meta["reason"].as_str().unwrap_or_default().to_owned(),
        registry_json: text("registry")?,
        table: text("table")?,
        census_json: text("census")?,
        spans_jsonl: text("spans")?,
    })
}

/// Reads and decodes one artifact file.
///
/// # Errors
///
/// Propagates I/O failures and decode failures from
/// [`decode_flight_record`].
pub fn read_flight_record(path: &Path) -> io::Result<FlightRecord> {
    decode_flight_record(&fs::read(path)?)
}

/// Generation number of `fr.N.frec`, if the name matches.
pub fn parse_generation(name: &str) -> Option<u64> {
    name.strip_prefix("fr.")?.strip_suffix(".frec")?.parse().ok()
}

/// Scans a flight-recorder directory for `(generation, path)` pairs,
/// sorted ascending by generation. A missing directory is an empty
/// list, not an error.
///
/// # Errors
///
/// Propagates directory-read failures other than `NotFound`.
pub fn list_flight_records(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(gen) = name.to_str().and_then(parse_generation) {
            found.push((gen, entry.path()));
        }
    }
    found.sort_by_key(|&(gen, _)| gen);
    Ok(found)
}

/// The newest artifact in a flight-recorder directory, if any.
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn latest_flight_record(dir: &Path) -> io::Result<Option<(u64, PathBuf)>> {
    Ok(list_flight_records(dir)?.pop())
}

/// Writes one artifact atomically into `dir` at the next free
/// generation, then garbage-collects all but the newest
/// [`FLIGHTREC_KEEP`] generations. Returns the artifact path.
///
/// # Errors
///
/// Returns an I/O error if the directory cannot be created or the
/// staged write fails; GC failures are swallowed (stale artifacts are
/// harmless).
pub fn write_flight_record(dir: &Path, record: &FlightRecord) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let existing = list_flight_records(dir)?;
    let gen = existing.last().map_or(1, |&(g, _)| g + 1);
    let path = dir.join(format!("fr.{gen}.frec"));
    atomic_write(&path, &encode(record))?;
    if existing.len() + 1 > FLIGHTREC_KEEP {
        for (_, stale) in &existing[..existing.len() + 1 - FLIGHTREC_KEEP] {
            let _ = fs::remove_file(stale);
        }
    }
    Ok(path)
}

/// Renders a record as the human-readable post-mortem shown by
/// `rid explain --flight-recorder`.
#[must_use]
pub fn render_flight_record(gen: u64, record: &FlightRecord) -> String {
    let mut out = String::new();
    out.push_str(&format!("flight record generation {gen}\n"));
    out.push_str(&format!("reason: {}\n", record.reason));
    out.push_str(&format!("degradation census: {}\n", record.census_json));
    out.push_str("\nregistry at time of record:\n");
    out.push_str(&record.table);
    let spans = record.spans_jsonl.lines().count();
    if spans == 0 {
        out.push_str("\nspan ring: empty (tracing disabled)\n");
    } else {
        out.push_str(&format!("\nspan ring: last {spans} event(s)\n"));
        out.push_str(&record.spans_jsonl);
        if !record.spans_jsonl.ends_with('\n') {
            out.push('\n');
        }
    }
    out
}

/// Shared crash-time state: the engine refreshes it at quiescent
/// points; the panic hook and fatal-error paths persist from it without
/// ever touching the engine lock (which the panicking thread may hold).
#[derive(Debug)]
pub struct BlackBox {
    dir: PathBuf,
    latest: Mutex<Registry>,
}

impl BlackBox {
    /// A black box persisting into `state_dir/flightrec/`.
    #[must_use]
    pub fn new(state_dir: &Path) -> BlackBox {
        BlackBox { dir: state_dir.join(FLIGHTREC_DIR), latest: Mutex::new(Registry::new()) }
    }

    /// The directory artifacts are written into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Refreshes the registry snapshot the next crash record will
    /// carry. Called by the engine after each drain.
    pub fn update(&self, registry: Registry) {
        // A poisoned lock means a prior holder panicked mid-update;
        // the stale snapshot is still the best data available.
        match self.latest.lock() {
            Ok(mut slot) => *slot = registry,
            Err(poisoned) => *poisoned.into_inner() = registry,
        }
    }

    /// Persists one artifact from the latest snapshot plus the given
    /// span JSONL. Safe to call from a panic hook: takes only the
    /// black box's own lock, recovering it if poisoned.
    ///
    /// # Errors
    ///
    /// Propagates write failures from [`write_flight_record`].
    pub fn persist(&self, reason: &str, spans_jsonl: &str) -> io::Result<PathBuf> {
        let registry = match self.latest.lock() {
            Ok(slot) => slot.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        let record = FlightRecord::from_registry(reason, &registry, spans_jsonl);
        write_flight_record(&self.dir, &record)
    }
}

/// Installs a panic hook that persists a flight record before the
/// previous hook (backtrace printing) runs. The hook drains the span
/// ring itself; it never touches the engine, so it cannot deadlock on
/// whatever lock the panicking thread holds.
pub fn install_panic_hook(black_box: &Arc<BlackBox>) {
    let black_box = Arc::clone(black_box);
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        let location = info
            .location()
            .map(|l| format!(" at {}:{}", l.file(), l.line()))
            .unwrap_or_default();
        let spans =
            if rid_obs::enabled() { rid_obs::drain().to_jsonl() } else { String::new() };
        let _ = black_box.persist(&format!("panic: {message}{location}"), &spans);
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        r.count("serve.accepted", 7);
        r.count("serve.degrade.deadline", 2);
        r.count("serve.degrade.panic", 1);
        r.gauge("serve.queue.cap", 64);
        for v in [10, 40, 900] {
            r.observe("serve.op.patch.us", v);
        }
        r
    }

    #[test]
    fn flight_record_round_trips_through_the_container() {
        let record = FlightRecord::from_registry(
            "panic: boom at engine.rs:1",
            &sample_registry(),
            "{\"kind\":\"patch\"}\n",
        );
        let decoded = decode_flight_record(&encode(&record)).unwrap();
        assert_eq!(decoded.reason, record.reason);
        assert_eq!(decoded.registry_json, record.registry_json);
        assert_eq!(decoded.table, record.table);
        assert_eq!(decoded.census_json, "{\"deadline\":2,\"panic\":1}");
        assert_eq!(decoded.spans_jsonl, record.spans_jsonl);
        let rendered = render_flight_record(1, &decoded);
        assert!(rendered.contains("reason: panic: boom"));
        assert!(rendered.contains("deadline"));
    }

    #[test]
    fn every_truncation_prefix_is_rejected_never_torn() {
        let record =
            FlightRecord::from_registry("fatal: disk", &sample_registry(), "");
        let bytes = encode(&record);
        for len in 0..bytes.len() {
            assert!(
                decode_flight_record(&bytes[..len]).is_err(),
                "a {len}-byte prefix of a {}-byte record must not decode",
                bytes.len()
            );
        }
        // Flipping any single byte must also fail the checksum.
        for at in [0, bytes.len() / 2, bytes.len() - 1] {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x40;
            assert!(decode_flight_record(&corrupt).is_err(), "corrupt byte {at} must fail");
        }
        assert!(decode_flight_record(&bytes).is_ok());
    }

    #[test]
    fn generations_advance_and_gc_keeps_the_newest() {
        let dir = std::env::temp_dir()
            .join(format!("rid-flightrec-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let record = FlightRecord::from_registry("heartbeat", &sample_registry(), "");
        for expect in 1..=5u64 {
            let path = write_flight_record(&dir, &record).unwrap();
            assert_eq!(parse_generation(path.file_name().unwrap().to_str().unwrap()), Some(expect));
        }
        let kept: Vec<u64> =
            list_flight_records(&dir).unwrap().into_iter().map(|(g, _)| g).collect();
        assert_eq!(kept, vec![3, 4, 5], "GC keeps the newest {FLIGHTREC_KEEP}");
        let (gen, path) = latest_flight_record(&dir).unwrap().unwrap();
        assert_eq!(gen, 5);
        assert!(read_flight_record(&path).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn black_box_persists_the_latest_snapshot() {
        let dir = std::env::temp_dir()
            .join(format!("rid-blackbox-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let bb = BlackBox::new(&dir);
        bb.update(sample_registry());
        let path = bb.persist("fatal: test", "").unwrap();
        let record = read_flight_record(&path).unwrap();
        assert_eq!(record.reason, "fatal: test");
        assert!(record.registry_json.contains("serve.accepted"));
        let _ = fs::remove_dir_all(&dir);
    }
}
