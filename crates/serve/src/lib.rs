//! # rid-serve — the batched, incremental analysis daemon
//!
//! Every other entry point in the workspace is a one-shot CLI run that
//! rebuilds state from scratch unless the user hand-threads `--cache` /
//! `--state` files between invocations. This crate turns the machinery
//! built for warm re-analysis — the work-stealing driver, the
//! content-addressed [`rid_core::SummaryCache`], and
//! [`rid_core::incremental::affected_functions`] — into a long-lived
//! server: one resident project state per registered project, a
//! newline-delimited JSON protocol (see `PROTOCOL.md` at the repository
//! root), and per-project request batching so overlapping `patch`
//! requests collapse into a single re-analysis of the union of their
//! affected functions.
//!
//! The daemon listens on a Unix domain socket ([`serve_unix`]) or, for
//! tests and editor integrations, speaks the same protocol over
//! stdin/stdout ([`serve_stdio`]). Both fronts share one [`Engine`]: a
//! deterministic, single-consumer request queue whose drain loop
//! coalesces patches, maps per-request deadlines onto the existing
//! budget machinery, reports degraded functions in every response
//! envelope, and answers backpressure explicitly when the bounded queue
//! is full. Every executed request (or coalesced batch) is wrapped in a
//! `serve` span so `rid-bench profile` can attribute daemon time.
//!
//! ## Example: one round-trip over the stdio transport
//!
//! ```
//! use rid_serve::{serve_stdio, ServerConfig};
//!
//! // Figure 8 of the paper, served: register a one-module project,
//! // then analyze it. One JSON object per line in, one per line out.
//! let requests = concat!(
//!     r#"{"id":1,"op":"register","project":"demo","sources":{"m.ril":"#,
//!     r#""module m; fn probe(dev) { let ret = pm_runtime_get_sync(dev); "#,
//!     r#"if (ret < 0) { return ret; } ret = helper_update(dev); "#,
//!     r#"pm_runtime_put(dev); return ret; }"}}"#,
//!     "\n",
//!     r#"{"id":2,"op":"analyze","project":"demo"}"#,
//!     "\n",
//! );
//! let mut out = Vec::new();
//! serve_stdio(requests.as_bytes(), &mut out, ServerConfig::default()).unwrap();
//! let out = String::from_utf8(out).unwrap();
//! let lines: Vec<&str> = out.lines().collect();
//! assert_eq!(lines.len(), 2, "one response per request");
//! let analyze: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
//! assert_eq!(analyze["ok"].as_bool(), Some(true));
//! assert_eq!(analyze["result"]["report_count"].as_i64(), Some(1));
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod fault;
pub mod flightrec;
pub mod journal;
pub mod protocol;
pub mod server;
pub mod signal;
pub mod snapshot;

pub use client::{Client, RetryPolicy};
pub use engine::{Engine, ServerConfig};
pub use fault::ServeFaultPlan;
pub use flightrec::{
    install_panic_hook, latest_flight_record, read_flight_record, render_flight_record, BlackBox,
    FlightRecord, FLIGHTREC_DIR,
};
pub use protocol::{ProjectOptions, Request, PROTOCOL_VERSION};
pub use server::{serve_stdio, serve_unix};
