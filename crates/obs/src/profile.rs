//! Aggregation helpers over a drained [`Trace`]: where did the time go?
//!
//! The convention set by rid-core's instrumentation is that child work
//! carries the *same name* as its enclosing span — a `Solve` span inside
//! the execution of function `f` is named `f`. Self-time therefore falls
//! out of simple per-name subtraction, with no need to reconstruct the
//! span tree.

use std::collections::BTreeMap;

use crate::trace::{SpanKind, Trace};

/// Per-name time attribution for one parent span kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Span name (usually the function under analysis).
    pub name: String,
    /// Total wall time of parent-kind spans with this name, ns.
    pub total_ns: u64,
    /// Time attributed to child kinds under the same name, ns.
    pub child_ns: u64,
    /// `total - child` (saturating): time spent in the parent itself.
    pub self_ns: u64,
    /// Number of parent-kind spans with this name.
    pub count: u64,
}

/// Compute per-name self-time for `parent` spans, attributing `children`
/// spans of the same name as nested work. Sorted by descending
/// `self_ns` — index 0 is the hottest name.
pub fn self_times(trace: &Trace, parent: SpanKind, children: &[SpanKind]) -> Vec<PhaseProfile> {
    let mut totals: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    let mut child_time: BTreeMap<&str, u64> = BTreeMap::new();
    for e in &trace.events {
        if e.kind == parent {
            let slot = totals.entry(&e.name).or_insert((0, 0));
            slot.0 += e.dur_ns;
            slot.1 += 1;
        } else if children.contains(&e.kind) {
            *child_time.entry(&e.name).or_insert(0) += e.dur_ns;
        }
    }
    let mut out: Vec<PhaseProfile> = totals
        .into_iter()
        .map(|(name, (total_ns, count))| {
            let child_ns = child_time.get(name).copied().unwrap_or(0).min(total_ns);
            PhaseProfile {
                name: name.to_owned(),
                total_ns,
                child_ns,
                self_ns: total_ns - child_ns,
                count,
            }
        })
        .collect();
    out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
    out
}

/// Largest `value` payload per name for the given kind, sorted
/// descending — e.g. with [`SpanKind::Enumerate`] this ranks the worst
/// path-explosion offenders.
pub fn max_value_by_name(trace: &Trace, kind: SpanKind) -> Vec<(String, u64)> {
    let mut best: BTreeMap<&str, u64> = BTreeMap::new();
    for e in &trace.events {
        if e.kind == kind {
            let slot = best.entry(&e.name).or_insert(0);
            *slot = (*slot).max(e.value);
        }
    }
    let mut out: Vec<(String, u64)> =
        best.into_iter().map(|(k, v)| (k.to_owned(), v)).collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn ev(kind: SpanKind, name: &str, dur_ns: u64, value: u64) -> TraceEvent {
        TraceEvent {
            kind,
            name: name.to_owned(),
            thread: 0,
            seq: 0,
            start_ns: 0,
            dur_ns,
            instant: false,
            value,
        }
    }

    #[test]
    fn self_time_subtracts_children_per_name() {
        let trace = Trace {
            events: vec![
                ev(SpanKind::Exec, "hot", 1000, 0),
                ev(SpanKind::Solve, "hot", 300, 0),
                ev(SpanKind::Solve, "hot", 200, 0),
                ev(SpanKind::Enumerate, "hot", 100, 8),
                ev(SpanKind::Exec, "cold", 50, 0),
            ],
            dropped: 0,
        };
        let profiles =
            self_times(&trace, SpanKind::Exec, &[SpanKind::Solve, SpanKind::Enumerate]);
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].name, "hot");
        assert_eq!(profiles[0].total_ns, 1000);
        assert_eq!(profiles[0].child_ns, 600);
        assert_eq!(profiles[0].self_ns, 400);
        assert_eq!(profiles[1].name, "cold");
        assert_eq!(profiles[1].self_ns, 50);
    }

    #[test]
    fn child_time_saturates_at_total() {
        let trace = Trace {
            events: vec![
                ev(SpanKind::Exec, "f", 100, 0),
                ev(SpanKind::Solve, "f", 500, 0),
            ],
            dropped: 0,
        };
        let p = self_times(&trace, SpanKind::Exec, &[SpanKind::Solve]);
        assert_eq!(p[0].self_ns, 0);
        assert_eq!(p[0].child_ns, 100);
    }

    #[test]
    fn explosion_ranking() {
        let trace = Trace {
            events: vec![
                ev(SpanKind::Enumerate, "a", 0, 4),
                ev(SpanKind::Enumerate, "b", 0, 4096),
                ev(SpanKind::Enumerate, "a", 0, 16),
            ],
            dropped: 0,
        };
        let ranked = max_value_by_name(&trace, SpanKind::Enumerate);
        assert_eq!(ranked, vec![("b".to_owned(), 4096), ("a".to_owned(), 16)]);
    }
}
