//! # rid-obs — observability for the RID reproduction
//!
//! Three small, dependency-free pieces:
//!
//! * [`trace`] — a zero-cost-when-disabled span/event tracing layer.
//!   Threads record into thread-local **ring buffers** (no locks on the
//!   hot path, one relaxed atomic load when disabled); buffers flush
//!   into a global sink when a thread exits or on [`trace::drain`].
//!   A drained [`trace::Trace`] exports as JSONL (one event per line)
//!   or Chrome `trace_event` JSON that loads directly in
//!   `chrome://tracing` / Perfetto.
//! * [`metrics`] — a registry of named counters, gauges, and log₂-bucket
//!   histograms, rendered as JSON or a plain-text table. The registry is
//!   a passive snapshot type: producers (rid-core) build one from their
//!   own counters, so the hot path never touches it.
//! * [`profile`] — aggregation helpers over a drained trace: per-name
//!   span totals, self-time (parent minus attributed children), and
//!   worst path-explosion offenders.
//!
//! The crate deliberately depends on nothing — it sits below every other
//! workspace crate so any layer can emit events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod profile;
pub mod trace;

pub use metrics::{Histogram, Registry};
pub use profile::{max_value_by_name, self_times, PhaseProfile};
pub use trace::{
    chrome_json_merged, drain, enable, enabled, event, span, ChromeLane, SpanKind, Trace,
    TraceEvent,
};
