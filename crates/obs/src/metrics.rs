//! A passive metrics registry: named counters, gauges, and log₂-bucket
//! histograms.
//!
//! The registry is a plain data structure, not a global — producers own
//! their counters (e.g. `AnalysisStats` in rid-core) and *snapshot* them
//! into a [`Registry`] when asked. That keeps the analysis hot path free
//! of metric plumbing while giving every consumer (the `--metrics` CLI
//! flag, the `profile` bench bin, CI) one named, stable vocabulary.
//!
//! Naming convention: dot-separated lowercase paths, most significant
//! first — `sat.queries`, `cache.hits`, `degrade.deadline`,
//! `phase.exec.self_ns`.

use std::collections::BTreeMap;

use crate::trace::json_escape;

/// A log₂-bucket histogram of `u64` samples.
///
/// Bucket `i` counts samples `v` with `bit_len(v) == i`, i.e. bucket 0
/// is exactly `0`, bucket 1 is `1`, bucket 2 is `2..=3`, bucket 3 is
/// `4..=7`, and so on — 65 buckets cover the full `u64` range.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    buckets: Vec<u64>,
}

fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Lower bound of bucket `i` (inclusive).
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        let i = bucket_index(v);
        if self.buckets.len() <= i {
            self.buckets.resize(i + 1, 0);
        }
        self.buckets[i] += 1;
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile: the lower bound of the bucket holding the
    /// q-th sample (`q` in `[0, 1]`). Coarse by design — log₂ buckets
    /// trade precision for constant memory.
    ///
    /// Error bound: the true q-th sample lies in `[lo, 2·lo)` for the
    /// returned lower bound `lo`, so the report understates by at most
    /// one power of two (a factor-of-2 relative error, never an
    /// overestimate). `count`, `sum`, `min`, `max`, and therefore
    /// `mean` are exact.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_lo(i);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn sparse_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_lo(i), n))
            .collect()
    }

    /// Rebuild a histogram from a `sparse_buckets()`-shaped snapshot.
    /// The inverse of [`Histogram::sparse_buckets`] up to the per-sample
    /// detail the buckets never held; `count`/`sum`/`min`/`max` are taken
    /// verbatim so means stay exact. This is how producers that carry
    /// histogram snapshots across serialization boundaries (e.g. per-worker
    /// scheduler profiles in rid-core's `AnalysisStats`) re-enter the
    /// registry.
    pub fn from_parts(count: u64, sum: u64, min: u64, max: u64, buckets: &[(u64, u64)]) -> Histogram {
        let mut h = Histogram { count, sum, min, max, buckets: Vec::new() };
        for &(lo, n) in buckets {
            let i = bucket_index(lo);
            if h.buckets.len() <= i {
                h.buckets.resize(i + 1, 0);
            }
            h.buckets[i] += n;
        }
        h
    }

    /// Fold another histogram into this one (bucket-wise sum; min/max/sum
    /// combine exactly).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &n) in other.buckets.iter().enumerate() {
            self.buckets[i] += n;
        }
    }
}

/// Named counters, gauges, and histograms.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add to (creating if absent) a named counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Set a named gauge to a point-in-time value.
    pub fn gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Record a sample into a named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_owned()).or_default().record(value);
    }

    /// Fold a whole pre-built histogram into a named histogram (merging
    /// with whatever is already there).
    pub fn insert_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms.entry(name.to_owned()).or_default().merge(h);
    }

    /// Read a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Read a gauge if set.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Read a histogram if any samples were recorded under the name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Fold another registry into this one: counters add, gauges combine
    /// by max (point-in-time values observed by concurrent processes are
    /// not summable), histograms merge bucket-exactly. The operation is
    /// associative and commutative, so K shard registries reduce to the
    /// same result in any order — what lets the multi-process
    /// coordinator fold worker telemetry without caring about join
    /// order.
    pub fn merge(&mut self, other: &Registry) {
        for (k, &v) in &other.counters {
            self.count(k, v);
        }
        for (k, &v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(v);
            *slot = (*slot).max(v);
        }
        for (k, h) in &other.histograms {
            self.insert_histogram(k, h);
        }
    }

    /// Render the whole registry as a deterministic JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
    /// min,max,mean,p50,p90,p99,p999,buckets:[[lo,n],...]}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(k), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(k), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
                json_escape(k),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.quantile(0.999),
            ));
            for (j, (lo, n)) in h.sparse_buckets().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{},{}]", lo, n));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Render a plain-text summary table (for terminals / bench output).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max(6);
        for (k, v) in &self.counters {
            out.push_str(&format!("{:width$}  {:>12}\n", k, v, width = width));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{:width$}  {:>12}\n", k, v, width = width));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{:width$}  count={} mean={} p50={} p90={} p99={} p999={} max={}\n",
                k,
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.quantile(0.999),
                h.max,
                width = width
            ));
        }
        out
    }

    /// Render the registry in the Prometheus text exposition format
    /// (version 0.0.4). Metric names are prefixed with `rid_` and every
    /// character outside `[a-zA-Z0-9_]` becomes `_`. Counters and gauges
    /// emit one sample each; histograms emit a Prometheus *summary* —
    /// `{quantile="0.5"|"0.9"|"0.99"|"0.999"}` samples derived from the
    /// log₂ buckets (see [`Histogram::quantile`] for the error bound)
    /// plus exact `_sum` and `_count` samples.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = prometheus_name(k);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let name = prometheus_name(k);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (k, h) in &self.histograms {
            let name = prometheus_name(k);
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, label) in
                [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99"), (0.999, "0.999")]
            {
                out.push_str(&format!(
                    "{name}{{quantile=\"{label}\"}} {}\n",
                    h.quantile(q)
                ));
            }
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }
}

/// `rid_`-prefixed Prometheus-legal metric name: anything outside
/// `[a-zA-Z0-9_]` collapses to `_`.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("rid_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 1, 3, 4, 7, 100] {
            h.record(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100);
        assert_eq!(h.sum, 116);
        // Buckets: 0→1, [1]→2, [2,3]→1, [4,7]→2, [64,127]→1.
        assert_eq!(h.sparse_buckets(), vec![(0, 1), (1, 2), (2, 1), (4, 2), (64, 1)]);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(1.0), 64);
    }

    #[test]
    fn registry_json_is_deterministic() {
        let mut r = Registry::new();
        r.count("sat.queries", 10);
        r.count("sat.queries", 5);
        r.count("cache.hits", 2);
        r.gauge("sched.workers", 4);
        r.observe("phase.exec.self_ns", 1000);
        r.observe("phase.exec.self_ns", 3000);
        let json = r.to_json();
        assert!(json.starts_with("{\"counters\":{\"cache.hits\":2,\"sat.queries\":15}"));
        assert!(json.contains("\"gauges\":{\"sched.workers\":4}"));
        assert!(json.contains("\"phase.exec.self_ns\":{\"count\":2"));
        assert_eq!(r.counter("sat.queries"), 15);
        assert_eq!(r.gauge_value("sched.workers"), Some(4));
        let table = r.render_table();
        assert!(table.contains("sat.queries"));
        assert!(table.contains("count=2"));
    }

    #[test]
    fn from_parts_round_trips_sparse_buckets() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 1, 3, 4, 7, 100] {
            h.record(v);
        }
        let rebuilt =
            Histogram::from_parts(h.count, h.sum, h.min, h.max, &h.sparse_buckets());
        assert_eq!(rebuilt, h);
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut all = Histogram::default();
        for v in [2u64, 9, 0, 31] {
            a.record(v);
            all.record(v);
        }
        for v in [5u64, 5, 1024] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merging into an empty histogram copies; merging empty is a no-op.
        let mut empty = Histogram::default();
        empty.merge(&all);
        assert_eq!(empty, all);
        all.merge(&Histogram::default());
        assert_eq!(empty, all);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::default();
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.sparse_buckets().is_empty());
    }

    #[test]
    fn json_and_table_carry_tail_quantiles() {
        let mut r = Registry::new();
        for v in 0..1000u64 {
            r.observe("serve.op.analyze.us", v);
        }
        let json = r.to_json();
        assert!(json.contains("\"p99\":"));
        assert!(json.contains("\"p999\":512"), "{json}");
        assert!(r.render_table().contains("p999=512"));
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let mut r = Registry::new();
        r.count("serve.requests", 3);
        r.gauge("serve.queue.depth", -1);
        r.observe("serve.op.patch.us", 100);
        r.observe("serve.op.patch.us", 900);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE rid_serve_requests counter\nrid_serve_requests 3\n"));
        assert!(text.contains("# TYPE rid_serve_queue_depth gauge\nrid_serve_queue_depth -1\n"));
        assert!(text.contains("# TYPE rid_serve_op_patch_us summary\n"));
        assert!(text.contains("rid_serve_op_patch_us{quantile=\"0.5\"} 64\n"));
        assert!(text.contains("rid_serve_op_patch_us{quantile=\"0.999\"} 512\n"));
        assert!(text.contains("rid_serve_op_patch_us_sum 1000\n"));
        assert!(text.contains("rid_serve_op_patch_us_count 2\n"));
        // Every line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE rid_")
                    || line
                        .split_once(' ')
                        .is_some_and(|(n, v)| n.starts_with("rid_") && v.parse::<i64>().is_ok()),
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn registry_merge_is_associative_and_commutative() {
        let part = |seed: u64| {
            let mut r = Registry::new();
            r.count("serve.requests", seed + 1);
            r.gauge("serve.queue.depth", seed as i64);
            for i in 0..seed + 3 {
                r.observe("serve.op.analyze.us", seed * 100 + i * 7);
            }
            r
        };
        let (a, b, c) = (part(1), part(2), part(3));

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut a_bc = b.clone();
        a_bc.merge(&c);
        let mut left = a.clone();
        left.merge(&a_bc);
        assert_eq!(ab_c.to_json(), left.to_json(), "merge must be associative");

        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.to_json(), ba.to_json(), "merge must be commutative");

        // Histogram folding is sum-exact: count/sum equal recording
        // every sample into one registry.
        let h = ab_c.histogram("serve.op.analyze.us").unwrap();
        assert_eq!(h.count, 4 + 5 + 6);
        assert_eq!(ab_c.counter("serve.requests"), 2 + 3 + 4);
    }

    /// Property test over K randomly generated shard registries: any
    /// merge order reduces to the same registry, and every histogram's
    /// count/sum/min/max exactly equal recording all samples into one
    /// registry directly (the contract the multi-process coordinator and
    /// the daemon's per-shard fold both rely on).
    #[test]
    fn merging_k_shard_registries_is_order_free_and_sum_exact() {
        // Deterministic xorshift so failures reproduce.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let names = ["serve.op.patch.us", "serve.op.analyze.us", "serve.queue.depth"];
        for trial in 0..20 {
            let k = 2 + (next() % 7) as usize;
            let mut parts: Vec<Registry> = Vec::new();
            let mut reference = Registry::new();
            for _ in 0..k {
                let mut part = Registry::new();
                for _ in 0..(next() % 40) {
                    let name = names[(next() % names.len() as u64) as usize];
                    let sample = next() % 1_000_000;
                    part.observe(name, sample);
                    reference.observe(name, sample);
                }
                let bump = next() % 100;
                part.count("serve.accepted", bump);
                reference.count("serve.accepted", bump);
                parts.push(part);
            }

            // Forward fold, reverse fold, and a pairwise tree fold must
            // all equal the single-registry reference.
            let fold = |order: &[usize]| {
                let mut acc = Registry::new();
                for &i in order {
                    acc.merge(&parts[i]);
                }
                acc
            };
            let forward: Vec<usize> = (0..k).collect();
            let reverse: Vec<usize> = (0..k).rev().collect();
            let folded = fold(&forward);
            assert_eq!(folded.to_json(), fold(&reverse).to_json(), "trial {trial}");
            assert_eq!(folded.to_json(), reference.to_json(), "trial {trial}");
            for name in names {
                let (merged, reference) = (folded.histogram(name), reference.histogram(name));
                assert_eq!(merged, reference, "trial {trial}: {name} not sum-exact");
            }
        }
    }
}
