//! Span/event tracing with thread-local ring buffers.
//!
//! Design goals, in order:
//!
//! 1. **Zero cost when disabled.** Every entry point starts with one
//!    `Relaxed` load of a global [`AtomicBool`]; when it reads `false`
//!    nothing else happens — no allocation, no clock read, no lock.
//! 2. **No locks on the hot path when enabled.** Events land in a
//!    thread-local ring buffer. The only global lock (the sink) is taken
//!    when a thread exits or when [`drain`] is called.
//! 3. **Deterministic ordering.** Every span/event draws a ticket from a
//!    global sequence counter *at start time*; [`drain`] sorts by that
//!    ticket, so a single-threaded run always produces the same event
//!    order regardless of timer resolution.
//!
//! Ring semantics: each thread keeps at most `capacity` events (set by
//! [`enable`]); when full, the oldest event is overwritten and a dropped
//! counter ticks up. This bounds memory on pathological runs while
//! keeping the most recent window, which is what you want when staring
//! at a trace of the run that just misbehaved.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The categories of work the RID pipeline distinguishes.
///
/// All but the last two are *span* kinds — they bracket a region of
/// wall clock. The last two are *instant* kinds — point events recording
/// a degradation or an injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Parsing + lowering RIL source onto the IR.
    Lower,
    /// Path enumeration over a function's CFG.
    Enumerate,
    /// Symbolic execution of the enumerated paths (tree or per-path).
    Exec,
    /// A single difference-logic satisfiability query.
    Solve,
    /// Inconsistent-path-pair checking over a function's path entries.
    IppCheck,
    /// Second-stage refutation of one IPP report (exact re-check of the
    /// joint constraints); the value records the verdict (0 = refuted,
    /// 1 = confirmed, 2 = inconclusive).
    Refute,
    /// A persistent-summary-cache probe for one component.
    CacheLookup,
    /// A work-stealing scan over sibling deques.
    Steal,
    /// One request (or coalesced request batch) executed by the
    /// `rid serve` daemon; the value records how many client requests
    /// the execution answered (> 1 only for coalesced `patch` batches).
    Serve,
    /// Serialization of one resident project to the daemon's state
    /// directory; the value records the snapshot size in bytes.
    Snapshot,
    /// Rebuild of one resident project from a snapshot at daemon
    /// startup; the value records the snapshot size in bytes.
    Restore,
    /// Replay of the write-ahead patch journal after a restore; the
    /// value records how many journaled requests were re-applied.
    JournalReplay,
    /// Instant event: a function degraded (budget, panic, retry…).
    Degrade,
    /// Instant event: the fault plan injected a fault.
    Fault,
}

impl SpanKind {
    /// Stable lowercase label used in JSONL `kind` and Chrome `cat`.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Lower => "lower",
            SpanKind::Enumerate => "enumerate",
            SpanKind::Exec => "exec",
            SpanKind::Solve => "solve",
            SpanKind::IppCheck => "ipp-check",
            SpanKind::Refute => "refute",
            SpanKind::CacheLookup => "cache-lookup",
            SpanKind::Steal => "steal",
            SpanKind::Serve => "serve",
            SpanKind::Snapshot => "snapshot",
            SpanKind::Restore => "restore",
            SpanKind::JournalReplay => "journal-replay",
            SpanKind::Degrade => "degrade",
            SpanKind::Fault => "fault",
        }
    }

    /// Inverse of [`SpanKind::label`]: parses the stable lowercase label
    /// back into its kind. `None` for unknown labels, so readers of
    /// foreign `.trace.jsonl` files can skip lines written by a newer
    /// schema instead of failing.
    pub fn from_label(label: &str) -> Option<SpanKind> {
        SpanKind::all().into_iter().find(|k| k.label() == label)
    }

    /// All span kinds, in pipeline order.
    pub fn all() -> [SpanKind; 14] {
        [
            SpanKind::Lower,
            SpanKind::Enumerate,
            SpanKind::Exec,
            SpanKind::Solve,
            SpanKind::IppCheck,
            SpanKind::Refute,
            SpanKind::CacheLookup,
            SpanKind::Steal,
            SpanKind::Serve,
            SpanKind::Snapshot,
            SpanKind::Restore,
            SpanKind::JournalReplay,
            SpanKind::Degrade,
            SpanKind::Fault,
        ]
    }
}

/// One recorded span or instant event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Category of work.
    pub kind: SpanKind,
    /// Human-readable name (usually the function under analysis).
    pub name: String,
    /// Small dense id of the recording thread.
    pub thread: usize,
    /// Global start-order ticket; the deterministic sort key.
    pub seq: u64,
    /// Nanoseconds since the trace epoch at span start.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// True for point events (`Degrade`, `Fault`, steal scans).
    pub instant: bool,
    /// Free payload: path counts, solver depth, victim index…
    pub value: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Bumped by every [`enable`]; thread-local buffers compare against it
/// so the participation census below restarts per tracing session.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// Threads that recorded at least one event this generation.
static PARTICIPATING: AtomicUsize = AtomicUsize::new(0);
/// Participating threads that have flushed at least once this
/// generation — at quiescence the two counts must agree, or spans are
/// being lost (see [`flush_counts`]).
static FLUSHED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Default per-thread ring capacity (events).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn sink() -> &'static Mutex<Vec<TraceEvent>> {
    static SINK: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// Fixed-capacity ring: overwrites the oldest event when full.
struct Ring {
    buf: Vec<TraceEvent>,
    cap: usize,
    head: usize,
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring { buf: Vec::new(), cap: cap.max(1), head: 0, dropped: 0 }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn take(&mut self) -> Vec<TraceEvent> {
        self.head = 0;
        std::mem::take(&mut self.buf)
    }
}

struct ThreadBuf {
    id: usize,
    ring: Ring,
    /// Generation in which this thread last recorded an event.
    active_gen: u64,
    /// Generation in which this thread last flushed.
    flushed_gen: u64,
}

impl ThreadBuf {
    fn push(&mut self, ev: TraceEvent) {
        let gen = GENERATION.load(Ordering::Relaxed);
        if self.active_gen != gen {
            self.active_gen = gen;
            PARTICIPATING.fetch_add(1, Ordering::Relaxed);
        }
        self.ring.push(ev);
    }

    fn flush(&mut self) {
        let gen = GENERATION.load(Ordering::Relaxed);
        if self.active_gen == gen && self.flushed_gen != gen {
            self.flushed_gen = gen;
            FLUSHED_THREADS.fetch_add(1, Ordering::Relaxed);
        }
        let events = self.ring.take();
        if self.ring.dropped > 0 {
            DROPPED.fetch_add(self.ring.dropped, Ordering::Relaxed);
            self.ring.dropped = 0;
        }
        if !events.is_empty() {
            sink().lock().expect("trace sink poisoned").extend(events);
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<ThreadBuf> = RefCell::new(ThreadBuf {
        id: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
        ring: Ring::new(CAPACITY.load(Ordering::Relaxed)),
        active_gen: 0,
        flushed_gen: 0,
    });
}

/// Is tracing currently enabled? One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn tracing on with the given per-thread ring capacity and clear any
/// previously drained-but-unread events. Typically called once before an
/// analysis run; pass [`DEFAULT_CAPACITY`] unless you know better.
pub fn enable(per_thread_capacity: usize) {
    epoch();
    CAPACITY.store(per_thread_capacity.max(1), Ordering::Relaxed);
    sink().lock().expect("trace sink poisoned").clear();
    DROPPED.store(0, Ordering::Relaxed);
    GENERATION.fetch_add(1, Ordering::Relaxed);
    PARTICIPATING.store(0, Ordering::Relaxed);
    FLUSHED_THREADS.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn tracing off. Events already recorded stay buffered until
/// [`drain`] is called.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

fn record(ev: TraceEvent) {
    LOCAL.with(|b| b.borrow_mut().push(ev));
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// RAII guard for a timed span. Records an event when dropped (if
/// tracing was enabled at creation time).
pub struct Span {
    live: Option<SpanStart>,
}

struct SpanStart {
    kind: SpanKind,
    name: String,
    seq: u64,
    start_ns: u64,
    value: u64,
}

impl Span {
    /// Attach a payload value (path count, solver depth…) to the span.
    #[inline]
    pub fn set_value(&mut self, value: u64) {
        if let Some(live) = self.live.as_mut() {
            live.value = value;
        }
    }

    /// Rename the span before it records. For spans whose meaning is only
    /// known at the end — the scheduler's victim scan becomes a `steal`
    /// on success but stays a `scan` (failed full sweep) otherwise —
    /// renaming keeps the two outcomes distinguishable in traces.
    #[inline]
    pub fn set_name(&mut self, name: &str) {
        if let Some(live) = self.live.as_mut() {
            live.name.clear();
            live.name.push_str(name);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let end = now_ns();
            record(TraceEvent {
                kind: live.kind,
                name: live.name,
                thread: thread_id(),
                seq: live.seq,
                start_ns: live.start_ns,
                dur_ns: end.saturating_sub(live.start_ns),
                instant: false,
                value: live.value,
            });
        }
    }
}

fn thread_id() -> usize {
    LOCAL.with(|b| b.borrow().id)
}

/// Open a span. Returns an inert guard (no allocation, no clock read)
/// when tracing is disabled.
#[inline]
pub fn span(kind: SpanKind, name: &str) -> Span {
    if !enabled() {
        return Span { live: None };
    }
    Span {
        live: Some(SpanStart {
            kind,
            name: name.to_owned(),
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            start_ns: now_ns(),
            value: 0,
        }),
    }
}

/// Record an instant event. No-op when tracing is disabled.
#[inline]
pub fn event(kind: SpanKind, name: &str, value: u64) {
    if !enabled() {
        return;
    }
    record(TraceEvent {
        kind,
        name: name.to_owned(),
        thread: thread_id(),
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        start_ns: now_ns(),
        dur_ns: 0,
        instant: true,
        value,
    });
}

/// Flush the *current* thread's ring into the global sink.
///
/// Worker threads **must** call this before their closure returns:
/// `std::thread::scope` can unblock the spawner before a finished
/// worker's TLS destructors run, so the Drop-flush alone would race a
/// subsequent [`drain`]. The Drop impl remains as a backstop for
/// ordinary (non-scoped) thread exit.
pub fn flush_thread() {
    LOCAL.with(|b| b.borrow_mut().flush());
}

/// The per-generation flush census: `(participating, flushed)` thread
/// counts since the last [`enable`]. A thread *participates* the first
/// time it records an event; it counts as *flushed* the first time it
/// moves its ring into the sink (via [`flush_thread`], thread exit, or
/// [`drain`]). At any quiescent point — all recording threads joined or
/// flushed — the two must be equal; a gap means spans are sitting in a
/// live thread's ring and would be missing from a [`drain`].
#[must_use]
pub fn flush_counts() -> (usize, usize) {
    (PARTICIPATING.load(Ordering::Relaxed), FLUSHED_THREADS.load(Ordering::Relaxed))
}

/// Debug-assert the flush census balances (after flushing the calling
/// thread). Call at points where every spawned worker is known to have
/// exited — the end of a scoped-worker region, or a shard worker's exit
/// path — to catch span loss in development builds. Free of effect in
/// release builds beyond the (idempotent) self-flush.
pub fn assert_all_flushed() {
    flush_thread();
    let (participating, flushed) = flush_counts();
    debug_assert_eq!(
        participating, flushed,
        "trace span loss: {participating} thread(s) recorded events but only \
         {flushed} flushed — a worker exited without calling flush_thread()"
    );
}

/// Collect everything recorded so far into a [`Trace`], sorted by start
/// ticket. Flushes the calling thread first; other threads contribute
/// whatever they flushed via [`flush_thread`] or thread exit.
pub fn drain() -> Trace {
    flush_thread();
    let mut events = std::mem::take(&mut *sink().lock().expect("trace sink poisoned"));
    events.sort_by_key(|e| e.seq);
    Trace { events, dropped: DROPPED.swap(0, Ordering::Relaxed) }
}

/// A drained, ordered batch of trace events.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Events sorted by start ticket.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring-buffer overwrites (0 unless a thread
    /// out-recorded its capacity).
    pub dropped: u64,
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Trace {
    /// How many events of the given kind were recorded.
    pub fn count_kind(&self, kind: SpanKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// One JSON object per line, in deterministic start order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&Self::jsonl_line(e, e.seq, e.thread, e.start_ns, e.dur_ns));
            out.push('\n');
        }
        out
    }

    /// JSONL with timestamps replaced by ordinals, durations zeroed, and
    /// thread ids remapped to first-appearance rank — byte-stable across
    /// runs for a deterministic workload, which is what the golden test
    /// pins.
    pub fn to_jsonl_normalized(&self) -> String {
        let mut thread_rank: BTreeMap<usize, usize> = BTreeMap::new();
        let mut out = String::new();
        for (i, e) in self.events.iter().enumerate() {
            let next = thread_rank.len();
            let tid = *thread_rank.entry(e.thread).or_insert(next);
            out.push_str(&Self::jsonl_line(e, i as u64, tid, i as u64, 0));
            out.push('\n');
        }
        out
    }

    fn jsonl_line(e: &TraceEvent, seq: u64, thread: usize, start_ns: u64, dur_ns: u64) -> String {
        format!(
            "{{\"seq\":{},\"kind\":\"{}\",\"name\":\"{}\",\"ph\":\"{}\",\"thread\":{},\"start_ns\":{},\"dur_ns\":{},\"value\":{}}}",
            seq,
            e.kind.label(),
            json_escape(&e.name),
            if e.instant { "instant" } else { "span" },
            thread,
            start_ns,
            dur_ns,
            e.value,
        )
    }

    /// Chrome `trace_event` JSON (the `{"traceEvents":[...]}` object
    /// format). Spans become complete (`ph:"X"`) events, instants become
    /// thread-scoped instant (`ph:"i"`) events; timestamps are
    /// microseconds as the format requires. Loads directly in
    /// `chrome://tracing` and Perfetto. Single-process traces render
    /// under pid lane 1; for a multi-process timeline use
    /// [`chrome_json_merged`].
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        push_chrome_events(&mut out, &self.events, 1, true);
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

fn push_chrome_events(out: &mut String, events: &[TraceEvent], pid: u64, mut first: bool) {
    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        let ts = e.start_ns as f64 / 1000.0;
        if e.instant {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"value\":{}}}}}",
                json_escape(&e.name),
                e.kind.label(),
                ts,
                pid,
                e.thread,
                e.value,
            ));
        } else {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"value\":{}}}}}",
                json_escape(&e.name),
                e.kind.label(),
                ts,
                e.dur_ns as f64 / 1000.0,
                pid,
                e.thread,
                e.value,
            ));
        }
    }
}

/// One process lane of a merged multi-process Chrome trace.
pub struct ChromeLane<'a> {
    /// Chrome `pid` for the lane — use the real OS process id so the
    /// coordinator and each shard worker render as distinct lanes.
    pub pid: u64,
    /// Lane label, shown by Chrome as the process name (e.g.
    /// `rid coordinator`, `shard worker 0.2`).
    pub name: String,
    /// The lane's events (each process's drained trace).
    pub events: &'a [TraceEvent],
}

/// Stitch per-process traces into one Chrome `trace_event` JSON: each
/// lane gets a `process_name` metadata event plus all its events under
/// its own `pid`, so a `--processes 4` run reads as a single timeline
/// with the coordinator and every shard worker as separate lanes. The
/// shared `trace_id` that tied the processes together is recorded in
/// `otherData` (and shows up in Perfetto's trace info).
///
/// Timestamps are left as each process recorded them — every process
/// measures from its own trace epoch (its first enable), so lanes are
/// aligned to process start rather than to one global clock. Relative
/// ordering *within* a lane is exact.
#[must_use]
pub fn chrome_json_merged(lanes: &[ChromeLane<'_>], trace_id: u64) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for lane in lanes {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            lane.pid,
            json_escape(&lane.name),
        ));
        push_chrome_events(&mut out, lane.events, lane.pid, false);
    }
    out.push_str(&format!(
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"trace_id\":\"{trace_id:016x}\"}}}}"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Tracing state is process-global; tests that flip it must not
    /// interleave.
    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: OnceLock<StdMutex<()>> = OnceLock::new();
        match GUARD.get_or_init(|| StdMutex::new(())).lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock();
        disable();
        drop(drain());
        {
            let _s = span(SpanKind::Exec, "f");
            event(SpanKind::Degrade, "x", 1);
        }
        assert!(drain().events.is_empty());
    }

    #[test]
    fn spans_and_events_round_trip() {
        let _g = lock();
        enable(DEFAULT_CAPACITY);
        {
            let mut s = span(SpanKind::Exec, "outer");
            s.set_value(7);
            let _inner = span(SpanKind::Solve, "outer");
            event(SpanKind::Degrade, "deadline:outer", 1);
        }
        disable();
        let t = drain();
        assert_eq!(t.events.len(), 3);
        // Sorted by start ticket: outer opened first.
        assert_eq!(t.events[0].kind, SpanKind::Exec);
        assert_eq!(t.events[0].value, 7);
        assert_eq!(t.events[1].kind, SpanKind::Solve);
        assert_eq!(t.events[2].kind, SpanKind::Degrade);
        assert!(t.events[2].instant);
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let _g = lock();
        enable(4);
        for i in 0..10 {
            event(SpanKind::Steal, "s", i);
        }
        disable();
        let t = drain();
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.dropped, 6);
        // The survivors are the newest four, still in order.
        let values: Vec<u64> = t.events.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![6, 7, 8, 9]);
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        let _g = lock();
        enable(DEFAULT_CAPACITY);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    {
                        let _s = span(SpanKind::Exec, "worker");
                    }
                    flush_thread();
                });
            }
        });
        disable();
        let t = drain();
        assert_eq!(t.count_kind(SpanKind::Exec), 2);
        let threads: std::collections::BTreeSet<usize> =
            t.events.iter().map(|e| e.thread).collect();
        assert_eq!(threads.len(), 2);
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        for kind in SpanKind::all() {
            assert_eq!(SpanKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(SpanKind::from_label("no-such-kind"), None);
    }

    #[test]
    fn flush_census_balances_at_drain() {
        let _g = lock();
        enable(DEFAULT_CAPACITY);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    event(SpanKind::Steal, "s", 1);
                    flush_thread();
                });
            }
        });
        event(SpanKind::Exec, "main", 0);
        disable();
        assert_all_flushed();
        let (participating, flushed) = flush_counts();
        assert_eq!(participating, 4, "3 workers + the main thread recorded");
        assert_eq!(participating, flushed);
        drop(drain());
    }

    #[test]
    fn merged_chrome_trace_has_one_lane_per_process() {
        let _g = lock();
        enable(DEFAULT_CAPACITY);
        {
            let _s = span(SpanKind::Exec, "coord");
        }
        disable();
        let coord = drain();
        let worker_events = vec![TraceEvent {
            kind: SpanKind::Exec,
            name: "shard".to_owned(),
            thread: 0,
            seq: 0,
            start_ns: 10,
            dur_ns: 20,
            instant: false,
            value: 0,
        }];
        let merged = chrome_json_merged(
            &[
                ChromeLane { pid: 100, name: "rid coordinator".to_owned(), events: &coord.events },
                ChromeLane { pid: 200, name: "shard worker 0.0".to_owned(), events: &worker_events },
            ],
            0xabcd,
        );
        assert!(merged.contains("\"process_name\""));
        assert!(merged.contains("\"pid\":100"));
        assert!(merged.contains("\"pid\":200"));
        assert!(merged.contains("\"name\":\"rid coordinator\""));
        assert!(merged.contains("\"trace_id\":\"000000000000abcd\""));
        assert!(!merged.contains(",,"), "no empty slots between events");
    }

    #[test]
    fn jsonl_and_chrome_formats() {
        let _g = lock();
        enable(DEFAULT_CAPACITY);
        {
            let _s = span(SpanKind::Enumerate, "fn\"quoted\"");
            event(SpanKind::Fault, "panic:f", 2);
        }
        disable();
        let t = drain();
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\\\"quoted\\\""));
        assert!(jsonl.contains("\"kind\":\"enumerate\""));
        assert!(jsonl.contains("\"ph\":\"instant\""));
        let chrome = t.to_chrome_json();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"i\""));
        assert!(chrome.contains("\"cat\":\"fault\""));
        let norm = t.to_jsonl_normalized();
        assert!(norm.contains("\"start_ns\":0"));
        assert!(norm.contains("\"start_ns\":1"));
    }
}
